//! Umbrella crate for the DUFP suite's workspace-level examples and
//! integration tests. Downstream users should depend on [`dufp`] (the
//! facade) or the individual layer crates directly; this crate only
//! re-exports them so `examples/` and `tests/` have one import root.

pub use dufp as core;
pub use dufp_cluster as cluster;
pub use dufp_control as control;
pub use dufp_counters as counters;
pub use dufp_model as model;
pub use dufp_msr as msr;
pub use dufp_rapl as rapl;
pub use dufp_sim as sim;
pub use dufp_types as types;
pub use dufp_workloads as workloads;
