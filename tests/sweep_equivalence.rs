//! Serial-equivalence property tests for the sweep engine.
//!
//! The determinism contract (`dufp::sweep` module docs) says the output
//! of a sweep is a pure function of its grid: `--jobs N` must produce the
//! same JSONL — byte for byte, same row order — as `--jobs 1`, for any
//! grid, seed set, worker count and fault plan. These tests state that
//! contract over randomized grids.

use dufp::{run_sweep, to_jsonl_bytes, SweepGrid};
use proptest::prelude::*;

/// Deterministically builds a small but varied grid from scalar knobs.
fn grid(seed: u64, npolicies: usize, slow_idx: usize, nseeds: usize, faults: bool) -> SweepGrid {
    let all_policies = ["dufp", "duf", "dnpc", "dufpf", "cap:100", "default"];
    let start = (seed as usize) % all_policies.len();
    let policies = (0..npolicies)
        .map(|i| all_policies[(start + i) % all_policies.len()].to_string())
        .collect();
    let slowdowns = [vec![5.0], vec![0.0, 10.0], vec![5.0, 20.0]];
    SweepGrid {
        apps: vec!["EP".into()],
        policies,
        slowdowns_pct: slowdowns[slow_idx].clone(),
        seeds: (seed..seed + nseeds as u64).collect(),
        sockets: 1,
        interval_ms: None,
        fault_plan: faults.then(|| format!("seed={seed};write,p=0.005")),
        machine: None,
        engine: Default::default(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn parallel_sweep_is_byte_identical_to_serial(
        seed in 0u64..1_000,
        npolicies in 1usize..4,
        slow_idx in 0usize..3,
        nseeds in 1usize..3,
        jobs in 2usize..5,
        fault_sel in 0usize..2,
    ) {
        let g = grid(seed, npolicies, slow_idx, nseeds, fault_sel == 1);
        let serial = run_sweep(&g, 1).expect("serial sweep");
        let parallel = run_sweep(&g, jobs).expect("parallel sweep");

        prop_assert_eq!(serial.rows.len(), g.len());
        // Same rows, same order — not just the same multiset.
        prop_assert_eq!(&serial.rows, &parallel.rows);
        // And the serialized artifact is byte-identical.
        let a = to_jsonl_bytes(&serial.rows).expect("serialize serial");
        let b = to_jsonl_bytes(&parallel.rows).expect("serialize parallel");
        prop_assert_eq!(a, b);
    }
}

/// The fixed pairing the paper's protocol depends on: re-running the same
/// grid (any worker count) reproduces the exact same bytes, so sweep
/// artifacts are diffable across machines and commits.
#[test]
fn repeated_runs_reproduce_the_same_artifact() {
    let g = grid(7, 3, 2, 2, true);
    let first = to_jsonl_bytes(&run_sweep(&g, 3).expect("run").rows).expect("bytes");
    let second = to_jsonl_bytes(&run_sweep(&g, 2).expect("run").rows).expect("bytes");
    assert!(!first.is_empty());
    assert_eq!(first, second);
}

/// Grid order is app-major: all rows of one application precede the next,
/// with the (policy, slowdown, seed) order repeating inside each block.
#[test]
fn multi_app_grids_merge_app_major() {
    let mut g = grid(3, 2, 0, 2, false);
    g.apps = vec!["EP".into(), "CG".into()];
    let out = run_sweep(&g, 4).expect("sweep");
    let per_app = g.len() / 2;
    assert!(out.rows[..per_app].iter().all(|r| r.app == "EP"));
    assert!(out.rows[per_app..].iter().all(|r| r.app == "CG"));
    let key = |r: &dufp::SweepRow| (r.policy.clone(), r.slowdown_pct.to_bits(), r.seed);
    let first: Vec<_> = out.rows[..per_app].iter().map(key).collect();
    let second: Vec<_> = out.rows[per_app..].iter().map(key).collect();
    assert_eq!(first, second);
}
