//! End-to-end integration: the full public API from workload to report.

use dufp::prelude::*;
use dufp::{ratios_vs_default, run_once, run_repeated, ControllerKind, ExperimentSpec, TraceSpec};

fn spec(app: &str, controller: ControllerKind) -> ExperimentSpec {
    ExperimentSpec {
        sim: SimConfig::yeti_single_socket(1),
        app: app.into(),
        controller,
        trace: None,
        interval_ms: None,
        telemetry: false,
        fault_plan: None,
        engine: Default::default(),
    }
}

#[test]
fn dufp_run_is_deterministic_in_seed() {
    let s = spec(
        "CG",
        ControllerKind::Dufp {
            slowdown: Ratio::from_percent(10.0),
        },
    );
    let a = run_once(&s, 99).unwrap();
    let b = run_once(&s, 99).unwrap();
    assert_eq!(a.exec_time, b.exec_time);
    assert_eq!(a.pkg_energy, b.pkg_energy);
    assert_eq!(a.dram_energy, b.dram_energy);
}

#[test]
fn different_seeds_vary_within_error_bars() {
    let s = spec("EP", ControllerKind::Default);
    let a = run_once(&s, 1).unwrap();
    let b = run_once(&s, 2).unwrap();
    assert_ne!(a.exec_time, b.exec_time, "noise must differ across seeds");
    let rel = (a.exec_time.value() - b.exec_time.value()).abs() / a.exec_time.value();
    assert!(rel < 0.03, "seed-to-seed spread {rel} too large");
}

#[test]
fn every_app_completes_under_every_controller() {
    for app in [
        "BT", "CG", "EP", "FT", "LU", "MG", "SP", "UA", "HPL", "LAMMPS",
    ] {
        for controller in [
            ControllerKind::Default,
            ControllerKind::Duf {
                slowdown: Ratio::from_percent(10.0),
            },
            ControllerKind::Dufp {
                slowdown: Ratio::from_percent(10.0),
            },
        ] {
            let r = run_once(&spec(app, controller), 5)
                .unwrap_or_else(|e| panic!("{app} under {}: {e}", controller.label()));
            assert!(r.exec_time.value() > 1.0, "{app}");
            assert!(r.avg_pkg_power.value() > 20.0, "{app}");
        }
    }
}

#[test]
fn dufp_saves_power_on_every_app_at_10pct() {
    // Paper: "DUFP manages to reduce the power consumption of all
    // applications" (§V-H).
    for app in [
        "BT", "CG", "EP", "FT", "LU", "MG", "SP", "UA", "HPL", "LAMMPS",
    ] {
        let d = run_repeated(&spec(app, ControllerKind::Default), 3, 7).unwrap();
        let p = run_repeated(
            &spec(
                app,
                ControllerKind::Dufp {
                    slowdown: Ratio::from_percent(10.0),
                },
            ),
            3,
            7,
        )
        .unwrap();
        let r = ratios_vs_default(&d, &p);
        assert!(
            r.pkg_power_savings_pct > 0.0,
            "{app}: DUFP@10% lost power ({:.2} %)",
            r.pkg_power_savings_pct
        );
    }
}

#[test]
fn tolerated_slowdown_is_respected_at_10pct_for_stable_apps() {
    // The apps the paper lists as well-behaved at 10 %.
    for app in ["BT", "CG", "EP", "FT", "MG", "SP", "HPL"] {
        let d = run_repeated(&spec(app, ControllerKind::Default), 3, 3).unwrap();
        let p = run_repeated(
            &spec(
                app,
                ControllerKind::Dufp {
                    slowdown: Ratio::from_percent(10.0),
                },
            ),
            3,
            3,
        )
        .unwrap();
        let r = ratios_vs_default(&d, &p);
        assert!(
            r.overhead_pct <= 10.0 + 0.75,
            "{app}: overhead {:.2} % exceeds the 10 % tolerance",
            r.overhead_pct
        );
    }
}

#[test]
fn default_runtimes_match_the_analytic_nominal_for_every_app() {
    // The simulator's default-configuration execution time must agree with
    // the workload's analytic design-point duration — the contract that
    // makes "seconds_at_default" in the specs meaningful.
    use dufp_workloads::{apps, MaterializeCtx};
    let sim = SimConfig::yeti_single_socket(8);
    let ctx = MaterializeCtx::from_arch(&sim.arch);
    for app in [
        "BT", "CG", "EP", "FT", "LU", "MG", "SP", "UA", "HPL", "LAMMPS",
    ] {
        let nominal = apps::by_name(app, &ctx)
            .unwrap()
            .nominal_duration(&ctx)
            .value();
        let r = run_once(&spec(app, ControllerKind::Default), 8).unwrap();
        let t = r.exec_time.value();
        let err = (t - nominal).abs() / nominal;
        // HPL rides PL1 by design (its default op point exceeds the cap a
        // little); everything else must land tight.
        let tol = if app == "HPL" { 0.06 } else { 0.03 };
        assert!(
            err < tol,
            "{app}: simulated {t:.2}s vs nominal {nominal:.2}s ({:.1} % off)",
            err * 100.0
        );
    }
}

#[test]
fn four_socket_machine_runs_and_aggregates() {
    let mut s = spec(
        "CG",
        ControllerKind::Dufp {
            slowdown: Ratio::from_percent(10.0),
        },
    );
    s.sim = SimConfig::yeti(2);
    let r = run_once(&s, 2).unwrap();
    // Whole-node power ≈ 4× a single socket's.
    assert!(
        (300.0..520.0).contains(&r.avg_pkg_power.value()),
        "4-socket package power {:?}",
        r.avg_pkg_power
    );
}

#[test]
fn trace_spans_the_whole_run() {
    let mut s = spec("EP", ControllerKind::Default);
    s.trace = Some(TraceSpec {
        socket: SocketId(0),
        stride: 100,
    });
    let r = run_once(&s, 4).unwrap();
    let t = r.trace.unwrap();
    let last = t.points.last().unwrap().at.as_seconds().value();
    assert!(
        last > r.exec_time.value() * 0.9,
        "trace ends at {last}s of a {:.1}s run",
        r.exec_time.value()
    );
}

#[test]
fn static_cap_bounds_power_on_memory_app() {
    // A whole-run 75 W static cap on a memory-bound app: big power savings
    // with bounded slowdown. (65 W is only sustainable when DUF manages the
    // uncore too — with the default uncore at 2.4 GHz the package floor sits
    // above it, which is exactly why the paper pairs capping with UFS.)
    let d = run_once(&spec("MG", ControllerKind::Default), 6).unwrap();
    let capped = run_once(
        &spec("MG", ControllerKind::StaticCap { cap: Watts(75.0) }),
        6,
    )
    .unwrap();
    assert!(
        capped.avg_pkg_power.value() < 79.0,
        "capped MG power {:?}",
        capped.avg_pkg_power
    );
    assert!(capped.avg_pkg_power.value() < d.avg_pkg_power.value() - 15.0);
    // MG's compute headroom is razor thin (§V-D is where it loses energy):
    // capping without uncore coordination costs it dearly — the motivation
    // for DUFP's *dynamic*, application-aware capping. Bound it loosely.
    assert!(capped.exec_time.value() < d.exec_time.value() * 3.0);
    assert!(capped.exec_time.value() > d.exec_time.value() * 1.05);
}
