//! Differential harness: the batched event engine vs the per-tick oracle.
//!
//! ISSUE-10's headline contract is that `--engine event` is a pure
//! optimization: every observable — decision traces at controller wakes,
//! final energy/FLOPS counters, fault-injector RNG positions, journal
//! bytes — must be bit-identical to `--engine tick`, which stays in the
//! tree as the permanent oracle. The tests here state that contract at
//! three layers:
//!
//! 1. **Runner level** — random (seed × policy × slowdown × fault plan ×
//!    app) points produce byte-identical decision traces and result bits
//!    under both engines.
//! 2. **Simulator level** — a `Machine` advanced in arbitrary batches,
//!    with an armed fault plan and live MSR traffic between batches,
//!    matches the per-tick loop on counters and injector state, and
//!    tick-scheduled rules (`at=`, `window=`) fire at the exact tick even
//!    when that tick sits inside a fast-forwarded span.
//! 3. **Crash/resume** — a `crash,at=<random tick>` plan under the event
//!    engine, resumed from its journal, reproduces the uninterrupted
//!    tick-engine reference bit-for-bit (journal bytes included).

use dufp::{
    resume, run_journaled, run_once, ControllerKind, Engine, ExperimentSpec, JournalOptions,
    RunResult,
};
use dufp_counters::Telemetry;
use dufp_journal::read_records;
use dufp_msr::registers::{IA32_APERF, MSR_PKG_ENERGY_STATUS, MSR_PKG_POWER_LIMIT};
use dufp_msr::{FaultPlan, MsrIo};
use dufp_sim::{Machine, SimConfig};
use dufp_telemetry::write_jsonl;
use dufp_types::{Ratio, SocketId};
use proptest::prelude::*;
use std::path::{Path, PathBuf};

const POLICIES: [&str; 4] = ["duf", "dufp", "dufpf", "dnpc"];
const SLOWDOWNS: [f64; 3] = [5.0, 10.0, 20.0];
const APPS: [&str; 2] = ["EP", "CG"];

fn controller(policy: &str, slowdown_pct: f64) -> ControllerKind {
    let slowdown = Ratio::from_percent(slowdown_pct);
    match policy {
        "duf" => ControllerKind::Duf { slowdown },
        "dufp" => ControllerKind::Dufp { slowdown },
        "dufpf" => ControllerKind::DufpF { slowdown },
        "dnpc" => ControllerKind::Dnpc { slowdown },
        other => panic!("no differential case for {other}"),
    }
}

fn spec(engine: Engine, app: &str, policy: &str, slowdown_pct: f64, plan: Option<&str>) -> ExperimentSpec {
    ExperimentSpec {
        // The noisy single-socket machine: per-tick RNG draws active and
        // the event engine on its batched fast path (the sweep shape).
        sim: SimConfig::yeti_single_socket(0),
        app: app.into(),
        controller: controller(policy, slowdown_pct),
        trace: None,
        interval_ms: None,
        telemetry: true,
        fault_plan: plan.map(|p| FaultPlan::parse(p).expect("valid plan")),
        engine,
    }
}

/// Runs one spec and returns the result plus its decision trace, in the
/// exact bytes the golden files use.
fn run_traced(spec: &ExperimentSpec, seed: u64) -> (RunResult, Vec<u8>) {
    let r = run_once(spec, seed).expect("run completes");
    let report = r.telemetry.clone().expect("telemetry was enabled");
    assert_eq!(report.dropped, 0, "trace must be lossless");
    let mut buf = Vec::new();
    write_jsonl(&mut buf, &report.decisions).expect("serialize trace");
    (r, buf)
}

fn assert_same_result(a: &RunResult, b: &RunResult) {
    assert_eq!(
        a.exec_time.value().to_bits(),
        b.exec_time.value().to_bits(),
        "exec time diverged: {} vs {}",
        a.exec_time.value(),
        b.exec_time.value()
    );
    assert_eq!(a.pkg_energy.value().to_bits(), b.pkg_energy.value().to_bits());
    assert_eq!(
        a.dram_energy.value().to_bits(),
        b.dram_energy.value().to_bits()
    );
}

/// A self-cleaning journal directory.
struct TestDir(PathBuf);

impl TestDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!(
            "dufp-engine-diff-{tag}-{}-{:x}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::create_dir_all(&dir).expect("create test dir");
        TestDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TestDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

// ---------------------------------------------------------------------------
// Layer 1: runner-level trace equivalence.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random grid points: both engines produce byte-identical decision
    /// traces and result bits, with and without fault plans.
    #[test]
    fn engines_agree_on_traces_and_totals(
        seed in 0u64..1_000,
        policy_idx in 0usize..POLICIES.len(),
        slow_idx in 0usize..SLOWDOWNS.len(),
        app_idx in 0usize..APPS.len(),
        plan_sel in 0usize..3,
    ) {
        let plans = [
            None,
            Some(format!("seed={seed};write,p=0.01;read,p=0.002")),
            Some(format!(
                "seed={seed};write,reg=cap,cpu=0-15,window=200+5000;sample,p=0.002"
            )),
        ];
        let plan = plans[plan_sel].as_deref();
        let policy = POLICIES[policy_idx];
        let slowdown = SLOWDOWNS[slow_idx];
        let app = APPS[app_idx];

        let (rt, trace_tick) = run_traced(&spec(Engine::Tick, app, policy, slowdown, plan), seed);
        let (re, trace_event) = run_traced(&spec(Engine::Event, app, policy, slowdown, plan), seed);

        prop_assert!(!trace_tick.is_empty(), "{policy}@{slowdown}% produced no decisions");
        prop_assert_eq!(trace_tick, trace_event, "decision traces diverged for {}@{}% on {} (plan {:?})",
            policy, slowdown, app, plan);
        assert_same_result(&rt, &re);
    }
}

// ---------------------------------------------------------------------------
// Layer 2: simulator-level counter + injector equivalence.
// ---------------------------------------------------------------------------

fn machine_with(plan: Option<&str>, seed: u64) -> Machine {
    let cfg = SimConfig::yeti_single_socket(seed);
    let ctx = dufp_workloads::MaterializeCtx::from_arch(&cfg.arch);
    let workload = dufp_workloads::apps::by_name("EP", &ctx).expect("EP materializes");
    let m = Machine::new(cfg);
    m.load_all(&workload);
    if let Some(p) = plan {
        m.inject_faults(FaultPlan::parse(p).expect("valid plan"));
    }
    m
}

/// The MSR traffic a control interval generates, issued identically to
/// both machines; returns a digest of outcomes so faults that fire must
/// fire on both.
fn msr_round(m: &Machine, step: u64) -> Vec<Result<u64, String>> {
    let mut out = Vec::new();
    out.push(m.read(0, MSR_PKG_ENERGY_STATUS).map_err(|e| e.to_string()));
    out.push(m.read(0, IA32_APERF).map_err(|e| e.to_string()));
    // Write-back of the current cap: state-neutral, but it walks the
    // injector's write-rule matchers and RNG exactly like a real actuation.
    match m.read(0, MSR_PKG_POWER_LIMIT) {
        Ok(v) => out.push(
            m.write(0, MSR_PKG_POWER_LIMIT, v)
                .map(|()| step)
                .map_err(|e| e.to_string()),
        ),
        Err(e) => out.push(Err(e.to_string())),
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A machine advanced in arbitrary batch sizes, with fault rules and
    /// MSR traffic between batches, matches the per-tick loop: same
    /// counter bits, same MSR outcomes, same injector RNG position and
    /// per-rule hit counts after every round.
    #[test]
    fn batched_advance_matches_tick_loop_on_counters_and_injector_state(
        seed in 0u64..200,
        batch in 50u64..400,
        rounds in 3u64..12,
        plan_sel in 0usize..3,
    ) {
        let at = batch * 2; // a tick-scheduled rule inside the span
        let plans = [
            None,
            Some(format!("seed={seed};write,p=0.05;read,p=0.02")),
            Some(format!(
                "seed={seed};write,reg=cap,cpu=0-15,window={at}+{batch};sample,at={at}"
            )),
        ];
        let plan = plans[plan_sel].as_deref();

        let a = machine_with(plan, seed); // per-tick oracle
        let b = machine_with(plan, seed); // batched fast path

        for round in 0..rounds {
            for _ in 0..batch {
                a.tick();
            }
            let advanced = b.advance(batch);
            prop_assert_eq!(advanced, batch, "batch cut short before completion");
            prop_assert_eq!(a.now().0, b.now().0, "clocks diverged");

            let ra = msr_round(&a, round);
            let rb = msr_round(&b, round);
            prop_assert_eq!(ra, rb, "MSR outcomes diverged at round {}", round);
            prop_assert_eq!(
                a.injector_snapshot(),
                b.injector_snapshot(),
                "injector RNG position / hit counters diverged at round {}",
                round
            );
        }

        let sa = a.sample(SocketId(0)).expect("sample oracle");
        let sb = b.sample(SocketId(0)).expect("sample fast path");
        prop_assert_eq!(sa.flops.to_bits(), sb.flops.to_bits());
        prop_assert_eq!(sa.bytes.to_bits(), sb.bytes.to_bits());
        prop_assert_eq!(sa.pkg_energy.value().to_bits(), sb.pkg_energy.value().to_bits());
        prop_assert_eq!(sa.dram_energy.value().to_bits(), sb.dram_energy.value().to_bits());
    }
}

/// Tick-scheduled fault rules fire at the *exact* tick even when that tick
/// is interior to a fast-forwarded batch: an access on the scheduled tick
/// trips the rule on both engines, and a one-tick window strictly inside
/// a batch (where no access can land) fires on neither.
#[test]
fn scheduled_rules_fire_at_exact_ticks_across_batches() {
    let plan = |w: u64| format!("seed=9;write,reg=cap,cpu=0-15,window={w}+1");
    // Window [400, 401): both engines reach tick 400 at a batch boundary,
    // so the write-back there must fail identically.
    for boundary in [true, false] {
        let w = if boundary { 400 } else { 337 };
        let a = machine_with(Some(&plan(w)), 3);
        let b = machine_with(Some(&plan(w)), 3);
        for _ in 0..400 {
            a.tick();
        }
        assert_eq!(b.advance(400), 400);
        let v = a.read(0, MSR_PKG_POWER_LIMIT).expect("cap readable");
        let wa = a.write(0, MSR_PKG_POWER_LIMIT, v);
        let wb = b.write(0, MSR_PKG_POWER_LIMIT, v);
        assert_eq!(
            wa.is_err(),
            boundary,
            "window {w}+1 at tick 400: expected fire={boundary}"
        );
        assert_eq!(wa.is_err(), wb.is_err(), "engines disagree on window {w}+1");
        assert_eq!(a.injector_snapshot(), b.injector_snapshot());
    }
}

// ---------------------------------------------------------------------------
// Layer 3: crash-at-random-tick resume equivalence across engines.
// ---------------------------------------------------------------------------

proptest! {
    // Journaled runs write real files; keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// `crash,at=<random tick>` under the event engine (so the crash tick
    /// is routinely interior to a fast-forward batch), resumed from its
    /// journal, must reproduce the uninterrupted tick-engine reference —
    /// result bits and journal records both.
    #[test]
    fn event_engine_crash_resume_matches_tick_reference(
        seed in 0u64..100,
        crash_at in 500u64..9_000,
        fault_sel in 0usize..2,
    ) {
        let base = (fault_sel == 1).then(|| format!("seed={seed};write,p=0.01"));
        let crash_plan = match &base {
            Some(b) => format!("{b};crash,at={crash_at}"),
            None => format!("crash,at={crash_at}"),
        };

        let reference = spec(Engine::Tick, "EP", "dufp", 10.0, base.as_deref());
        let dir_a = TestDir::new("ref");
        let ra = run_journaled(&reference, seed, &JournalOptions::new(dir_a.path()))
            .expect("reference run completes");

        let crashed = spec(Engine::Event, "EP", "dufp", 10.0, Some(&crash_plan));
        let dir_b = TestDir::new("crash");
        match run_journaled(&crashed, seed, &JournalOptions::new(dir_b.path())) {
            // Crash tick beyond completion: the run finishes; it must
            // already match the reference.
            Ok(rb) => assert_same_result(&ra, &rb),
            Err(err) => {
                prop_assert!(err.to_string().contains("crash at tick"), "{}", err);
                let rb = resume(dir_b.path()).expect("resume completes the run");
                assert_same_result(&ra, &rb);
            }
        }
        let rec_a = read_records(dir_a.path()).expect("read reference journal");
        let rec_b = read_records(dir_b.path()).expect("read resumed journal");
        prop_assert!(!rec_a.truncated && !rec_b.truncated);
        prop_assert_eq!(
            rec_a.records,
            rec_b.records,
            "event-engine resumed journal differs from the tick-engine reference"
        );
    }
}

/// The crash barrier regression: a crash tick that is *not* an interval
/// boundary (interior to the event engine's fast-forward window) aborts
/// both engines with the same message and identical journal prefixes.
#[test]
fn crash_inside_a_fast_forward_window_fires_at_the_exact_tick() {
    let seed = 11;
    // 200 ticks per control interval; 4321 is mid-interval.
    let plan = "crash,at=4321";
    let mut msgs = Vec::new();
    let mut records = Vec::new();
    for engine in [Engine::Tick, Engine::Event] {
        let s = spec(engine, "EP", "dufp", 10.0, Some(plan));
        let dir = TestDir::new("mid");
        let err = run_journaled(&s, seed, &JournalOptions::new(dir.path()))
            .expect_err("crash rule must abort the run");
        msgs.push(err.to_string());
        records.push(read_records(dir.path()).expect("journal readable").records);
    }
    assert!(msgs[0].contains("crash at tick 4321"), "{}", msgs[0]);
    assert_eq!(msgs[0], msgs[1], "engines report different crash points");
    assert_eq!(
        records[0], records[1],
        "journal prefixes diverged before the crash tick"
    );
}
