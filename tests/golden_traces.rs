//! Golden-trace regression tests.
//!
//! Each golden file under `tests/golden/` is the full decision trace
//! (JSON Lines, byte-exact) of one controller on the noise-free simulator
//! running the checked-in `golden-mini` workload — the paper's
//! memory-bound/compute-bound alternation in miniature. Any change to
//! controller logic, event schema or serialization shows up here as a
//! byte diff.
//!
//! To bless new behavior after an intentional change:
//!
//! ```text
//! DUFP_REGEN_GOLDEN=1 cargo test --test golden_traces
//! ```
//!
//! then review the regenerated files like any other diff.

use dufp::{run_once, ControllerKind, Engine, ExperimentSpec};
use dufp_msr::FaultPlan;
use dufp_sim::SimConfig;
use dufp_telemetry::{read_jsonl, write_jsonl, Actuator, Reason};
use dufp_types::Ratio;
use std::path::{Path, PathBuf};

/// The (policy, slowdown) matrix the goldens pin down: every dynamic
/// controller the paper evaluates (plus the §VII DUFP-F extension), at a
/// tight and a loose tolerance.
const CASES: [(&str, f64); 8] = [
    ("duf", 5.0),
    ("duf", 20.0),
    ("dufp", 5.0),
    ("dufp", 20.0),
    ("dufpf", 5.0),
    ("dufpf", 20.0),
    ("dnpc", 5.0),
    ("dnpc", 20.0),
];

/// A golden under an active fault plan: scheduled cap-register write
/// faults plus random write failures, so the resilience stack's retry and
/// degradation decisions are pinned byte-exactly too.
const FAULT_CASE: (&str, f64, &str) = (
    "dufp",
    10.0,
    "seed=42;write,p=0.01;write,reg=cap,cpu=0-15,window=200+5000",
);

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn golden_path(policy: &str, slowdown_pct: f64) -> PathBuf {
    golden_dir().join(format!("{policy}_{slowdown_pct:.0}.jsonl"))
}

fn controller(policy: &str, slowdown_pct: f64) -> ControllerKind {
    let slowdown = Ratio::from_percent(slowdown_pct);
    match policy {
        "duf" => ControllerKind::Duf { slowdown },
        "dufp" => ControllerKind::Dufp { slowdown },
        "dufpf" => ControllerKind::DufpF { slowdown },
        "dnpc" => ControllerKind::Dnpc { slowdown },
        other => panic!("no golden case for {other}"),
    }
}

/// Runs one golden case under `engine` and serializes its decision trace
/// exactly as the goldens were written.
fn trace_bytes(policy: &str, slowdown_pct: f64, plan: Option<&str>, engine: Engine) -> Vec<u8> {
    let spec = ExperimentSpec {
        sim: SimConfig::deterministic(1),
        app: golden_dir()
            .join("workload.json")
            .to_string_lossy()
            .into_owned(),
        controller: controller(policy, slowdown_pct),
        trace: None,
        interval_ms: None,
        telemetry: true,
        fault_plan: plan.map(|p| FaultPlan::parse(p).expect("valid plan")),
        engine,
    };
    let r = run_once(&spec, 1).expect("golden run");
    let report = r.telemetry.expect("telemetry was enabled");
    assert_eq!(report.dropped, 0, "golden trace must be lossless");
    let mut buf = Vec::new();
    write_jsonl(&mut buf, &report.decisions).expect("serialize trace");
    buf
}

/// Every golden case: the fixed (policy, slowdown) matrix plus the
/// fault-plan case, with its golden file path.
fn all_cases() -> Vec<(&'static str, f64, Option<&'static str>, PathBuf)> {
    let mut cases: Vec<_> = CASES
        .iter()
        .map(|&(p, s)| (p, s, None, golden_path(p, s)))
        .collect();
    let (p, s, plan) = FAULT_CASE;
    cases.push((p, s, Some(plan), golden_dir().join(format!("{p}_fault_{s:.0}.jsonl"))));
    cases
}

#[test]
fn decision_traces_match_goldens() {
    let regen = std::env::var_os("DUFP_REGEN_GOLDEN").is_some();
    let mut mismatches = Vec::new();
    for (policy, slowdown, plan, path) in all_cases() {
        // The golden files are engine-independent: the batched event
        // engine (the default) and the per-tick oracle must both
        // reproduce them byte-for-byte. Regeneration always writes the
        // oracle's bytes.
        let oracle = trace_bytes(policy, slowdown, plan, Engine::Tick);
        let event = trace_bytes(policy, slowdown, plan, Engine::Event);
        assert!(
            !oracle.is_empty(),
            "{policy}@{slowdown}% produced no decisions"
        );
        assert_eq!(
            oracle, event,
            "{policy}@{slowdown}% (plan {plan:?}): event engine trace diverged from the tick oracle"
        );
        if regen {
            std::fs::write(&path, &oracle).expect("write golden");
            continue;
        }
        let want = std::fs::read(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden {} ({e}); run with DUFP_REGEN_GOLDEN=1 to create it",
                path.display()
            )
        });
        if oracle != want {
            let first_diff = oracle
                .iter()
                .zip(want.iter())
                .position(|(a, b)| a != b)
                .unwrap_or_else(|| oracle.len().min(want.len()));
            let line = want[..first_diff.min(want.len())]
                .iter()
                .filter(|&&b| b == b'\n')
                .count()
                + 1;
            mismatches.push(format!(
                "{policy}@{slowdown}%: {} bytes vs {} golden, first diff at byte {first_diff} (line {line})",
                oracle.len(),
                want.len()
            ));
        }
    }
    assert!(
        mismatches.is_empty(),
        "decision traces drifted from tests/golden/ — if intentional, regenerate with \
         DUFP_REGEN_GOLDEN=1 and review the diff:\n  {}",
        mismatches.join("\n  ")
    );
}

#[test]
fn goldens_parse_and_show_each_controllers_signature() {
    for (policy, slowdown, _plan, path) in all_cases() {
        let text = std::fs::read(&path).expect("golden present");
        let events = read_jsonl(text.as_slice()).expect("golden parses as decision events");
        assert!(!events.is_empty(), "{policy}@{slowdown}% golden is empty");
        // The end-of-run safe-state restore touches every knob regardless
        // of controller; only live decisions define a policy's signature.
        let live: Vec<_> = events
            .iter()
            .filter(|e| e.reason != Reason::SafeStateRestore)
            .collect();
        let touches_uncore = live.iter().any(|e| e.actuator == Actuator::Uncore);
        let touches_cap = live
            .iter()
            .any(|e| matches!(e.actuator, Actuator::PowerCap | Actuator::PowerCapShort));
        match policy {
            // DUF is uncore-only by construction.
            "duf" => {
                assert!(touches_uncore, "DUF never touched the uncore");
                assert!(!touches_cap, "DUF must not actuate power caps");
            }
            // DUFP drives both knobs.
            "dufp" => {
                assert!(touches_uncore, "DUFP never touched the uncore");
                assert!(touches_cap, "DUFP should actuate power caps");
            }
            // DUFP-F adds direct core-frequency management on top.
            "dufpf" => {
                assert!(touches_uncore, "DUFP-F never touched the uncore");
                assert!(
                    live.iter().any(|e| e.actuator == Actuator::CoreFreq),
                    "DUFP-F should manage core frequency directly"
                );
            }
            // The DNPC baseline steers through the power cap alone.
            _ => assert!(touches_cap, "DNPC should actuate power caps"),
        }
    }
}
