//! Golden regression for the datacenter scenario engine.
//!
//! `tests/golden/scenario_mini.toml` is a checked-in diurnal co-tenant
//! scenario; the goldens pin two byte-exact artifacts of running it at a
//! fixed seed:
//!
//! * `scenario_mini_trace.jsonl` — the demand-based policy's full
//!   decision trace (intensity shifts, SLO violations, budget grants),
//! * `scenario_mini_scorecard.jsonl` — the scorecard rows for all three
//!   policies, exactly as `dufp scenario` would emit them.
//!
//! Any change to arrival-model sampling, co-tenant physics, allocator
//! behavior or serialization shows up here as a byte diff. To bless new
//! behavior after an intentional change:
//!
//! ```text
//! DUFP_REGEN_GOLDEN=1 cargo test --test golden_scenario
//! ```
//!
//! then review the regenerated files like any other diff.

use dufp_scenario::{run_one, run_rows, to_jsonl_bytes, PolicyChoice, ScenarioSpec};
use dufp_telemetry::write_jsonl;
use std::path::{Path, PathBuf};

const GOLDEN_SEED: u64 = 17;

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn golden_spec() -> ScenarioSpec {
    let path = golden_dir().join("scenario_mini.toml");
    let text = std::fs::read_to_string(&path).expect("golden spec present");
    ScenarioSpec::from_toml(&text).expect("golden spec parses and validates")
}

/// Compares (or, under DUFP_REGEN_GOLDEN, rewrites) one golden file.
fn check_golden(name: &str, got: &[u8]) {
    assert!(!got.is_empty(), "{name}: produced no bytes");
    let path = golden_dir().join(name);
    if std::env::var_os("DUFP_REGEN_GOLDEN").is_some() {
        std::fs::write(&path, got).expect("write golden");
        return;
    }
    let want = std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); run with DUFP_REGEN_GOLDEN=1 to create it",
            path.display()
        )
    });
    if got != want {
        let first_diff = got
            .iter()
            .zip(want.iter())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| got.len().min(want.len()));
        let line = want[..first_diff.min(want.len())]
            .iter()
            .filter(|&&b| b == b'\n')
            .count()
            + 1;
        panic!(
            "{name} drifted from tests/golden/: {} bytes vs {} golden, first diff at \
             byte {first_diff} (line {line}) — if intentional, regenerate with \
             DUFP_REGEN_GOLDEN=1 and review the diff",
            got.len(),
            want.len()
        );
    }
}

#[test]
fn demand_based_decision_trace_matches_golden() {
    let spec = golden_spec();
    let r = run_one(&spec, GOLDEN_SEED, PolicyChoice::DemandBased).expect("golden run");
    assert!(r.row.conservation_ok, "golden run must conserve energy");
    assert!(r.row.grants > 0, "golden scenario never granted budget");
    let mut buf = Vec::new();
    write_jsonl(&mut buf, &r.events).expect("serialize trace");
    check_golden("scenario_mini_trace.jsonl", &buf);
}

#[test]
fn scorecard_rows_match_golden() {
    let spec = golden_spec();
    let policies = [
        PolicyChoice::Uncapped,
        PolicyChoice::StaticSplit,
        PolicyChoice::DemandBased,
    ];
    let rows = run_rows(&spec, GOLDEN_SEED, &policies, 2).expect("golden rows");
    let bytes = to_jsonl_bytes(&rows).expect("serialize scorecard");
    check_golden("scenario_mini_scorecard.jsonl", &bytes);
}
