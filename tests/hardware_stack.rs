//! Integration of the hardware-access layers: MSR codecs ↔ backends ↔ the
//! RAPL zone API ↔ the simulator's register surface.

use dufp_msr::registers::{
    PkgPowerLimit, RaplPowerUnit, UncoreRatioLimit, MSR_PKG_POWER_LIMIT, MSR_RAPL_POWER_UNIT,
    MSR_UNCORE_RATIO_LIMIT, SKYLAKE_SP_POWER_UNIT_RAW,
};
use dufp_msr::{FakeMsr, MsrIo};
use dufp_rapl::{Constraint, MsrRapl, PowerCapper, SysfsRapl};
use dufp_sim::{Machine, SimConfig};
use dufp_types::{Joules, Seconds, SocketId, Watts};
use std::sync::Arc;

fn seeded_fake() -> FakeMsr {
    let m = FakeMsr::new(32);
    m.seed(MSR_RAPL_POWER_UNIT, SKYLAKE_SP_POWER_UNIT_RAW);
    let units = RaplPowerUnit::skylake_sp();
    let reg = PkgPowerLimit::defaults(Watts(125.0), Seconds(1.0), Watts(150.0), Seconds(0.01));
    m.seed(MSR_PKG_POWER_LIMIT, reg.encode(&units).unwrap());
    m
}

#[test]
fn same_limits_read_identically_from_fake_and_simulator() {
    // The simulator's MSR surface and a seeded fake must be
    // indistinguishable to the RAPL layer.
    let fake_rapl = MsrRapl::new(seeded_fake(), 2, 16).unwrap();
    let sim = Arc::new(Machine::new(SimConfig::deterministic(1)));
    let sim_rapl = MsrRapl::new(Arc::clone(&sim), 1, 16).unwrap();

    for rapl in [&fake_rapl as &dyn PowerCapper, &sim_rapl] {
        assert_eq!(
            rapl.limit(SocketId(0), Constraint::LongTerm).unwrap(),
            Watts(125.0)
        );
        assert_eq!(
            rapl.limit(SocketId(0), Constraint::ShortTerm).unwrap(),
            Watts(150.0)
        );
    }

    fake_rapl.set_both(SocketId(0), Watts(90.0)).unwrap();
    sim_rapl.set_both(SocketId(0), Watts(90.0)).unwrap();
    for rapl in [&fake_rapl as &dyn PowerCapper, &sim_rapl] {
        assert_eq!(
            rapl.limit(SocketId(0), Constraint::LongTerm).unwrap(),
            Watts(90.0)
        );
    }
}

#[test]
fn sysfs_and_msr_backends_agree_through_the_trait() {
    let dir = std::env::temp_dir().join(format!("dufp-it-powercap-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    SysfsRapl::create_fixture(&dir, 1, Watts(125.0), Watts(150.0)).unwrap();
    let sysfs = SysfsRapl::open_at(&dir).unwrap();
    let msr = MsrRapl::new(seeded_fake(), 1, 16).unwrap();

    for capper in [&sysfs as &dyn PowerCapper, &msr] {
        capper.set_both(SocketId(0), Watts(100.0)).unwrap();
        assert_eq!(
            capper.limit(SocketId(0), Constraint::LongTerm).unwrap(),
            Watts(100.0)
        );
        capper.reset(SocketId(0)).unwrap();
        assert_eq!(
            capper.limit(SocketId(0), Constraint::ShortTerm).unwrap(),
            Watts(150.0)
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn uncore_writes_through_machine_register_surface() {
    let sim = Arc::new(Machine::new(SimConfig::deterministic(2)));
    let pinned = UncoreRatioLimit::pinned(dufp_types::Hertz::from_ghz(1.6));
    sim.write(0, MSR_UNCORE_RATIO_LIMIT, pinned.encode())
        .unwrap();
    let back = UncoreRatioLimit::decode(sim.read(0, MSR_UNCORE_RATIO_LIMIT).unwrap());
    assert_eq!(back, pinned);
}

#[test]
fn energy_counter_flows_from_simulation_to_rapl_joules() {
    let sim = Arc::new(Machine::new(SimConfig::deterministic(3)));
    let ctx = dufp_workloads::MaterializeCtx::from_arch(&sim.config().arch);
    sim.load_all(&dufp_workloads::apps::ep(&ctx).unwrap());
    let rapl = MsrRapl::new(Arc::clone(&sim), 1, 16).unwrap();

    let e0 = rapl.package_energy(SocketId(0)).unwrap();
    assert_eq!(e0, Joules(0.0), "first reading primes the wrap tracker");
    let _ = rapl.dram_energy(SocketId(0)).unwrap(); // prime DRAM too
    for _ in 0..1000 {
        sim.tick();
    }
    let e1 = rapl.package_energy(SocketId(0)).unwrap();
    // 1 s of EP at ~120 W.
    assert!((80.0..160.0).contains(&e1.value()), "1s of EP gave {e1:?}");
    let d = rapl.dram_energy(SocketId(0)).unwrap();
    assert!(d.value() > 5.0, "DRAM energy {d:?}");
}

#[test]
fn msr_fault_surfaces_through_the_full_stack() {
    let fake = Arc::new(seeded_fake());
    let rapl = MsrRapl::new(Arc::clone(&fake), 2, 16).unwrap();
    fake.inject(dufp_msr::io::Fault::WriteOf(MSR_PKG_POWER_LIMIT));
    let err = rapl.set_both(SocketId(1), Watts(80.0)).unwrap_err();
    assert!(err.to_string().contains("0x610"), "{err}");
    fake.inject(dufp_msr::io::Fault::None);
    assert!(rapl.set_both(SocketId(1), Watts(80.0)).is_ok());
}

#[test]
fn dram_capping_is_rejected_like_the_paper_platform() {
    // §II-B: "memory power capping is not available on the processor that
    // we used".
    let sim = Machine::new(SimConfig::deterministic(4));
    let err = sim
        .write(0, dufp_msr::registers::MSR_DRAM_POWER_LIMIT, 0x1234)
        .unwrap_err();
    assert!(matches!(err, dufp_types::Error::Unsupported(_)));
}
