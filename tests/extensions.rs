//! Integration tests for the beyond-the-paper extensions (DESIGN.md §7):
//! the DNPC baseline, DUFP-F, and the cluster budget layer's composition
//! with per-node DUFP.

use dufp::prelude::*;
use dufp::{ratios_vs_default, run_once, run_repeated, ControllerKind, ExperimentSpec};

fn spec(app: &str, controller: ControllerKind) -> ExperimentSpec {
    ExperimentSpec {
        sim: SimConfig::yeti_single_socket(1),
        app: app.into(),
        controller,
        trace: None,
        interval_ms: None,
        telemetry: false,
        fault_plan: None,
        engine: Default::default(),
    }
}

fn compare(app: &str, controller: ControllerKind, seed: u64) -> dufp::Ratios {
    let d = run_repeated(&spec(app, ControllerKind::Default), 3, seed).unwrap();
    let v = run_repeated(&spec(app, controller), 3, seed).unwrap();
    ratios_vs_default(&d, &v)
}

#[test]
fn dnpc_saves_less_than_dufp_on_memory_bound_cg() {
    // The §VI critique: DNPC's frequency-linear model over-estimates
    // degradation on memory-bound codes and backs the cap off early.
    let slowdown = Ratio::from_percent(10.0);
    let dnpc = compare("CG", ControllerKind::Dnpc { slowdown }, 5);
    let dufp = compare("CG", ControllerKind::Dufp { slowdown }, 5);
    assert!(
        dufp.pkg_power_savings_pct > dnpc.pkg_power_savings_pct + 1.0,
        "DUFP {:.2} % must clearly beat DNPC {:.2} % on CG",
        dufp.pkg_power_savings_pct,
        dnpc.pkg_power_savings_pct
    );
}

#[test]
fn dnpc_cannot_touch_the_uncore_so_ep_suffers() {
    // EP's savings are mostly uncore (Fig 3b); a cap-only controller
    // cannot reach them.
    let slowdown = Ratio::from_percent(10.0);
    let dnpc = compare("EP", ControllerKind::Dnpc { slowdown }, 7);
    let dufp = compare("EP", ControllerKind::Dufp { slowdown }, 7);
    assert!(
        dufp.pkg_power_savings_pct > dnpc.pkg_power_savings_pct + 3.0,
        "DUFP {:.2} % vs DNPC {:.2} % on EP",
        dufp.pkg_power_savings_pct,
        dnpc.pkg_power_savings_pct
    );
}

#[test]
fn dufpf_completes_every_app_within_tolerance_margin() {
    let slowdown = Ratio::from_percent(10.0);
    for app in [
        "BT", "CG", "EP", "FT", "LU", "MG", "SP", "UA", "HPL", "LAMMPS",
    ] {
        let r = compare(app, ControllerKind::DufpF { slowdown }, 9);
        assert!(
            r.overhead_pct <= 10.0 + 1.5,
            "{app}: DUFP-F overhead {:.2} %",
            r.overhead_pct
        );
        assert!(
            r.pkg_power_savings_pct > 0.0,
            "{app}: DUFP-F must save power, got {:.2} %",
            r.pkg_power_savings_pct
        );
    }
}

#[test]
fn dufpf_outperforms_dufp_on_compute_bound_ep() {
    // The §VII hypothesis: direct frequency management uses the tolerance
    // budget better than RAPL-driven throttling on frequency-sensitive
    // codes.
    let slowdown = Ratio::from_percent(10.0);
    let dufp = compare("EP", ControllerKind::Dufp { slowdown }, 11);
    let dufpf = compare("EP", ControllerKind::DufpF { slowdown }, 11);
    assert!(
        dufpf.pkg_power_savings_pct > dufp.pkg_power_savings_pct,
        "DUFP-F {:.2} % vs DUFP {:.2} % on EP",
        dufpf.pkg_power_savings_pct,
        dufp.pkg_power_savings_pct
    );
}

#[test]
fn dufpf_trace_shows_direct_frequency_descent() {
    let mut s = spec(
        "EP",
        ControllerKind::DufpF {
            slowdown: Ratio::from_percent(10.0),
        },
    );
    s.trace = Some(dufp::TraceSpec {
        socket: SocketId(0),
        stride: 100,
    });
    let r = run_once(&s, 13).unwrap();
    let trace = r.trace.unwrap();
    let min_f = trace
        .points
        .iter()
        .map(|p| p.core_freq.as_ghz())
        .fold(f64::MAX, f64::min);
    assert!(
        min_f < 2.7,
        "DUFP-F should have lowered the frequency: {min_f}"
    );
    // …and the trailing cap should sit close above the measured power for
    // the throttled stretch.
    let close = trace
        .points
        .iter()
        .filter(|p| p.pl1.value() < 124.0)
        .filter(|p| (p.pl1.value() - p.pkg_power.value()).abs() < 16.0)
        .count();
    assert!(close > trace.points.len() / 4, "trailing cap never engaged");
}

#[test]
fn cluster_composes_with_unmodified_dufp() {
    use dufp_cluster::{Cluster, ClusterConfig, DemandBased};
    let out = Cluster::new(ClusterConfig::demo(21), Box::new(DemandBased::default()))
        .unwrap()
        .run()
        .unwrap();
    // Every node finished, consumed sane power, and the final allocations
    // still sum within the budget.
    let total_ceiling: f64 = out.nodes.iter().map(|n| n.final_ceiling.value()).sum();
    assert!(total_ceiling <= 420.0 + 1e-6, "{total_ceiling}");
    for n in &out.nodes {
        assert!(n.exec_time.value() > 10.0, "{}", n.app);
        assert!(n.avg_power.value() > 40.0, "{}", n.app);
    }
}
