//! The paper's qualitative results, asserted as integration tests.
//!
//! Each test pins one *shape* from the evaluation — who wins, in which
//! direction — not the absolute numbers (the substrate is a calibrated
//! simulator; see DESIGN.md §5).

use dufp::prelude::*;
use dufp::{ratios_vs_default, run_repeated, ControllerKind, ExperimentSpec, RepeatedResult};

const RUNS: usize = 3;

fn measure(app: &str, controller: ControllerKind, seed: u64) -> RepeatedResult {
    let spec = ExperimentSpec {
        sim: SimConfig::yeti_single_socket(seed),
        app: app.into(),
        controller,
        trace: None,
        interval_ms: None,
        telemetry: false,
        fault_plan: None,
        engine: Default::default(),
    };
    run_repeated(&spec, RUNS, seed).unwrap()
}

fn compare(app: &str, controller: ControllerKind, seed: u64) -> dufp::Ratios {
    let d = measure(app, ControllerKind::Default, seed);
    let v = measure(app, controller, seed);
    ratios_vs_default(&d, &v)
}

fn duf(pct: f64) -> ControllerKind {
    ControllerKind::Duf {
        slowdown: Ratio::from_percent(pct),
    }
}

fn dufp(pct: f64) -> ControllerKind {
    ControllerKind::Dufp {
        slowdown: Ratio::from_percent(pct),
    }
}

#[test]
fn ep_is_the_biggest_winner_and_uncore_dominates() {
    // §V-B: "The best savings are reached for EP with 24.27 %. Note that
    // for EP, uncore frequency scaling has the larger impact on power
    // consumption compared to power capping."
    let duf_r = compare("EP", duf(20.0), 11);
    let dufp_r = compare("EP", dufp(20.0), 11);
    assert!(dufp_r.pkg_power_savings_pct > 15.0, "{dufp_r:?}");
    assert!(
        dufp_r.pkg_power_savings_pct > duf_r.pkg_power_savings_pct,
        "capping must add on top of uncore scaling"
    );
    // Uncore's share (DUF alone) exceeds the cap's increment.
    assert!(
        duf_r.pkg_power_savings_pct > dufp_r.pkg_power_savings_pct - duf_r.pkg_power_savings_pct,
        "uncore share {:.2} vs cap increment {:.2}",
        duf_r.pkg_power_savings_pct,
        dufp_r.pkg_power_savings_pct - duf_r.pkg_power_savings_pct
    );
}

#[test]
fn cg_capping_beats_uncore_alone_at_20pct() {
    // §V-B: CG @ 20 % — DUF 9.66 % vs DUFP 17.57 %.
    let duf_r = compare("CG", duf(20.0), 13);
    let dufp_r = compare("CG", dufp(20.0), 13);
    assert!(
        dufp_r.pkg_power_savings_pct > duf_r.pkg_power_savings_pct + 1.0,
        "DUFP {:.2} % must clearly beat DUF {:.2} % on CG @ 20 %",
        dufp_r.pkg_power_savings_pct,
        duf_r.pkg_power_savings_pct
    );
}

#[test]
fn bt_dufp_slows_and_saves_where_duf_cannot() {
    // §V-A/V-B: "DUFP manages to slow down some applications where DUF
    // could not... BT where DUFP provides 5.14 % power savings for 20 %
    // slowdown while DUF manages only to save 0.64 %."
    let duf_r = compare("BT", duf(20.0), 17);
    let dufp_r = compare("BT", dufp(20.0), 17);
    assert!(
        dufp_r.pkg_power_savings_pct > duf_r.pkg_power_savings_pct + 2.0,
        "DUFP {:.2} vs DUF {:.2}",
        dufp_r.pkg_power_savings_pct,
        duf_r.pkg_power_savings_pct
    );
    assert!(
        dufp_r.overhead_pct > duf_r.overhead_pct,
        "the extra savings come from extra (tolerated) slowdown"
    );
    assert!(dufp_r.overhead_pct <= 20.75, "still within tolerance");
}

#[test]
fn ft_dufp_roughly_doubles_duf_at_10pct() {
    // §V-B: "with a 10 % tolerated slowdown, the power savings with FT
    // almost double with DUFP compared to DUF." FT's absolute savings are
    // small, so average the ratio over several seeds.
    let mut duf_sum = 0.0;
    let mut dufp_sum = 0.0;
    for seed in [19, 43, 91] {
        duf_sum += compare("FT", duf(10.0), seed).pkg_power_savings_pct;
        dufp_sum += compare("FT", dufp(10.0), seed).pkg_power_savings_pct;
    }
    let factor = dufp_sum / duf_sum.max(0.3);
    assert!(
        factor > 1.4,
        "DUFP/DUF savings factor {factor:.2} (DUF sum {duf_sum:.2}, DUFP sum {dufp_sum:.2})"
    );
}

#[test]
fn twenty_pct_tolerance_loses_energy_on_memory_apps() {
    // §V-D: "Energy loss occurs at 20 % tolerated slowdown. This is the
    // case for LAMMPS, CG, LU and MG."
    let mut losers = 0;
    for app in ["CG", "LU", "MG"] {
        let r = compare(app, dufp(20.0), 23);
        if r.energy_savings_pct < 0.5 {
            losers += 1;
        }
    }
    assert!(
        losers >= 2,
        "at 20 % tolerance, most memory-heavy apps must stop gaining energy"
    );
}

#[test]
fn ten_pct_is_energy_neutral_or_better_for_most_apps() {
    // §V-H: "for most applications, tolerating 10 % slowdown also allows
    // for power savings with no increase on energy consumption."
    let mut ok = 0;
    let apps = ["BT", "CG", "EP", "FT", "LU", "SP", "UA", "HPL"];
    for app in apps {
        let r = compare(app, dufp(10.0), 29);
        if r.energy_savings_pct >= -0.5 {
            ok += 1;
        }
    }
    assert!(
        ok >= apps.len() - 1,
        "only {ok}/{} apps energy-neutral at 10 %",
        apps.len()
    );
}

#[test]
fn ua_violates_zero_tolerance() {
    // §V-A: UA @ 0 % overshoots (paper: 1.17 %) because deep caps flatten
    // the compute-iteration FLOPS spike below the phase-change trigger.
    let r = compare("UA", dufp(0.0), 31);
    assert!(
        r.overhead_pct > 0.75,
        "UA @ 0 % should overshoot, got {:.2} %",
        r.overhead_pct
    );
}

#[test]
fn lammps_overhead_grows_out_of_proportion_at_20pct() {
    // §V-A: LAMMPS' sub-interval power bursts are aliased by the 200 ms
    // sampler; at 20 % tolerance the accumulated hidden slowdown is the
    // largest among all apps.
    let r = compare("LAMMPS", dufp(20.0), 37);
    assert!(
        r.overhead_pct > 12.0,
        "LAMMPS @ 20 % should show large overhead, got {:.2} %",
        r.overhead_pct
    );
}

#[test]
fn dram_savings_track_slowdown_on_memory_apps() {
    // Fig. 4's mechanism: DRAM power falls because achieved bandwidth
    // falls; CG @ 20 % is the paper's best case (8.83 %).
    let r = compare("CG", dufp(20.0), 41);
    assert!(
        (2.0..15.0).contains(&r.dram_power_savings_pct),
        "CG @ 20 % DRAM savings {:.2} %",
        r.dram_power_savings_pct
    );
}
