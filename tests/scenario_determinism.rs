//! Cross-crate property tests for the datacenter scenario engine.
//!
//! The scorecard contract is stronger than "same numbers": the JSONL
//! emitted for a given (spec, seed, policy set) must be byte-identical
//! across reruns and across worker counts, because CI diffs the bytes
//! and the golden-trace tests pin serialized output. These properties
//! drive the engine with random seeds and budgets to make sure the
//! contract is not an artifact of one lucky seed.

use dufp_scenario::{run_one, run_rows, to_jsonl_bytes, PolicyChoice, ScenarioSpec};
use proptest::prelude::*;

const ALL_POLICIES: [PolicyChoice; 3] = [
    PolicyChoice::Uncapped,
    PolicyChoice::StaticSplit,
    PolicyChoice::DemandBased,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Same seed, same bytes: rerunning the full policy set must
    /// reproduce the scorecard JSONL exactly, and the worker count must
    /// be invisible in the output.
    #[test]
    fn scorecard_bytes_are_a_pure_function_of_the_seed(seed in 0u64..1_000_000) {
        let spec = ScenarioSpec::mini();
        let first = to_jsonl_bytes(&run_rows(&spec, seed, &ALL_POLICIES, 1).unwrap()).unwrap();
        let rerun = to_jsonl_bytes(&run_rows(&spec, seed, &ALL_POLICIES, 1).unwrap()).unwrap();
        prop_assert_eq!(&first, &rerun, "serial rerun drifted");
        let wide = to_jsonl_bytes(&run_rows(&spec, seed, &ALL_POLICIES, 4).unwrap()).unwrap();
        prop_assert_eq!(&first, &wide, "worker count leaked into the scorecard");
    }

    /// Per-tenant attribution is exact every interval (the engine checks
    /// `Σ tenant energy == socket energy` bit-for-bit each physics step),
    /// and the cumulative per-tenant totals reassemble each node's energy
    /// to accumulation-order rounding.
    #[test]
    fn tenant_energy_reassembles_node_energy(
        seed in 0u64..1_000_000,
        policy_idx in 0usize..3,
    ) {
        let spec = ScenarioSpec::mini();
        let r = run_one(&spec, seed, ALL_POLICIES[policy_idx]).unwrap();
        prop_assert!(r.row.conservation_ok, "per-step attribution broke exactness");
        for node in &r.row.nodes {
            let tenant_sum: f64 = node.tenants.iter().map(|t| t.energy_j).sum();
            let scale = node.energy_j.abs().max(1.0);
            prop_assert!(
                (tenant_sum - node.energy_j).abs() <= 1e-9 * scale,
                "node {}: tenants sum to {} J but node reports {} J",
                node.node, tenant_sum, node.energy_j
            );
            prop_assert!(node.energy_j.is_finite() && node.energy_j > 0.0);
        }
    }

    /// Budgets may reshape the fleet's behavior but never its sanity:
    /// finite energy, SLO counts within bounds, and the capped policies
    /// never exceed the uncapped baseline's energy.
    #[test]
    fn random_budgets_keep_the_scorecard_sane(
        seed in 0u64..1_000_000,
        budget_w in 120.0f64..500.0,
    ) {
        let mut spec = ScenarioSpec::mini();
        spec.budget_w = budget_w;
        let rows = run_rows(&spec, seed, &ALL_POLICIES, 2).unwrap();
        prop_assert_eq!(rows.len(), 3);
        let baseline = rows.iter().find(|r| r.policy == "uncapped").unwrap();
        for row in &rows {
            prop_assert!(row.fleet_energy_j.is_finite() && row.fleet_energy_j > 0.0);
            prop_assert!(row.slo_violations <= row.slo_total);
            prop_assert!(row.conservation_ok);
            prop_assert!(
                row.fleet_energy_j <= baseline.fleet_energy_j * (1.0 + 1e-12),
                "{} burned more energy ({} J) than uncapped ({} J)",
                row.policy, row.fleet_energy_j, baseline.fleet_energy_j
            );
        }
    }
}

/// Distinct seeds must actually exercise distinct arrival schedules —
/// a collapsed RNG would make every property above pass vacuously.
#[test]
fn seeds_change_the_scorecard() {
    let spec = ScenarioSpec::mini();
    let a = to_jsonl_bytes(&run_rows(&spec, 7, &ALL_POLICIES, 1).unwrap()).unwrap();
    let b = to_jsonl_bytes(&run_rows(&spec, 8, &ALL_POLICIES, 1).unwrap()).unwrap();
    assert_ne!(a, b, "seed is not reaching the arrival model");
}
