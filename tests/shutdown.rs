//! Cooperative-shutdown behavior of the experiment runner.
//!
//! Lives in its own integration-test binary on purpose: the shutdown flag
//! is process-wide, so flipping it next to concurrently running `run_once`
//! tests would abort them spuriously. As a separate binary this test owns
//! the whole process.

use dufp::{run_once, ControllerKind, ExperimentSpec};
use dufp_sim::SimConfig;
use dufp_types::shutdown;

#[test]
fn shutdown_request_aborts_the_run_cleanly() {
    shutdown::reset();
    shutdown::request();
    let spec = ExperimentSpec {
        sim: SimConfig::yeti_single_socket(0),
        app: "EP".into(),
        controller: ControllerKind::Default,
        trace: None,
        interval_ms: None,
        telemetry: false,
        fault_plan: None,
        engine: Default::default(),
    };
    // The guards drop on the early return, restoring hardware defaults;
    // the caller sees a clean, typed error rather than a dead process.
    let err = run_once(&spec, 1).expect_err("a pending shutdown must abort the run");
    shutdown::reset();
    assert!(err.to_string().contains("shutdown"), "{err}");

    // With the flag cleared the same spec runs to completion.
    let r = run_once(&spec, 1).expect("cleared flag must not abort");
    assert!(r.exec_time.value() > 0.0);
}
