//! Cross-crate property tests: random-but-valid workloads and
//! configurations must never break the controllers' invariants.

use dufp_control::{Actuators, ControlConfig, Controller, Duf, Dufp};
use dufp_counters::{Sampler, Telemetry};
use dufp_rapl::MsrRapl;
use dufp_sim::{Machine, SimConfig};
use dufp_types::{Ratio, SocketId};
use dufp_workloads::synthetic::{GeneratorConfig, WorkloadGenerator};
use dufp_workloads::MaterializeCtx;
use proptest::prelude::*;
use std::sync::Arc;

/// Runs a synthetic workload under a controller, checking actuator bounds
/// every interval; returns (exec seconds, nominal seconds).
fn run_synthetic(seed: u64, slowdown_pct: f64, use_dufp: bool) -> (f64, f64) {
    let mut sim = SimConfig::deterministic(seed);
    sim.noise = dufp_sim::NoiseConfig::default();
    let arch = sim.arch.clone();
    let ctx = MaterializeCtx::from_arch(&arch);

    let mut generator = WorkloadGenerator::new(
        seed,
        GeneratorConfig {
            min_phases: 2,
            max_phases: 8,
            phase_seconds: (0.3, 2.0),
        },
    );
    let workload = generator.generate(&ctx).unwrap();
    let nominal = workload.nominal_duration(&ctx).value();

    let machine = Arc::new(Machine::new(sim));
    machine.load_all(&workload);
    let cfg = ControlConfig::from_arch(&arch, Ratio::from_percent(slowdown_pct)).unwrap();
    let capper =
        Arc::new(MsrRapl::new(Arc::clone(&machine), 1, arch.cores_per_socket as usize).unwrap());
    let mut act =
        dufp_control::HwActuators::new(Arc::clone(&machine), capper, SocketId(0), 0, cfg.clone())
            .unwrap();
    let mut controller: Box<dyn Controller> = if use_dufp {
        Box::new(Dufp::new(cfg.clone()))
    } else {
        Box::new(Duf::new(cfg.clone()))
    };
    let mut sampler = Sampler::new();
    sampler.sample(machine.as_ref(), SocketId(0)).unwrap();

    let ticks = cfg.interval.as_micros() / machine.config().tick.as_micros();
    let max_intervals = (nominal * 10.0 / 0.2) as usize + 500;
    let mut intervals = 0;
    while !machine.done() {
        for _ in 0..ticks {
            machine.tick();
            if machine.done() {
                break;
            }
        }
        if let Some(m) = sampler.sample(machine.as_ref(), SocketId(0)).unwrap() {
            controller.on_interval(&m, &mut act).unwrap();
        }
        // Invariants: actuators always inside their legal ranges.
        let u = act.uncore();
        assert!(u >= cfg.uncore_min && u <= cfg.uncore_max, "uncore {u:?}");
        let cap = act.cap_long();
        assert!(
            cap >= cfg.cap_floor && cap <= act.cap_defaults().1,
            "cap {cap:?}"
        );
        assert!(act.cap_short() >= act.cap_long(), "short < long");
        intervals += 1;
        assert!(
            intervals < max_intervals,
            "workload stuck: {intervals} intervals for nominal {nominal}s"
        );
    }
    (machine.now().as_seconds().value(), nominal)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn dufp_never_leaves_actuator_bounds_and_always_terminates(
        seed in 0u64..1_000,
        slowdown in prop::sample::select(vec![0.0, 5.0, 10.0, 20.0]),
    ) {
        let (t, nominal) = run_synthetic(seed, slowdown, true);
        // Even a pathological phase mix must stay within 2x nominal
        // (the tolerance is at most 20 %; the rest is transients).
        prop_assert!(t < nominal * 2.0, "{t}s vs nominal {nominal}s");
    }

    #[test]
    fn duf_never_leaves_actuator_bounds_and_always_terminates(
        seed in 0u64..1_000,
        slowdown in prop::sample::select(vec![0.0, 10.0]),
    ) {
        let (t, nominal) = run_synthetic(seed, slowdown, false);
        prop_assert!(t < nominal * 2.0, "{t}s vs nominal {nominal}s");
    }

    #[test]
    fn simulation_is_bit_deterministic(seed in 0u64..500) {
        let a = run_synthetic(seed, 10.0, true);
        let b = run_synthetic(seed, 10.0, true);
        prop_assert_eq!(a, b);
    }
}

#[test]
fn soak_ten_simulated_minutes_of_phase_thrash() {
    // A long phase-rich run: DUFP must stay stable (no wedged actuators,
    // no drift in the cap range, bounded actuation rate) over 10 simulated
    // minutes of continuous phase alternation.
    let mut sim = SimConfig::yeti_single_socket(123);
    sim.noise = dufp_sim::NoiseConfig::default();
    let arch = sim.arch.clone();
    let ctx = MaterializeCtx::from_arch(&arch);
    // 150 alternating compute/memory rounds ≈ 600 s nominal.
    let body = [
        dufp_workloads::PhaseSpec {
            name: "c".into(),
            seconds_at_default: 2.5,
            oi: 6.0,
            boundness: dufp_workloads::Boundness::ComputeBound { mem_frac: 0.4 },
            core_util: 0.85,
            overlap_penalty: 0.1,
        },
        dufp_workloads::PhaseSpec {
            name: "m".into(),
            seconds_at_default: 1.5,
            oi: 0.2,
            boundness: dufp_workloads::Boundness::MemoryBound { headroom: 1.3 },
            core_util: 0.5,
            overlap_penalty: 0.05,
        },
    ];
    let specs = dufp_workloads::spec::repeat(&body, 150);
    let workload = dufp_workloads::Workload::from_specs("soak", &specs, &ctx).unwrap();
    let nominal = workload.nominal_duration(&ctx).value();

    let machine = Arc::new(Machine::new(sim));
    machine.load_all(&workload);
    machine.enable_trace(SocketId(0), 200).unwrap();
    let cfg = ControlConfig::from_arch(&arch, Ratio::from_percent(10.0)).unwrap();
    let capper =
        Arc::new(MsrRapl::new(Arc::clone(&machine), 1, arch.cores_per_socket as usize).unwrap());
    let mut act =
        dufp_control::HwActuators::new(Arc::clone(&machine), capper, SocketId(0), 0, cfg.clone())
            .unwrap();
    let mut controller = Dufp::new(cfg.clone());
    let mut sampler = Sampler::new();
    sampler.sample(machine.as_ref(), SocketId(0)).unwrap();
    let ticks = cfg.interval.as_micros() / machine.config().tick.as_micros();
    while !machine.done() {
        for _ in 0..ticks {
            machine.tick();
        }
        if let Some(m) = sampler.sample(machine.as_ref(), SocketId(0)).unwrap() {
            controller.on_interval(&m, &mut act).unwrap();
        }
    }
    let t = machine.now().as_seconds().value();
    assert!(
        t < nominal * 1.12,
        "soak run drifted: {t:.1}s vs nominal {nominal:.1}s"
    );
    let trace = machine.take_trace(SocketId(0)).unwrap().unwrap();
    // The controller must still be actuating at the end (not wedged) and
    // not thrashing (bounded writes per interval).
    let cap_writes = trace.cap_transitions();
    let intervals = (t / 0.2) as usize;
    assert!(
        cap_writes > 50,
        "cap never moved in a 10-minute phase thrash"
    );
    assert!(
        cap_writes < intervals,
        "more cap writes ({cap_writes}) than intervals ({intervals})"
    );
}

#[test]
fn telemetry_counters_are_monotonic_under_control() {
    let sim = SimConfig::yeti_single_socket(5);
    let arch = sim.arch.clone();
    let ctx = MaterializeCtx::from_arch(&arch);
    let machine = Arc::new(Machine::new(sim));
    machine.load_all(&dufp_workloads::apps::cg(&ctx).unwrap());

    let mut prev = machine.sample(SocketId(0)).unwrap();
    for _ in 0..200 {
        for _ in 0..50 {
            machine.tick();
        }
        let cur = machine.sample(SocketId(0)).unwrap();
        assert!(cur.flops >= prev.flops);
        assert!(cur.bytes >= prev.bytes);
        assert!(cur.pkg_energy >= prev.pkg_energy);
        assert!(cur.dram_energy >= prev.dram_energy);
        assert!(cur.at > prev.at);
        prev = cur;
    }
}
