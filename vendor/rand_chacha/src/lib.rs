//! Offline shim for `rand_chacha`: a genuine ChaCha8 block function driving
//! the `ChaCha8Rng` type the simulator seeds its noise streams from.
//!
//! The keystream is real ChaCha with 8 rounds (RFC 7539 block layout, zero
//! stream id), so draws are high-quality and fully deterministic, though the
//! word-consumption order is not bit-identical to upstream `rand_chacha`.

use rand::{RngCore, SeedableRng};

/// A deterministic generator over the ChaCha8 stream cipher keystream.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    block: [u32; 16],
    /// Next unread word in `block`; 16 means exhausted.
    index: usize,
}

const CHACHA_CONST: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONST);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        // state[14..16] stay zero (stream id).
        let initial = state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (word, init) in state.iter_mut().zip(initial) {
            *word = word.wrapping_add(init);
        }
        self.block = state;
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng {
            key,
            counter: 0,
            block: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.block[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        hi << 32 | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn clone_preserves_position() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..5 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..40 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn uniform_floats_cover_unit_interval() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..1000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            lo |= v < 0.25;
            hi |= v > 0.75;
        }
        assert!(lo && hi, "draws must spread across [0, 1)");
    }

    #[test]
    fn keystream_matches_reference_block_structure() {
        // The first block of ChaCha8 with an all-zero key must differ from
        // the raw constants (sanity check that rounds actually ran) and be
        // stable across calls.
        let mut a = ChaCha8Rng::from_seed([0u8; 32]);
        let first: Vec<u32> = (0..16).map(|_| a.next_u32()).collect();
        let mut b = ChaCha8Rng::from_seed([0u8; 32]);
        let again: Vec<u32> = (0..16).map(|_| b.next_u32()).collect();
        assert_eq!(first, again);
        assert_ne!(first[0], CHACHA_CONST[0]);
    }
}
