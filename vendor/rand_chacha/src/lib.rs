//! Offline shim for `rand_chacha`: a genuine ChaCha8 block function driving
//! the `ChaCha8Rng` type the simulator seeds its noise streams from.
//!
//! The keystream is real ChaCha with 8 rounds (RFC 7539 block layout, zero
//! stream id), so draws are high-quality and fully deterministic, though the
//! word-consumption order is not bit-identical to upstream `rand_chacha`.

use rand::{RngCore, SeedableRng};

/// Words buffered per refill: four 16-word ChaCha blocks.
const BUF_WORDS: usize = 64;

/// A deterministic generator over the ChaCha8 stream cipher keystream.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    block: [u32; BUF_WORDS],
    /// Next unread word in `block`; `BUF_WORDS` means exhausted.
    index: usize,
}

const CHACHA_CONST: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// Four ChaCha8 blocks (`counter .. counter+4`) in vertical form via
/// SSE2 intrinsics, which are baseline on every x86-64 target. The
/// auto-vectorizer scalarizes the portable `[u32; 4]` formulation, so
/// the hot path spells out the 4-wide ops; the emitted words are
/// bit-identical to the scalar block function.
#[cfg(target_arch = "x86_64")]
fn blocks4(key: &[u32; 8], counter: u64) -> [[u32; 4]; 16] {
    use core::arch::x86_64::*;

    macro_rules! rotl {
        ($v:expr, $r:literal) => {
            _mm_or_si128(_mm_slli_epi32($v, $r), _mm_srli_epi32($v, 32 - $r))
        };
    }
    macro_rules! qr_sse {
        ($a:ident, $b:ident, $c:ident, $d:ident) => {
            $a = _mm_add_epi32($a, $b);
            $d = rotl!(_mm_xor_si128($d, $a), 16);
            $c = _mm_add_epi32($c, $d);
            $b = rotl!(_mm_xor_si128($b, $c), 12);
            $a = _mm_add_epi32($a, $b);
            $d = rotl!(_mm_xor_si128($d, $a), 8);
            $c = _mm_add_epi32($c, $d);
            $b = rotl!(_mm_xor_si128($b, $c), 7);
        };
    }

    // SAFETY: SSE2 is unconditionally available on x86-64.
    unsafe {
        let splat = |w: u32| _mm_set1_epi32(w as i32);
        let ctr = |j: u64| counter.wrapping_add(j);
        let mut x0 = splat(CHACHA_CONST[0]);
        let mut x1 = splat(CHACHA_CONST[1]);
        let mut x2 = splat(CHACHA_CONST[2]);
        let mut x3 = splat(CHACHA_CONST[3]);
        let mut x4 = splat(key[0]);
        let mut x5 = splat(key[1]);
        let mut x6 = splat(key[2]);
        let mut x7 = splat(key[3]);
        let mut x8 = splat(key[4]);
        let mut x9 = splat(key[5]);
        let mut x10 = splat(key[6]);
        let mut x11 = splat(key[7]);
        let init12 = _mm_set_epi32(
            ctr(3) as u32 as i32,
            ctr(2) as u32 as i32,
            ctr(1) as u32 as i32,
            ctr(0) as u32 as i32,
        );
        let init13 = _mm_set_epi32(
            (ctr(3) >> 32) as u32 as i32,
            (ctr(2) >> 32) as u32 as i32,
            (ctr(1) >> 32) as u32 as i32,
            (ctr(0) >> 32) as u32 as i32,
        );
        let mut x12 = init12;
        let mut x13 = init13;
        // x14/x15 stay zero (stream id).
        let mut x14 = _mm_setzero_si128();
        let mut x15 = _mm_setzero_si128();
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds.
            qr_sse!(x0, x4, x8, x12);
            qr_sse!(x1, x5, x9, x13);
            qr_sse!(x2, x6, x10, x14);
            qr_sse!(x3, x7, x11, x15);
            qr_sse!(x0, x5, x10, x15);
            qr_sse!(x1, x6, x11, x12);
            qr_sse!(x2, x7, x8, x13);
            qr_sse!(x3, x4, x9, x14);
        }
        let final12 = _mm_add_epi32(x12, init12);
        let final13 = _mm_add_epi32(x13, init13);
        let words = [
            _mm_add_epi32(x0, splat(CHACHA_CONST[0])),
            _mm_add_epi32(x1, splat(CHACHA_CONST[1])),
            _mm_add_epi32(x2, splat(CHACHA_CONST[2])),
            _mm_add_epi32(x3, splat(CHACHA_CONST[3])),
            _mm_add_epi32(x4, splat(key[0])),
            _mm_add_epi32(x5, splat(key[1])),
            _mm_add_epi32(x6, splat(key[2])),
            _mm_add_epi32(x7, splat(key[3])),
            _mm_add_epi32(x8, splat(key[4])),
            _mm_add_epi32(x9, splat(key[5])),
            _mm_add_epi32(x10, splat(key[6])),
            _mm_add_epi32(x11, splat(key[7])),
            final12,
            final13,
            x14,
            x15,
        ];
        let mut out = [[0u32; 4]; 16];
        for (dst, &v) in out.iter_mut().zip(&words) {
            _mm_storeu_si128(dst.as_mut_ptr() as *mut __m128i, v);
        }
        out
    }
}

/// Portable fallback for [`blocks4`] on non-x86-64 targets.
#[cfg(not(target_arch = "x86_64"))]
fn blocks4(key: &[u32; 8], counter: u64) -> [[u32; 4]; 16] {
    let splat = |w: u32| [w; 4];
    let ctr = |j: u64| counter.wrapping_add(j);
    let mut x0 = splat(CHACHA_CONST[0]);
    let mut x1 = splat(CHACHA_CONST[1]);
    let mut x2 = splat(CHACHA_CONST[2]);
    let mut x3 = splat(CHACHA_CONST[3]);
    let mut x4 = splat(key[0]);
    let mut x5 = splat(key[1]);
    let mut x6 = splat(key[2]);
    let mut x7 = splat(key[3]);
    let mut x8 = splat(key[4]);
    let mut x9 = splat(key[5]);
    let mut x10 = splat(key[6]);
    let mut x11 = splat(key[7]);
    let mut x12 = [ctr(0) as u32, ctr(1) as u32, ctr(2) as u32, ctr(3) as u32];
    let mut x13 = [
        (ctr(0) >> 32) as u32,
        (ctr(1) >> 32) as u32,
        (ctr(2) >> 32) as u32,
        (ctr(3) >> 32) as u32,
    ];
    let init12 = x12;
    let init13 = x13;
    // x14/x15 stay zero (stream id).
    let mut x14 = [0u32; 4];
    let mut x15 = [0u32; 4];
    for _ in 0..4 {
        // 8 rounds = 4 double-rounds.
        qr!(x0, x4, x8, x12);
        qr!(x1, x5, x9, x13);
        qr!(x2, x6, x10, x14);
        qr!(x3, x7, x11, x15);
        qr!(x0, x5, x10, x15);
        qr!(x1, x6, x11, x12);
        qr!(x2, x7, x8, x13);
        qr!(x3, x4, x9, x14);
    }
    [
        add4(x0, splat(CHACHA_CONST[0])),
        add4(x1, splat(CHACHA_CONST[1])),
        add4(x2, splat(CHACHA_CONST[2])),
        add4(x3, splat(CHACHA_CONST[3])),
        add4(x4, splat(key[0])),
        add4(x5, splat(key[1])),
        add4(x6, splat(key[2])),
        add4(x7, splat(key[3])),
        add4(x8, splat(key[4])),
        add4(x9, splat(key[5])),
        add4(x10, splat(key[6])),
        add4(x11, splat(key[7])),
        add4(x12, init12),
        add4(x13, init13),
        x14,
        x15,
    ]
}

/// Lane-wise `a + b` over four independent blocks (vectorizes to one
/// `paddd` on x86-64).
#[cfg(not(target_arch = "x86_64"))]
#[inline(always)]
fn add4(a: [u32; 4], b: [u32; 4]) -> [u32; 4] {
    [
        a[0].wrapping_add(b[0]),
        a[1].wrapping_add(b[1]),
        a[2].wrapping_add(b[2]),
        a[3].wrapping_add(b[3]),
    ]
}

/// Lane-wise `(a ^ b).rotate_left(R)` over four independent blocks.
#[cfg(not(target_arch = "x86_64"))]
#[inline(always)]
fn xrot4(a: [u32; 4], b: [u32; 4], r: u32) -> [u32; 4] {
    [
        (a[0] ^ b[0]).rotate_left(r),
        (a[1] ^ b[1]).rotate_left(r),
        (a[2] ^ b[2]).rotate_left(r),
        (a[3] ^ b[3]).rotate_left(r),
    ]
}

/// One ChaCha quarter-round over four named state words, each carrying
/// the same word position for four consecutive blocks.
#[cfg(not(target_arch = "x86_64"))]
macro_rules! qr {
    ($a:ident, $b:ident, $c:ident, $d:ident) => {
        $a = add4($a, $b);
        $d = xrot4($d, $a, 16);
        $c = add4($c, $d);
        $b = xrot4($b, $c, 12);
        $a = add4($a, $b);
        $d = xrot4($d, $a, 8);
        $c = add4($c, $d);
        $b = xrot4($b, $c, 7);
    };
}

impl ChaCha8Rng {
    /// Computes blocks `counter .. counter+4` in one pass and buffers
    /// them in keystream order, so the per-draw cost is a masked array
    /// read. The four blocks are laid out *vertically* — each state
    /// word is a 4-lane vector whose lane `j` belongs to block
    /// `counter + j` — the classic counter-mode formulation; the
    /// emitted words are bit-identical to running the scalar block
    /// function four times.
    fn refill(&mut self) {
        let out = blocks4(&self.key, self.counter);
        // Transpose lanes back to keystream order: block j contiguous.
        for (word, lanes) in out.iter().enumerate() {
            for (j, &lane) in lanes.iter().enumerate() {
                self.block[j * 16 + word] = lane;
            }
        }
        self.counter = self.counter.wrapping_add(4);
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng {
            key,
            counter: 0,
            block: [0; BUF_WORDS],
            index: BUF_WORDS,
        }
    }
}

impl RngCore for ChaCha8Rng {
    // Inline across crate boundaries: the simulator draws several times
    // per tick and the call overhead otherwise dwarfs the word read
    // (the workspace builds without LTO).
    #[inline]
    fn next_u32(&mut self) -> u32 {
        if self.index >= BUF_WORDS {
            self.refill();
        }
        // The mask is a no-op (index < BUF_WORDS here) that lets the
        // compiler drop the bounds check on this hot read.
        let word = self.block[self.index & (BUF_WORDS - 1)];
        self.index += 1;
        word
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        // Single-branch fast path: both halves from the buffered
        // keystream, same word order as two `next_u32` calls.
        if self.index + 2 <= BUF_WORDS {
            let i = self.index & (BUF_WORDS - 1);
            let lo = self.block[i] as u64;
            let hi = self.block[(i + 1) & (BUF_WORDS - 1)] as u64;
            self.index += 2;
            return hi << 32 | lo;
        }
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        hi << 32 | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn clone_preserves_position() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..5 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..40 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn uniform_floats_cover_unit_interval() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..1000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            lo |= v < 0.25;
            hi |= v > 0.75;
        }
        assert!(lo && hi, "draws must spread across [0, 1)");
    }

    #[test]
    fn keystream_matches_reference_block_structure() {
        // The first block of ChaCha8 with an all-zero key must differ from
        // the raw constants (sanity check that rounds actually ran) and be
        // stable across calls.
        let mut a = ChaCha8Rng::from_seed([0u8; 32]);
        let first: Vec<u32> = (0..16).map(|_| a.next_u32()).collect();
        let mut b = ChaCha8Rng::from_seed([0u8; 32]);
        let again: Vec<u32> = (0..16).map(|_| b.next_u32()).collect();
        assert_eq!(first, again);
        assert_ne!(first[0], CHACHA_CONST[0]);
    }
}
