//! Offline shim for the `parking_lot` crate.
//!
//! The build container has no registry access, so the workspace vendors the
//! subset of `parking_lot` it uses: `Mutex` and `RwLock` with non-poisoning
//! guards. Lock poisoning is deliberately swallowed (`parking_lot` has no
//! poisoning either): a panicking holder does not wedge the simulator.

use std::sync::{self, PoisonError};

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wraps `value` in a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

/// A reader-writer lock whose `read()`/`write()` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wraps `value` in a new lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock and returns the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_contends() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(7);
        assert_eq!(*l.read(), 7);
        *l.write() = 8;
        assert_eq!(*l.read(), 8);
    }

    #[test]
    fn poisoned_lock_still_usable() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let c = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = c.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
