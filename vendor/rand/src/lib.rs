//! Offline shim for the `rand` crate (0.8 API subset).
//!
//! Provides the `RngCore`/`SeedableRng`/`Rng` trait surface the workspace
//! uses. Generators live elsewhere (see the vendored `rand_chacha`); this
//! crate only defines the traits and the uniform-range sampling helpers.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform `u32`/`u64` words.
pub trait RngCore {
    /// Next uniform 32-bit word.
    fn next_u32(&mut self) -> u32;
    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed type (e.g. `[u8; 32]`).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a 64-bit convenience seed. The seed is
    /// expanded with SplitMix64, matching no particular upstream stream but
    /// fully deterministic.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be sampled uniformly from a generator.
pub trait Standard: Sized {
    /// Draws one uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty => $next:ident),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$next() as $t
            }
        }
    )*};
}
impl_standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64,
                   usize => next_u64, i8 => next_u32, i16 => next_u32, i32 => next_u32,
                   i64 => next_u64, isize => next_u64);

/// A range that can be sampled uniformly (`gen_range` argument).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = <$t as Standard>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let unit = <$t as Standard>::sample(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// High-level convenience methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Uniform value of `T` (`rng.gen::<f64>()` is uniform in [0, 1)).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform value in `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p outside [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// `rand::rngs` module stub for path compatibility.
pub mod rngs {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            // Weyl sequence: uniform enough for the smoke tests below.
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = Counter(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(2.5f64..3.5);
            assert!((2.5..3.5).contains(&v));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn int_ranges_cover_and_stay_in_bounds() {
        let mut rng = Counter(2);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            let v = rng.gen_range(0..4u8);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|s| *s), "all of 0..4 reachable");
        for _ in 0..1000 {
            let v = rng.gen_range(3..=5usize);
            assert!((3..=5).contains(&v));
        }
    }

    #[test]
    fn fill_bytes_fills_odd_lengths() {
        let mut rng = Counter(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|b| *b != 0));
    }
}
