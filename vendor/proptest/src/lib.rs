//! Offline shim for `proptest`.
//!
//! Provides the macro surface this workspace uses — `proptest!` with
//! `#![proptest_config(...)]`, `prop_assert!`, `prop_assert_eq!`, range and
//! tuple strategies, `prop::sample::select`, `prop::collection::vec`,
//! `Strategy::prop_map`, `prop_oneof!` (with optional `weight =>` arms), and
//! `any::<T>()` — over a deterministic SplitMix64 case generator. No
//! shrinking: a failing case panics with the offending input, which is
//! reproducible because the seed is fixed.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// Runner configuration. Only the case count matters here.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated inputs per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` inputs.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// `test_runner` path compatibility with the real crate.
pub mod test_runner {
    pub use crate::{ProptestConfig, TestRunner};
}

/// Deterministic SplitMix64 source feeding every strategy.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

/// A source of test-case values.
pub trait Strategy {
    /// The value type this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Adapts this strategy by applying `f` to every draw.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

/// Weighted choice over boxed strategies of one value type, built by the
/// [`prop_oneof!`] macro.
pub struct Union<T> {
    options: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
}

impl<T> Union<T> {
    /// An empty union; sampling panics until an option is added.
    pub fn new() -> Self {
        Union {
            options: Vec::new(),
        }
    }

    /// Adds `strategy` with relative `weight`.
    pub fn or(mut self, weight: u32, strategy: impl Strategy<Value = T> + 'static) -> Self {
        assert!(weight > 0, "zero-weight prop_oneof arm");
        self.options.push((weight, Box::new(strategy)));
        self
    }
}

impl<T> Default for Union<T> {
    fn default() -> Self {
        Union::new()
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.options.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof over no options");
        let mut pick = rng.below(total);
        for (weight, strategy) in &self.options {
            if pick < u64::from(*weight) {
                return strategy.sample(rng);
            }
            pick -= u64::from(*weight);
        }
        unreachable!("weighted pick out of range")
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct JustValue<T: Clone>(pub T);

impl<T: Clone> Strategy for JustValue<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Real-proptest-compatible constructor for a constant strategy.
#[allow(non_snake_case)]
pub fn Just<T: Clone>(value: T) -> JustValue<T> {
    JustValue(value)
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start() as i128, *self.end() as i128);
                assert!(start <= end, "empty range strategy");
                let span = (end - start + 1) as u64;
                if span == 0 {
                    // Full-width range (e.g. 0u64..=u64::MAX): raw draw.
                    return rng.next_u64() as $t;
                }
                (start + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        let v = self.start + (self.end - self.start) * rng.unit_f64();
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start() + (self.end() - self.start()) * rng.unit_f64()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite spread over a wide magnitude range; degenerate values get
        // dedicated tests rather than random draws.
        (rng.unit_f64() - 0.5) * 2e18
    }
}

/// Strategy wrapper for [`Arbitrary`] types.
#[derive(Debug, Clone, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// `prop::sample` — choice strategies.
pub mod sample {
    use super::{Strategy, TestRng};

    /// Uniform choice from a fixed list.
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone>(Vec<T>);

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            assert!(!self.0.is_empty(), "select from empty list");
            self.0[rng.below(self.0.len() as u64) as usize].clone()
        }
    }

    /// Strategy drawing uniformly from `options`.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        Select(options)
    }
}

/// `prop::collection` — container strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Element-count bounds for [`vec`], inclusive on both ends.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    /// Vector-of-elements strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min + 1) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for vectors of `element` with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Executes a strategy against a test closure for the configured number of
/// deterministic cases.
pub struct TestRunner {
    config: ProptestConfig,
}

impl TestRunner {
    /// A runner for `config`.
    pub fn new(config: ProptestConfig) -> Self {
        TestRunner { config }
    }

    /// Runs `test` for each generated input; panics on the first failure
    /// with the offending input attached.
    pub fn run<S, F>(&mut self, strategy: &S, mut test: F)
    where
        S: Strategy,
        S::Value: Debug + Clone,
        F: FnMut(S::Value) -> Result<(), String>,
    {
        let mut rng = TestRng::new(0xD1F_BEEF);
        for case in 0..self.config.cases {
            let input = strategy.sample(&mut rng);
            if let Err(msg) = test(input.clone()) {
                panic!("proptest case {case} failed: {msg}\ninput: {input:?}");
            }
        }
    }
}

/// The import surface of `proptest::prelude::*`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Weighted choice between strategies yielding one value type.
///
/// Arms are either bare strategies (weight 1) or `weight => strategy`;
/// the two forms can be mixed, as in the real crate:
///
/// ```ignore
/// prop_oneof![
///     (0u8..6).prop_map(Op::Admit),
///     3 => Just(Op::Epoch),
/// ]
/// ```
#[macro_export]
macro_rules! prop_oneof {
    ($($rest:tt)*) => {
        $crate::__prop_oneof!{ [$crate::Union::new()] $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __prop_oneof {
    ( [$acc:expr] ) => { $acc };
    ( [$acc:expr] $weight:literal => $strat:expr, $($rest:tt)* ) => {
        $crate::__prop_oneof!{ [$acc.or($weight, $strat)] $($rest)* }
    };
    ( [$acc:expr] $weight:literal => $strat:expr ) => {
        $acc.or($weight, $strat)
    };
    ( [$acc:expr] $strat:expr, $($rest:tt)* ) => {
        $crate::__prop_oneof!{ [$acc.or(1, $strat)] $($rest)* }
    };
    ( [$acc:expr] $strat:expr ) => {
        $acc.or(1, $strat)
    };
}

/// Defines `#[test]` functions over generated inputs.
///
/// Supports an optional leading `#![proptest_config(expr)]` followed by any
/// number of `fn name(binding in strategy, ...) { body }` items carrying
/// arbitrary attributes (including `#[test]` and doc comments).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($args:tt)* ) $body:block
      $($rest:tt)*
    ) => {
        $crate::__proptest_fn!{ @munch [($cfg) $(#[$meta])* fn $name $body] () $($args)* }
        $crate::__proptest_cases!{ ($cfg) $($rest)* }
    };
}

// Normalizes the two binding forms — `name in strategy` and the
// `name: Type` sugar for `any::<Type>()` — into `(name)(strategy)` pairs,
// then emits the test fn.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fn {
    ( @munch $fixed:tt ($($acc:tt)*) $arg:ident in $strat:expr, $($rest:tt)* ) => {
        $crate::__proptest_fn!{ @munch $fixed ($($acc)* ($arg)($strat)) $($rest)* }
    };
    ( @munch $fixed:tt ($($acc:tt)*) $arg:ident in $strat:expr ) => {
        $crate::__proptest_fn!{ @emit $fixed ($($acc)* ($arg)($strat)) }
    };
    ( @munch $fixed:tt ($($acc:tt)*) $arg:ident : $ty:ty, $($rest:tt)* ) => {
        $crate::__proptest_fn!{ @munch $fixed ($($acc)* ($arg)($crate::any::<$ty>())) $($rest)* }
    };
    ( @munch $fixed:tt ($($acc:tt)*) $arg:ident : $ty:ty ) => {
        $crate::__proptest_fn!{ @emit $fixed ($($acc)* ($arg)($crate::any::<$ty>())) }
    };
    ( @munch $fixed:tt ($($acc:tt)*) ) => {
        $crate::__proptest_fn!{ @emit $fixed ($($acc)*) }
    };
    ( @emit [($cfg:expr) $(#[$meta:meta])* fn $name:ident $body:block]
      ($(($arg:ident)($strat:expr))+) ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __runner = $crate::TestRunner::new(__config);
            let __strategy = ( $($strat,)+ );
            __runner.run(&__strategy, |($($arg,)+)| {
                $body
                #[allow(unreachable_code)]
                Ok(())
            });
        }
    };
}

/// Fails the current proptest case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Fails the current proptest case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return Err(format!(
                "assertion failed: `{:?}` == `{:?}`", __l, __r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return Err(format!(
                "assertion failed: `{:?}` == `{:?}`: {}", __l, __r, format!($($fmt)+)
            ));
        }
    }};
}

/// Fails the current proptest case unless the operands compare unequal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l != __r) {
            return Err(format!("assertion failed: `{:?}` != `{:?}`", __l, __r));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::new(1);
        for _ in 0..1000 {
            let v = crate::Strategy::sample(&(5u8..10), &mut rng);
            assert!((5..10).contains(&v));
            let f = crate::Strategy::sample(&(-2.0f64..3.0), &mut rng);
            assert!((-2.0..3.0).contains(&f));
            let i = crate::Strategy::sample(&(0u8..=255), &mut rng);
            let _ = i; // full domain: any draw is legal
        }
    }

    #[test]
    fn select_and_vec_compose() {
        let mut rng = crate::TestRng::new(2);
        let strat = prop::collection::vec(prop::sample::select(vec![1u32, 2, 3]), 2..5);
        for _ in 0..200 {
            let v = crate::Strategy::sample(&strat, &mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|x| [1, 2, 3].contains(x)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn macro_binds_multiple_args(a in 0u64..100, b in 0.5f64..2.0) {
            prop_assert!(a < 100);
            prop_assert!((0.5..2.0).contains(&b));
            prop_assert_eq!(a, a);
        }

        #[test]
        fn any_u64_draws(raw in any::<u64>()) {
            let _ = raw;
            prop_assert!(true);
        }
    }

    proptest! {
        #[test]
        fn default_config_form_works(x in 0usize..4) {
            prop_assert!(x < 4);
        }
    }

    #[test]
    fn prop_map_transforms_draws() {
        let mut rng = crate::TestRng::new(3);
        let strat = (0u8..10).prop_map(|v| v as u32 * 2);
        for _ in 0..200 {
            let v = crate::Strategy::sample(&strat, &mut rng);
            assert!(v % 2 == 0 && v < 20);
        }
    }

    #[test]
    fn prop_oneof_mixes_weighted_and_bare_arms() {
        let mut rng = crate::TestRng::new(4);
        let strat = prop_oneof![
            (0u8..3).prop_map(i32::from),
            9 => Just(-1i32),
        ];
        let mut constants = 0;
        for _ in 0..1000 {
            match crate::Strategy::sample(&strat, &mut rng) {
                -1 => constants += 1,
                v => assert!((0..3).contains(&v)),
            }
        }
        // The 9-weight constant arm must dominate the 1-weight range arm.
        assert!(constants > 700, "weighting ignored: {constants}/1000");
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_panics_with_input() {
        let mut runner = crate::TestRunner::new(ProptestConfig::with_cases(64));
        runner.run(&(10u32..20,), |(x,)| {
            prop_assert!(x < 15, "x was {x}");
            Ok(())
        });
    }
}
