//! Offline shim for `serde`.
//!
//! The registry is unreachable from the build container, so the workspace
//! vendors a compact serialization framework with the same import surface
//! the code already uses: `serde::{Serialize, Deserialize}` as traits *and*
//! derive macros, driven through a JSON-shaped [`Value`] tree instead of
//! serde's visitor machinery. The vendored `serde_json` renders/parses that
//! tree.
//!
//! Externally-tagged enum encoding, `#[serde(default)]`,
//! `#[serde(default = "path")]` and `#[serde(transparent)]` match upstream
//! semantics for the shapes this repository serializes.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A JSON-shaped value tree: the wire format of this shim.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// An integer number (renders without a decimal point).
    Int(i64),
    /// A floating-point number (renders with a decimal point).
    Num(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object; insertion order is preserved for stable output.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The value under `key` if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Object field list, if this is an object.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Numeric view. Accepts the `"inf"`/`"-inf"`/`"nan"` escape strings
    /// this shim writes for non-finite floats.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Num(n) => Some(*n),
            Value::Str(s) => match s.as_str() {
                "inf" => Some(f64::INFINITY),
                "-inf" => Some(f64::NEG_INFINITY),
                "nan" => Some(f64::NAN),
                _ => None,
            },
            _ => None,
        }
    }

    /// Integer view (exact numbers only).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// Signed integer view (exact numbers only).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Num(n) if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) => Some(*n as i64),
            _ => None,
        }
    }

    /// Exact integer view used by the integer `Deserialize` impls:
    /// accepts `Int` directly and `Num` with zero fraction.
    fn exact_int(&self) -> Option<i128> {
        match self {
            Value::Int(i) => Some(*i as i128),
            Value::Num(n) if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) => Some(*n as i128),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Short type name for error messages.
    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "integer",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

/// Deserialization error: a plain message with optional field context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// A free-form error.
    pub fn custom(msg: impl fmt::Display) -> Self {
        DeError(msg.to_string())
    }

    /// Prefixes the message with a field path segment.
    pub fn in_field(self, field: &str) -> Self {
        DeError(format!("{field}: {}", self.0))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Conversion into the [`Value`] tree.
pub trait Serialize {
    /// Renders `self` as a value tree.
    fn to_value(&self) -> Value;
}

/// Conversion from the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parses `Self` out of a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Owned-deserialization alias for bound compatibility with real serde.
pub trait DeserializeOwned: Deserialize {}
impl<T: Deserialize> DeserializeOwned for T {}

// ---------------------------------------------------------------- primitives

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool()
            .ok_or_else(|| DeError::custom(format!("expected bool, got {}", v.kind())))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        if self.is_finite() {
            Value::Num(*self)
        } else if self.is_nan() {
            Value::Str("nan".into())
        } else if *self > 0.0 {
            Value::Str("inf".into())
        } else {
            Value::Str("-inf".into())
        }
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64()
            .ok_or_else(|| DeError::custom(format!("expected number, got {}", v.kind())))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        f64::from(*self).to_value()
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|n| n as f32)
    }
}

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                match i64::try_from(*self) {
                    Ok(i) => Value::Int(i),
                    // Only u64/usize above i64::MAX land here; precision loss
                    // starts at 2⁶³, far beyond anything this repo counts.
                    Err(_) => Value::Num(*self as f64),
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v
                    .exact_int()
                    .ok_or_else(|| DeError::custom(format!("expected integer, got {}", v.kind())))?;
                <$t>::try_from(n).map_err(|_| {
                    DeError::custom(format!("{n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
impl_serde_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError::custom(format!("expected string, got {}", v.kind())))
    }
}

// Real serde deserializes `&str` by borrowing from the input; a value-tree
// shim has nothing to borrow from, so we leak. Only cold paths (config and
// claim tables) deserialize static strings, so the leak is bounded.
impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(|s| &*Box::leak(s.to_owned().into_boxed_str()))
            .ok_or_else(|| DeError::custom(format!("expected string, got {}", v.kind())))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v
            .as_str()
            .ok_or_else(|| DeError::custom(format!("expected char, got {}", v.kind())))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::custom(format!("expected single char, got {s:?}"))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = v
            .as_array()
            .ok_or_else(|| DeError::custom(format!("expected array, got {}", v.kind())))?;
        items
            .iter()
            .enumerate()
            .map(|(i, item)| T::from_value(item).map_err(|e| e.in_field(&format!("[{i}]"))))
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        let n = items.len();
        items
            .try_into()
            .map_err(|_| DeError::custom(format!("expected {N} elements, got {n}")))
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let items = v
                    .as_array()
                    .ok_or_else(|| DeError::custom(format!("expected tuple array, got {}", v.kind())))?;
                let want = [$($idx),+].len();
                if items.len() != want {
                    return Err(DeError::custom(format!(
                        "expected {want}-tuple, got {} elements", items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx]).map_err(|e| e.in_field(&format!("[{}]", $idx)))?,)+))
            }
        }
    )*};
}
impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let fields = v
            .as_object()
            .ok_or_else(|| DeError::custom(format!("expected object, got {}", v.kind())))?;
        fields
            .iter()
            .map(|(k, v)| {
                V::from_value(v)
                    .map(|v| (k.clone(), v))
                    .map_err(|e| e.in_field(k))
            })
            .collect()
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let fields = v
            .as_object()
            .ok_or_else(|| DeError::custom(format!("expected object, got {}", v.kind())))?;
        fields
            .iter()
            .map(|(k, v)| {
                V::from_value(v)
                    .map(|v| (k.clone(), v))
                    .map_err(|e| e.in_field(k))
            })
            .collect()
    }
}

/// Derive-internal helper: object field lookup by name.
#[doc(hidden)]
pub fn __find<'a>(fields: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Derive-internal helper: behaviour for a field absent from the input.
///
/// Mirrors real serde: `Option<T>` fields fall back to `None` (because
/// `Option::from_value(Null)` succeeds); everything else reports a missing
/// field.
#[doc(hidden)]
pub fn __missing<T: Deserialize>(container: &str, field: &str) -> Result<T, DeError> {
    T::from_value(&Value::Null)
        .map_err(|_| DeError::custom(format!("missing field `{field}` in {container}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_indexing_and_views() {
        let v = Value::Object(vec![
            ("x".into(), Value::Num(3.5)),
            ("s".into(), Value::Str("hi".into())),
            ("a".into(), Value::Array(vec![Value::Bool(true)])),
        ]);
        assert_eq!(v["x"].as_f64(), Some(3.5));
        assert_eq!(v["s"].as_str(), Some("hi"));
        assert_eq!(v["a"][0].as_bool(), Some(true));
        assert_eq!(v["missing"], Value::Null);
    }

    #[test]
    fn primitive_round_trips() {
        assert_eq!(f64::from_value(&1.25f64.to_value()).unwrap(), 1.25);
        assert_eq!(u64::from_value(&7u64.to_value()).unwrap(), 7);
        assert_eq!(String::from_value(&"x".to_value()).unwrap(), "x");
        assert_eq!(Option::<f64>::from_value(&Value::Null).unwrap(), None);
        let v: Vec<u8> = Deserialize::from_value(&vec![1u8, 2, 3].to_value()).unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        let t: (f64, bool) = Deserialize::from_value(&(2.0, true).to_value()).unwrap();
        assert_eq!(t, (2.0, true));
    }

    #[test]
    fn non_finite_floats_round_trip_via_strings() {
        assert_eq!(
            f64::from_value(&f64::INFINITY.to_value()).unwrap(),
            f64::INFINITY
        );
        assert!(f64::from_value(&f64::NAN.to_value()).unwrap().is_nan());
    }

    #[test]
    fn integer_bounds_enforced() {
        assert!(u8::from_value(&Value::Num(256.0)).is_err());
        assert!(u8::from_value(&Value::Num(1.5)).is_err());
        assert!(i8::from_value(&Value::Num(-128.0)).is_ok());
    }

    #[test]
    fn errors_carry_field_context() {
        let v = Value::Array(vec![Value::Num(1.0), Value::Str("no".into())]);
        let err = Vec::<f64>::from_value(&v).unwrap_err();
        assert!(err.to_string().contains("[1]"), "{err}");
    }
}
