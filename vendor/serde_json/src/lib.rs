//! Offline shim for `serde_json`: renders and parses the vendored serde
//! [`Value`] tree as JSON text.
//!
//! Covers the workspace's surface: `to_string`, `to_string_pretty`,
//! `to_writer_pretty`, `from_str`, and `Value` with `v["key"]` indexing.
//! Numbers follow serde_json conventions: integers print without a decimal
//! point, floats always carry one (`125.0`, not `125`).

pub use serde::Value;

use serde::{Deserialize, Serialize};
use std::fmt;

/// Serialization or parse error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    fn new(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.to_string())
    }
}

/// Compact JSON encoding of any `Serialize` type.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Human-oriented JSON with 2-space indentation.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Pretty JSON straight into an `io::Write` sink.
pub fn to_writer_pretty<W: std::io::Write, T: Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    let text = to_string_pretty(value)?;
    writer.write_all(text.as_bytes()).map_err(Error::new)
}

/// Parses a JSON document into any `Deserialize` type.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value(text)?;
    Ok(T::from_value(&value)?)
}

/// Compact JSON encoding as bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    Ok(to_string(value)?.into_bytes())
}

/// Pretty JSON encoding as bytes.
pub fn to_vec_pretty<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    Ok(to_string_pretty(value)?.into_bytes())
}

/// Parses a JSON document from bytes (must be valid UTF-8).
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let text = std::str::from_utf8(bytes).map_err(|e| Error(format!("invalid UTF-8: {e}")))?;
    from_str(text)
}

// ---------------------------------------------------------------- rendering

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => {
            out.push_str(&i.to_string());
        }
        Value::Num(n) => write_float(out, *n),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

/// Floats always carry a decimal point or exponent, matching serde_json.
fn write_float(out: &mut String, n: f64) {
    if !n.is_finite() {
        // Unreachable through the shim's Serialize impls (non-finite floats
        // become escape strings), but keep raw Value users safe.
        out.push_str("null");
        return;
    }
    let text = format!("{n}");
    out.push_str(&text);
    if !text.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ------------------------------------------------------------------ parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses one complete JSON document (rejects trailing garbage).
fn parse_value(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => self.string().map(Value::Str),
            b't' if self.eat_keyword("true") => Ok(Value::Bool(true)),
            b'f' if self.eat_keyword("false") => Ok(Value::Bool(false)),
            b'n' if self.eat_keyword("null") => Ok(Value::Null),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}`, got `{}` at byte {}",
                        other as char, self.pos
                    )))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `]`, got `{}` at byte {}",
                        other as char, self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::new("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(Error::new)?,
                                16,
                            )
                            .map_err(Error::new)?;
                            // Surrogate pairs are not produced by this shim's
                            // writer; map lone surrogates to the replacement
                            // character rather than failing.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar (multi-byte sequences pass
                    // through unchanged).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).map_err(Error::new)?;
                    let c = rest.chars().next().ok_or_else(|| Error::new("bad utf8"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(Error::new)?;
        if !float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|e| Error::new(format!("bad number `{text}`: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_compact() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("EP".into())),
            ("watts".into(), Value::Num(125.0)),
            ("runs".into(), Value::Int(5)),
            (
                "flags".into(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
        ]);
        let text = to_string(&v).unwrap();
        assert_eq!(
            text,
            r#"{"name":"EP","watts":125.0,"runs":5,"flags":[true,null]}"#
        );
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn floats_keep_decimal_point_ints_do_not() {
        assert_eq!(to_string(&125.0f64).unwrap(), "125.0");
        assert_eq!(to_string(&0.5f64).unwrap(), "0.5");
        assert_eq!(to_string(&5u64).unwrap(), "5");
        assert_eq!(to_string(&-3i32).unwrap(), "-3");
    }

    #[test]
    fn pretty_output_is_indented_and_parses_back() {
        let v = Value::Object(vec![(
            "inner".into(),
            Value::Object(vec![("x".into(), Value::Int(1))]),
        )]);
        let text = to_string_pretty(&v).unwrap();
        assert_eq!(text, "{\n  \"inner\": {\n    \"x\": 1\n  }\n}");
        assert_eq!(from_str::<Value>(&text).unwrap(), v);
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "line1\nline2\t\"quoted\" \\slash\u{1}".to_string();
        let text = to_string(&s).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("123 extra").is_err());
        assert!(from_str::<Value>("").is_err());
    }

    #[test]
    fn scientific_notation_parses_as_float() {
        let v: Value = from_str("1e3").unwrap();
        assert_eq!(v.as_f64(), Some(1000.0));
        let v: Value = from_str("-2.5e-2").unwrap();
        assert_eq!(v.as_f64(), Some(-0.025));
    }
}
