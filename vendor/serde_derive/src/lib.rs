//! Offline shim for `serde_derive`.
//!
//! Generates the value-tree `Serialize`/`Deserialize` impls of the vendored
//! `serde` crate. The input item is parsed directly from the
//! `proc_macro::TokenStream` (no `syn`/`quote` — the registry is
//! unreachable), and the impls are emitted as source strings parsed back
//! into a token stream.
//!
//! Supported shapes: named structs, tuple structs, unit structs, and enums
//! with unit / newtype / tuple / struct variants (externally tagged).
//! Supported attributes: `#[serde(transparent)]` on containers,
//! `#[serde(default)]` and `#[serde(default = "path")]` on named fields.
//! Generics are not supported — no derived type in this workspace uses them.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write as _;

/// Per-field `#[serde(...)]` configuration.
#[derive(Default, Clone)]
struct FieldAttrs {
    /// `Some(None)` = `#[serde(default)]`; `Some(Some(path))` = `default = "path"`.
    default: Option<Option<String>>,
}

/// One named field.
struct Field {
    name: String,
    attrs: FieldAttrs,
}

/// One enum variant.
struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    /// Tuple variant with this many fields.
    Tuple(usize),
    Named(Vec<Field>),
}

enum Kind {
    Named(Vec<Field>),
    /// Tuple struct with this many fields.
    Tuple(usize),
    Unit,
    Enum(Vec<Variant>),
}

struct Input {
    name: String,
    transparent: bool,
    kind: Kind,
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_input(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_input(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ------------------------------------------------------------------ parsing

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    let mut transparent = false;
    while let Some(attrs) = take_attr(&tokens, &mut i) {
        if serde_attr_words(&attrs).iter().any(|w| w == "transparent") {
            transparent = true;
        }
    }
    skip_visibility(&tokens, &mut i);

    let keyword = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected `struct` or `enum`, got {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected item name, got {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("derive shim does not support generic type `{name}`");
    }

    let kind = match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::Unit,
            other => panic!("unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            other => panic!("unsupported enum body for `{name}`: {other:?}"),
        },
        other => panic!("cannot derive serde impls for `{other} {name}`"),
    };

    Input {
        name,
        transparent,
        kind,
    }
}

/// If `tokens[*i]` starts an attribute (`# [ ... ]`), consumes it and
/// returns its bracket-group tokens.
fn take_attr(tokens: &[TokenTree], i: &mut usize) -> Option<Vec<TokenTree>> {
    match (tokens.get(*i), tokens.get(*i + 1)) {
        (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g)))
            if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
        {
            *i += 2;
            Some(g.stream().into_iter().collect())
        }
        _ => None,
    }
}

/// Extracts the comma-separated words of a `serde(...)` attribute, with
/// `name = "literal"` pairs flattened to `name=literal` (quotes stripped).
/// Returns an empty list for non-serde attributes (doc comments, repr, ...).
fn serde_attr_words(attr: &[TokenTree]) -> Vec<String> {
    match (attr.first(), attr.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(g)))
            if id.to_string() == "serde" && g.delimiter() == Delimiter::Parenthesis =>
        {
            let mut words = Vec::new();
            let mut current = String::new();
            for tok in g.stream() {
                match tok {
                    TokenTree::Punct(p) if p.as_char() == ',' => {
                        if !current.is_empty() {
                            words.push(std::mem::take(&mut current));
                        }
                    }
                    TokenTree::Punct(p) if p.as_char() == '=' => current.push('='),
                    TokenTree::Literal(lit) => {
                        current.push_str(lit.to_string().trim_matches('"'));
                    }
                    TokenTree::Ident(id) => current.push_str(&id.to_string()),
                    other => current.push_str(&other.to_string()),
                }
            }
            if !current.is_empty() {
                words.push(current);
            }
            words
        }
        _ => Vec::new(),
    }
}

fn field_attrs(words: &[String], attrs: &mut FieldAttrs) {
    for word in words {
        if word == "default" {
            attrs.default = Some(None);
        } else if let Some(path) = word.strip_prefix("default=") {
            attrs.default = Some(Some(path.to_string()));
        }
    }
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(
            tokens.get(*i),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            *i += 1; // pub(crate) / pub(super)
        }
    }
}

/// Skips a type expression: everything up to a top-level `,`, tracking angle
/// bracket depth so `HashMap<String, V>` stays atomic. Parens/brackets are
/// already single `Group` tokens.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0usize;
    while let Some(tok) = tokens.get(*i) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                ',' if angle_depth == 0 => return,
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut attrs = FieldAttrs::default();
        while let Some(attr) = take_attr(&tokens, &mut i) {
            field_attrs(&serde_attr_words(&attr), &mut attrs);
        }
        skip_visibility(&tokens, &mut i);
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected field name, got {other}"),
        };
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("expected `:` after field `{name}`, got {other}"),
        }
        skip_type(&tokens, &mut i);
        i += 1; // the comma (or one past the end)
        fields.push(Field { name, attrs });
    }
    fields
}

/// Counts the fields of a tuple struct / tuple variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        while take_attr(&tokens, &mut i).is_some() {}
        skip_visibility(&tokens, &mut i);
        skip_type(&tokens, &mut i);
        i += 1;
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while take_attr(&tokens, &mut i).is_some() {}
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected variant name, got {other}"),
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantShape::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantShape::Tuple(count_tuple_fields(g.stream()))
            }
            _ => VariantShape::Unit,
        };
        // Skip an optional discriminant, then the trailing comma.
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            i += 1;
            while i < tokens.len()
                && !matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',')
            {
                i += 1;
            }
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, shape });
    }
    variants
}

// --------------------------------------------------------------- generation

fn gen_serialize(item: &Input) -> String {
    let name = &item.name;
    let mut body = String::new();
    match &item.kind {
        Kind::Named(fields) => {
            if item.transparent {
                assert_eq!(
                    fields.len(),
                    1,
                    "#[serde(transparent)] needs exactly one field"
                );
                let _ = write!(
                    body,
                    "::serde::Serialize::to_value(&self.{})",
                    fields[0].name
                );
            } else {
                body.push_str("::serde::Value::Object(vec![");
                for f in fields {
                    let _ = write!(
                        body,
                        "(\"{0}\".to_string(), ::serde::Serialize::to_value(&self.{0})),",
                        f.name
                    );
                }
                body.push_str("])");
            }
        }
        Kind::Tuple(1) => body.push_str("::serde::Serialize::to_value(&self.0)"),
        Kind::Tuple(n) => {
            body.push_str("::serde::Value::Array(vec![");
            for idx in 0..*n {
                let _ = write!(body, "::serde::Serialize::to_value(&self.{idx}),");
            }
            body.push_str("])");
        }
        Kind::Unit => body.push_str("::serde::Value::Null"),
        Kind::Enum(variants) => {
            body.push_str("match self {");
            for v in variants {
                let vname = &v.name;
                match &v.shape {
                    VariantShape::Unit => {
                        let _ = write!(
                            body,
                            "{name}::{vname} => ::serde::Value::Str(\"{vname}\".to_string()),"
                        );
                    }
                    VariantShape::Tuple(1) => {
                        let _ = write!(
                            body,
                            "{name}::{vname}(__f0) => ::serde::Value::Object(vec![(\
                             \"{vname}\".to_string(), ::serde::Serialize::to_value(__f0))]),"
                        );
                    }
                    VariantShape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let _ = write!(
                            body,
                            "{name}::{vname}({}) => ::serde::Value::Object(vec![(\
                             \"{vname}\".to_string(), ::serde::Value::Array(vec![",
                            binds.join(", ")
                        );
                        for b in &binds {
                            let _ = write!(body, "::serde::Serialize::to_value({b}),");
                        }
                        body.push_str("]))]),");
                    }
                    VariantShape::Named(fields) => {
                        let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let _ = write!(
                            body,
                            "{name}::{vname} {{ {} }} => ::serde::Value::Object(vec![(\
                             \"{vname}\".to_string(), ::serde::Value::Object(vec![",
                            binds.join(", ")
                        );
                        for f in fields {
                            let _ = write!(
                                body,
                                "(\"{0}\".to_string(), ::serde::Serialize::to_value({0})),",
                                f.name
                            );
                        }
                        body.push_str("]))]),");
                    }
                }
            }
            body.push('}');
        }
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

/// Emits the expression deserializing one named field from object `__f` of
/// container `container`.
fn named_field_expr(container: &str, f: &Field) -> String {
    let fname = &f.name;
    let missing = match &f.attrs.default {
        None => format!("::serde::__missing(\"{container}\", \"{fname}\")?"),
        Some(None) => "::core::default::Default::default()".to_string(),
        Some(Some(path)) => format!("{path}()"),
    };
    format!(
        "match ::serde::__find(__f, \"{fname}\") {{\n\
         Some(__v) => ::serde::Deserialize::from_value(__v)\
         .map_err(|__e| __e.in_field(\"{fname}\"))?,\n\
         None => {missing},\n\
         }}"
    )
}

fn gen_deserialize(item: &Input) -> String {
    let name = &item.name;
    let mut body = String::new();
    match &item.kind {
        Kind::Named(fields) => {
            if item.transparent {
                assert_eq!(
                    fields.len(),
                    1,
                    "#[serde(transparent)] needs exactly one field"
                );
                let _ = write!(
                    body,
                    "Ok({name} {{ {}: ::serde::Deserialize::from_value(__v)? }})",
                    fields[0].name
                );
            } else {
                let _ = write!(
                    body,
                    "let __f = __v.as_object().ok_or_else(|| ::serde::DeError::custom(\
                     format!(\"{name}: expected object\")))?;\nOk({name} {{"
                );
                for f in fields {
                    let _ = write!(body, "{}: {},", f.name, named_field_expr(name, f));
                }
                body.push_str("})");
            }
        }
        Kind::Tuple(1) => {
            let _ = write!(body, "Ok({name}(::serde::Deserialize::from_value(__v)?))");
        }
        Kind::Tuple(n) => {
            let _ = write!(
                body,
                "let __a = __v.as_array().ok_or_else(|| ::serde::DeError::custom(\
                 format!(\"{name}: expected array\")))?;\n\
                 if __a.len() != {n} {{ return Err(::serde::DeError::custom(format!(\
                 \"{name}: expected {n} elements, got {{}}\", __a.len()))); }}\n\
                 Ok({name}("
            );
            for idx in 0..*n {
                let _ = write!(body, "::serde::Deserialize::from_value(&__a[{idx}])?,");
            }
            body.push_str("))");
        }
        Kind::Unit => {
            let _ = write!(body, "let _ = __v; Ok({name})");
        }
        Kind::Enum(variants) => {
            // String tag → unit variant.
            body.push_str("if let Some(__tag) = __v.as_str() {\nreturn match __tag {");
            for v in variants {
                if matches!(v.shape, VariantShape::Unit) {
                    let _ = write!(body, "\"{0}\" => Ok({name}::{0}),", v.name);
                }
            }
            let _ = write!(
                body,
                "__other => Err(::serde::DeError::custom(format!(\
                 \"unknown variant `{{__other}}` of {name}\"))),\n}};\n}}\n"
            );
            // Single-key object → data variant.
            body.push_str(
                "if let Some(__obj) = __v.as_object() {\nif __obj.len() == 1 {\n\
                 let (__tag, __inner) = &__obj[0];\nreturn match __tag.as_str() {",
            );
            for v in variants {
                let vname = &v.name;
                match &v.shape {
                    VariantShape::Unit => {}
                    VariantShape::Tuple(1) => {
                        let _ = write!(
                            body,
                            "\"{vname}\" => Ok({name}::{vname}(\
                             ::serde::Deserialize::from_value(__inner)\
                             .map_err(|__e| __e.in_field(\"{vname}\"))?)),"
                        );
                    }
                    VariantShape::Tuple(n) => {
                        let _ = write!(
                            body,
                            "\"{vname}\" => {{\n\
                             let __a = __inner.as_array().ok_or_else(|| \
                             ::serde::DeError::custom(format!(\"{name}::{vname}: expected array\")))?;\n\
                             if __a.len() != {n} {{ return Err(::serde::DeError::custom(format!(\
                             \"{name}::{vname}: expected {n} elements, got {{}}\", __a.len()))); }}\n\
                             Ok({name}::{vname}("
                        );
                        for idx in 0..*n {
                            let _ = write!(body, "::serde::Deserialize::from_value(&__a[{idx}])?,");
                        }
                        body.push_str("))\n},");
                    }
                    VariantShape::Named(fields) => {
                        let _ = write!(
                            body,
                            "\"{vname}\" => {{\n\
                             let __f = __inner.as_object().ok_or_else(|| \
                             ::serde::DeError::custom(format!(\"{name}::{vname}: expected object\")))?;\n\
                             Ok({name}::{vname} {{"
                        );
                        let container = format!("{name}::{vname}");
                        for f in fields {
                            let _ =
                                write!(body, "{}: {},", f.name, named_field_expr(&container, f));
                        }
                        body.push_str("})\n},");
                    }
                }
            }
            let _ = write!(
                body,
                "__other => Err(::serde::DeError::custom(format!(\
                 \"unknown variant `{{__other}}` of {name}\"))),\n}};\n}}\n}}\n\
                 Err(::serde::DeError::custom(\
                 \"{name}: expected variant tag (string or single-key object)\".to_string()))"
            );
        }
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> ::core::result::Result<Self, ::serde::DeError> {{\n\
         {body}\n\
         }}\n\
         }}"
    )
}
