//! Offline shim for the `rayon` crate.
//!
//! Implements the `par_iter().map(..).collect()` shape the workspace uses
//! with std scoped threads and an atomic work-stealing cursor. Not a general
//! parallel-iterator library: stages before `map` are captured eagerly, and
//! the only combinators are the ones this repository calls.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Import surface mirroring `rayon::prelude::*`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

/// A materialized parallel iterator: the items plus a deferred pipeline.
pub struct ParIter<T> {
    items: Vec<T>,
}

/// A parallel map stage, executed at `collect`/`for_each` time.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

/// Types convertible into a parallel iterator by value.
pub trait IntoParallelIterator {
    /// Item type produced.
    type Item: Send;
    /// Converts into the parallel pipeline entry point.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

/// `.par_iter()` sugar on collections yielding references.
pub trait IntoParallelRefIterator<'a> {
    /// Reference item type produced.
    type Item: Send + 'a;
    /// Borrowing counterpart of [`IntoParallelIterator::into_par_iter`].
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl IntoParallelIterator for std::ops::Range<u64> {
    type Item = u64;
    fn into_par_iter(self) -> ParIter<u64> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a, const N: usize> IntoParallelRefIterator<'a> for [T; N] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// The combinators shared by every pipeline stage.
pub trait ParallelIterator: Sized {
    /// Item type flowing out of this stage.
    type Item: Send;

    /// Runs the pipeline and returns the outputs in input order.
    fn run(self) -> Vec<Self::Item>;

    /// Maps each item through `f` in parallel.
    fn map<U: Send, F: Fn(Self::Item) -> U + Sync>(self, f: F) -> ParMap<Self::Item, F> {
        ParMap {
            items: self.run_lazy(),
            f,
        }
    }

    /// Collects the outputs, preserving input order. Works for any
    /// `FromIterator` target, including `Result<Vec<_>, E>`.
    fn collect<C: FromIterator<Self::Item>>(self) -> C {
        self.run().into_iter().collect()
    }

    /// Calls `f` on every item (parallel side-effect stage).
    fn for_each<F: Fn(Self::Item) + Sync>(self, f: F)
    where
        Self::Item: Send,
    {
        self.map(f).run();
    }

    #[doc(hidden)]
    fn run_lazy(self) -> Vec<Self::Item> {
        self.run()
    }
}

impl<T: Send> ParallelIterator for ParIter<T> {
    type Item = T;
    fn run(self) -> Vec<T> {
        self.items
    }
}

impl<T: Send, U: Send, F: Fn(T) -> U + Sync> ParallelIterator for ParMap<T, F> {
    type Item = U;

    fn run(self) -> Vec<U> {
        parallel_map(self.items, &self.f)
    }
}

/// Applies `f` to every item on a small thread pool, preserving order.
fn parallel_map<T: Send, U: Send, F: Fn(T) -> U + Sync>(items: Vec<T>, f: &F) -> Vec<U> {
    let n = items.len();
    if n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(n);

    // Hand out items through a cursor; workers push (index, output) pairs.
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
    let cursor = AtomicUsize::new(0);
    let out: Mutex<Vec<(usize, U)>> = Mutex::new(Vec::with_capacity(n));

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut local: Vec<(usize, U)> = Vec::new();
                loop {
                    let idx = cursor.fetch_add(1, Ordering::Relaxed);
                    if idx >= n {
                        break;
                    }
                    let item = slots[idx]
                        .lock()
                        .expect("slot lock poisoned")
                        .take()
                        .expect("item taken once");
                    local.push((idx, f(item)));
                }
                out.lock().expect("output lock poisoned").append(&mut local);
            });
        }
    });

    let mut pairs = out.into_inner().expect("output lock poisoned");
    pairs.sort_by_key(|(i, _)| *i);
    debug_assert_eq!(pairs.len(), n);
    pairs.into_iter().map(|(_, v)| v).collect()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<i64> = (0..1000usize)
            .into_par_iter()
            .map(|i| i as i64 * 2)
            .collect();
        assert_eq!(v.len(), 1000);
        assert!(v.iter().enumerate().all(|(i, x)| *x == i as i64 * 2));
    }

    #[test]
    fn par_iter_borrows() {
        let data = vec![1u32, 2, 3, 4];
        let squared: Vec<u32> = data.par_iter().map(|x| x * x).collect();
        assert_eq!(squared, vec![1, 4, 9, 16]);
        assert_eq!(data.len(), 4, "data still owned here");
    }

    #[test]
    fn collect_into_result_short_circuits_to_err() {
        let r: Result<Vec<usize>, String> = (0..10usize)
            .into_par_iter()
            .map(|i| {
                if i == 7 {
                    Err("seven".to_string())
                } else {
                    Ok(i)
                }
            })
            .collect();
        assert_eq!(r.unwrap_err(), "seven");
    }

    #[test]
    fn work_actually_spreads_across_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let ids = Mutex::new(HashSet::new());
        (0..64usize)
            .into_par_iter()
            .map(|_| {
                std::thread::sleep(std::time::Duration::from_millis(2));
                ids.lock().unwrap().insert(std::thread::current().id());
            })
            .collect::<Vec<_>>();
        // On any multi-core runner at least two workers participate.
        if std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            > 1
        {
            assert!(ids.into_inner().unwrap().len() > 1);
        }
    }
}
