//! Offline shim for the `rayon` crate.
//!
//! Implements the `par_iter().map(..).collect()` shape the workspace uses
//! with std scoped threads and an atomic work-stealing cursor. Not a general
//! parallel-iterator library: stages before `map` are captured eagerly, and
//! the only combinators are the ones this repository calls.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Import surface mirroring `rayon::prelude::*`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

thread_local! {
    /// Worker-count override installed by [`ThreadPool::install`] for the
    /// current thread. `None` means "use all available cores".
    static POOL_WIDTH: Cell<Option<usize>> = const { Cell::new(None) };
    /// Set inside a `parallel_map` worker: nested parallel stages run
    /// inline instead of spawning another full set of threads, so a pool
    /// of width N never oversubscribes to N².
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Builder mirroring `rayon::ThreadPoolBuilder` for the one configuration
/// axis this workspace needs: the worker count.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Error type kept for API parity with the real crate; this shim's
/// `build` cannot fail (pools are materialized lazily per call).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// A builder with the default configuration (all available cores).
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Sets the worker count; `0` (the default) means all available cores,
    /// matching the real crate's semantics.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool. Infallible here, but keeps the `Result` shape so
    /// call sites are source-compatible with the real crate.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            width: if self.num_threads == 0 {
                default_parallelism()
            } else {
                self.num_threads
            },
        })
    }
}

/// A scoped worker-count limit. Unlike the real crate there are no
/// persistent worker threads: `install` pins the width for parallel stages
/// executed inside the closure, and each stage spawns (at most) that many
/// scoped threads for its own duration.
#[derive(Debug)]
pub struct ThreadPool {
    width: usize,
}

impl ThreadPool {
    /// Runs `op` with this pool's worker count governing every parallel
    /// stage started on this thread inside it.
    pub fn install<R, F: FnOnce() -> R>(&self, op: F) -> R {
        let prev = POOL_WIDTH.with(|w| w.replace(Some(self.width)));
        let result = op();
        POOL_WIDTH.with(|w| w.set(prev));
        result
    }

    /// The worker count this pool was built with.
    pub fn current_num_threads(&self) -> usize {
        self.width
    }
}

/// The worker count parallel stages on this thread will use: the innermost
/// [`ThreadPool::install`] width, or all available cores outside one.
pub fn current_num_threads() -> usize {
    POOL_WIDTH
        .with(|w| w.get())
        .unwrap_or_else(default_parallelism)
}

fn default_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
}

/// A materialized parallel iterator: the items plus a deferred pipeline.
pub struct ParIter<T> {
    items: Vec<T>,
}

/// A parallel map stage, executed at `collect`/`for_each` time.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

/// Types convertible into a parallel iterator by value.
pub trait IntoParallelIterator {
    /// Item type produced.
    type Item: Send;
    /// Converts into the parallel pipeline entry point.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

/// `.par_iter()` sugar on collections yielding references.
pub trait IntoParallelRefIterator<'a> {
    /// Reference item type produced.
    type Item: Send + 'a;
    /// Borrowing counterpart of [`IntoParallelIterator::into_par_iter`].
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl IntoParallelIterator for std::ops::Range<u64> {
    type Item = u64;
    fn into_par_iter(self) -> ParIter<u64> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a, const N: usize> IntoParallelRefIterator<'a> for [T; N] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// The combinators shared by every pipeline stage.
pub trait ParallelIterator: Sized {
    /// Item type flowing out of this stage.
    type Item: Send;

    /// Runs the pipeline and returns the outputs in input order.
    fn run(self) -> Vec<Self::Item>;

    /// Maps each item through `f` in parallel.
    fn map<U: Send, F: Fn(Self::Item) -> U + Sync>(self, f: F) -> ParMap<Self::Item, F> {
        ParMap {
            items: self.run_lazy(),
            f,
        }
    }

    /// Collects the outputs, preserving input order. Works for any
    /// `FromIterator` target, including `Result<Vec<_>, E>`.
    fn collect<C: FromIterator<Self::Item>>(self) -> C {
        self.run().into_iter().collect()
    }

    /// Calls `f` on every item (parallel side-effect stage).
    fn for_each<F: Fn(Self::Item) + Sync>(self, f: F)
    where
        Self::Item: Send,
    {
        self.map(f).run();
    }

    #[doc(hidden)]
    fn run_lazy(self) -> Vec<Self::Item> {
        self.run()
    }
}

impl<T: Send> ParallelIterator for ParIter<T> {
    type Item = T;
    fn run(self) -> Vec<T> {
        self.items
    }
}

impl<T: Send, U: Send, F: Fn(T) -> U + Sync> ParallelIterator for ParMap<T, F> {
    type Item = U;

    fn run(self) -> Vec<U> {
        parallel_map(self.items, &self.f)
    }
}

/// Applies `f` to every item on a small thread pool, preserving order.
fn parallel_map<T: Send, U: Send, F: Fn(T) -> U + Sync>(items: Vec<T>, f: &F) -> Vec<U> {
    let n = items.len();
    // Nested parallel stages run inline on the worker that reached them: a
    // pool of width W stays W threads wide instead of exploding to W².
    if n <= 1 || IN_WORKER.with(Cell::get) {
        return items.into_iter().map(f).collect();
    }
    let workers = current_num_threads().min(n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }

    // Hand out items through a cursor; workers push (index, output) pairs.
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
    let cursor = AtomicUsize::new(0);
    let out: Mutex<Vec<(usize, U)>> = Mutex::new(Vec::with_capacity(n));

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                IN_WORKER.with(|w| w.set(true));
                let mut local: Vec<(usize, U)> = Vec::new();
                loop {
                    let idx = cursor.fetch_add(1, Ordering::Relaxed);
                    if idx >= n {
                        break;
                    }
                    let item = slots[idx]
                        .lock()
                        .expect("slot lock poisoned")
                        .take()
                        .expect("item taken once");
                    local.push((idx, f(item)));
                }
                out.lock().expect("output lock poisoned").append(&mut local);
            });
        }
    });

    let mut pairs = out.into_inner().expect("output lock poisoned");
    pairs.sort_by_key(|(i, _)| *i);
    debug_assert_eq!(pairs.len(), n);
    pairs.into_iter().map(|(_, v)| v).collect()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<i64> = (0..1000usize)
            .into_par_iter()
            .map(|i| i as i64 * 2)
            .collect();
        assert_eq!(v.len(), 1000);
        assert!(v.iter().enumerate().all(|(i, x)| *x == i as i64 * 2));
    }

    #[test]
    fn par_iter_borrows() {
        let data = vec![1u32, 2, 3, 4];
        let squared: Vec<u32> = data.par_iter().map(|x| x * x).collect();
        assert_eq!(squared, vec![1, 4, 9, 16]);
        assert_eq!(data.len(), 4, "data still owned here");
    }

    #[test]
    fn collect_into_result_short_circuits_to_err() {
        let r: Result<Vec<usize>, String> = (0..10usize)
            .into_par_iter()
            .map(|i| {
                if i == 7 {
                    Err("seven".to_string())
                } else {
                    Ok(i)
                }
            })
            .collect();
        assert_eq!(r.unwrap_err(), "seven");
    }

    #[test]
    fn work_actually_spreads_across_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let ids = Mutex::new(HashSet::new());
        (0..64usize)
            .into_par_iter()
            .map(|_| {
                std::thread::sleep(std::time::Duration::from_millis(2));
                ids.lock().unwrap().insert(std::thread::current().id());
            })
            .collect::<Vec<_>>();
        // On any multi-core runner at least two workers participate.
        if std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            > 1
        {
            assert!(ids.into_inner().unwrap().len() > 1);
        }
    }

    #[test]
    fn installed_pool_runs_on_multiple_os_threads_even_on_one_core() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        // The regression this guards: a pool asked for >= 2 workers must
        // spawn them regardless of available_parallelism (single-core CI
        // boxes previously got a silently sequential pool). Each item
        // sleeps long enough that the second worker always claims work.
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(2)
            .build()
            .expect("shim build is infallible");
        assert_eq!(pool.current_num_threads(), 2);
        let ids = Mutex::new(HashSet::new());
        pool.install(|| {
            assert_eq!(crate::current_num_threads(), 2);
            (0..16usize)
                .into_par_iter()
                .map(|_| {
                    ids.lock().unwrap().insert(std::thread::current().id());
                    std::thread::sleep(std::time::Duration::from_millis(20));
                })
                .collect::<Vec<_>>();
        });
        let ids = ids.into_inner().unwrap();
        assert!(ids.len() >= 2, "expected >= 2 worker threads, saw {ids:?}");
    }

    #[test]
    fn installed_width_caps_worker_fanout() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(2)
            .build()
            .expect("shim build is infallible");
        let ids = Mutex::new(HashSet::new());
        pool.install(|| {
            (0..64usize)
                .into_par_iter()
                .map(|_| {
                    ids.lock().unwrap().insert(std::thread::current().id());
                })
                .collect::<Vec<_>>();
        });
        assert!(ids.into_inner().unwrap().len() <= 2);
    }

    #[test]
    fn install_restores_previous_width() {
        let outer = crate::ThreadPoolBuilder::new()
            .num_threads(3)
            .build()
            .unwrap();
        let inner = crate::ThreadPoolBuilder::new()
            .num_threads(2)
            .build()
            .unwrap();
        outer.install(|| {
            assert_eq!(crate::current_num_threads(), 3);
            inner.install(|| assert_eq!(crate::current_num_threads(), 2));
            assert_eq!(crate::current_num_threads(), 3);
        });
    }

    #[test]
    fn nested_parallel_stages_run_inline_without_fanout() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(2)
            .build()
            .expect("shim build is infallible");
        let ids = Mutex::new(HashSet::new());
        let v: Vec<usize> = pool.install(|| {
            (0..8usize)
                .into_par_iter()
                .map(|i| {
                    // A nested stage inside a worker must not spawn its own
                    // threads: its items run on the worker that reached it.
                    let inner: Vec<usize> = (0..8usize)
                        .into_par_iter()
                        .map(|j| {
                            ids.lock().unwrap().insert(std::thread::current().id());
                            i * 8 + j
                        })
                        .collect();
                    inner.into_iter().sum()
                })
                .collect()
        });
        assert_eq!(v.len(), 8);
        assert!(
            ids.into_inner().unwrap().len() <= 2,
            "nested stages must reuse the outer pool's workers"
        );
        // Order and values survive the nesting.
        assert_eq!(v[0], (0..8).sum::<usize>());
    }
}
