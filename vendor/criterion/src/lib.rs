//! Offline shim for `criterion`.
//!
//! Keeps the workspace's benchmarks compiling and runnable without the
//! registry: same macro/entry-point surface (`criterion_group!`,
//! `criterion_main!`, `Criterion`, groups, `black_box`, `BatchSize`,
//! `Throughput`, `BenchmarkId`), but measurement is a simple
//! warmup-then-timed loop printing mean time per iteration. Good enough to
//! spot order-of-magnitude regressions; not a statistics engine.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value pass-through.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// How `iter_batched` hands inputs to the routine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs: batch many per measurement.
    SmallInput,
    /// Large per-iteration inputs: one per measurement.
    LargeInput,
    /// Inputs too large to keep more than one alive.
    PerIteration,
}

/// Units for derived throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier combining a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function/parameter` id.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", function.into()),
        }
    }

    /// Id that is just the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Drives one benchmark routine.
pub struct Bencher {
    /// Mean wall time per iteration, filled in by `iter*`.
    elapsed_per_iter: Duration,
    iters_done: u64,
    measure_iters: u64,
}

impl Bencher {
    fn new(measure_iters: u64) -> Self {
        Bencher {
            elapsed_per_iter: Duration::ZERO,
            iters_done: 0,
            measure_iters,
        }
    }

    /// Times `routine` over a fixed iteration budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup: let caches/branch predictors settle.
        for _ in 0..self.measure_iters.div_ceil(10).max(1) {
            black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..self.measure_iters {
            black_box(routine());
        }
        let elapsed = start.elapsed();
        self.iters_done = self.measure_iters;
        self.elapsed_per_iter = elapsed / self.measure_iters.max(1) as u32;
    }

    /// Times `routine` over fresh inputs from `setup`; setup time excluded.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        black_box(routine(setup()));
        let mut total = Duration::ZERO;
        for _ in 0..self.measure_iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.iters_done = self.measure_iters;
        self.elapsed_per_iter = total / self.measure_iters.max(1) as u32;
    }
}

fn report(name: &str, b: &Bencher, throughput: Option<&Throughput>) {
    let per_iter = b.elapsed_per_iter;
    let rate = match throughput {
        Some(Throughput::Elements(n)) if per_iter > Duration::ZERO => {
            format!(" ({:.1} Melem/s)", *n as f64 / per_iter.as_secs_f64() / 1e6)
        }
        Some(Throughput::Bytes(n)) if per_iter > Duration::ZERO => {
            format!(
                " ({:.1} MiB/s)",
                *n as f64 / per_iter.as_secs_f64() / (1 << 20) as f64
            )
        }
        _ => String::new(),
    };
    println!(
        "bench: {name:<50} {per_iter:>12.3?}/iter over {} iters{rate}",
        b.iters_done
    );
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 30 }
    }
}

impl Criterion {
    fn measure_iters(&self) -> u64 {
        self.sample_size.max(10) as u64
    }

    /// Sets the per-benchmark iteration budget (builder style).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.measure_iters());
        f(&mut b);
        report(name, &b, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size: None,
            throughput: None,
        }
    }

    /// Finalize-hook parity with the real crate (no-op here).
    pub fn final_summary(&mut self) {}
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    fn measure_iters(&self) -> u64 {
        self.sample_size.unwrap_or(self._parent.sample_size).max(10) as u64
    }

    /// Overrides the iteration budget for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Declares the work done per iteration for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.measure_iters());
        f(&mut b);
        report(&format!("{}/{id}", self.name), &b, self.throughput.as_ref());
        self
    }

    /// Runs one parameterized benchmark within the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.measure_iters());
        f(&mut b, input);
        report(&format!("{}/{id}", self.name), &b, self.throughput.as_ref());
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        c.bench_function("noop_add", |b| b.iter(|| black_box(1u64) + black_box(2)));
    }

    criterion_group!(shim_benches, quick);

    #[test]
    fn bench_function_runs_routine() {
        shim_benches();
    }

    #[test]
    fn group_api_composes() {
        let mut c = Criterion::default().sample_size(10);
        let mut g = c.benchmark_group("grp");
        g.sample_size(10)
            .throughput(Throughput::Elements(4))
            .bench_function("sum", |b| b.iter(|| (0..4u64).map(black_box).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("param", 3), &3u64, |b, &n| {
            b.iter(|| n * 2);
        });
        g.finish();
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut b = Bencher::new(10);
        b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput);
        assert_eq!(b.iters_done, 10);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
