//! Quickstart: run NPB CG under DUFP at 10 % tolerated slowdown on the
//! simulated YETI node and compare against the default configuration.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dufp::prelude::*;
use dufp::{ratios_vs_default, run_repeated, ControllerKind, ExperimentSpec};

fn main() {
    // The paper's platform: four Xeon Gold 6130 packages (Table I).
    let sim = SimConfig::yeti(42);

    let spec = |controller| ExperimentSpec {
        sim: sim.clone(),
        app: "CG".into(),
        controller,
        trace: None,
        interval_ms: None,
        telemetry: false,
        fault_plan: None,
        engine: Default::default(),
    };

    // Paper protocol: 10 runs, drop best and worst, average the rest.
    println!("running CG: default configuration (10 runs)...");
    let default_run = run_repeated(&spec(ControllerKind::Default), 10, 1).unwrap();
    println!("running CG: DUFP @ 10% tolerated slowdown (10 runs)...");
    let dufp_run = run_repeated(
        &spec(ControllerKind::Dufp {
            slowdown: Ratio::from_percent(10.0),
        }),
        10,
        1,
    )
    .unwrap();

    let r = ratios_vs_default(&default_run, &dufp_run);
    println!();
    println!(
        "default : {:7.2} s, {:7.2} W package, {:7.2} W DRAM",
        default_run.exec_time.mean, default_run.pkg_power.mean, default_run.dram_power.mean
    );
    println!(
        "DUFP@10%: {:7.2} s, {:7.2} W package, {:7.2} W DRAM",
        dufp_run.exec_time.mean, dufp_run.pkg_power.mean, dufp_run.dram_power.mean
    );
    println!();
    println!(
        "execution-time overhead : {:+.2} % (tolerance: 10 %)",
        r.overhead_pct
    );
    println!(
        "package power savings   : {:+.2} %",
        r.pkg_power_savings_pct
    );
    println!(
        "DRAM power savings      : {:+.2} %",
        r.dram_power_savings_pct
    );
    println!("total energy savings    : {:+.2} %", r.energy_savings_pct);
    println!();
    println!(
        "The paper's CG @ 10 %: 13.98 % package power savings with 4.7 % \
         energy savings and the slowdown respected (§V-B, §V-D)."
    );

    assert!(r.overhead_pct < 11.0, "DUFP must respect the tolerance");
    assert!(r.pkg_power_savings_pct > 0.0, "DUFP must save power");
}
