//! Model your own application and see how DUFP treats it.
//!
//! DUFP never reads application code — it only observes FLOPS/s, bandwidth
//! and power. This example builds a custom phase-graph workload (a
//! stencil-like solver: compute sweeps alternating with halo exchanges and
//! a highly-memory checkpoint phase), runs it on one simulated socket and
//! prints how each phase class fared.
//!
//! ```sh
//! cargo run --release --example custom_workload
//! ```

use dufp::prelude::*;
use dufp_control::{ControlConfig, Controller, Dufp, HwActuators};
use dufp_model::perf::PhaseKind;
use dufp_model::RooflineModel;
use dufp_rapl::MsrRapl;
use dufp_workloads::{spec::repeat, Boundness, PhaseSpec, Workload};
use std::sync::Arc;

fn main() {
    let sim = SimConfig::yeti_single_socket(7);
    let arch = sim.arch.clone();
    let ctx = MaterializeCtx::from_arch(&arch);

    // --- 1. Describe the application in behavioural terms. ---
    let body = [
        PhaseSpec {
            name: "stencil_sweep".into(),
            seconds_at_default: 1.2,
            oi: 3.0,
            boundness: Boundness::ComputeBound { mem_frac: 0.45 },
            core_util: 0.85,
            overlap_penalty: 0.1,
        },
        PhaseSpec {
            name: "halo_exchange".into(),
            seconds_at_default: 0.6,
            oi: 0.2,
            boundness: Boundness::MemoryBound { headroom: 1.3 },
            core_util: 0.5,
            overlap_penalty: 0.05,
        },
    ];
    let mut phases = repeat(&body, 12);
    phases.push(PhaseSpec {
        name: "checkpoint".into(),
        seconds_at_default: 3.0,
        oi: 0.01, // highly memory-intensive: DUFP may cap to the 65 W floor
        boundness: Boundness::MemoryBound { headroom: 2.0 },
        core_util: 0.3,
        overlap_penalty: 0.0,
    });
    let workload = Workload::from_specs("stencil-app", &phases, &ctx).unwrap();

    println!(
        "workload: {} phases, ≈{:.1} s at default",
        workload.phases.len(),
        workload.nominal_duration(&ctx).value()
    );
    for p in workload.phases.iter().take(3) {
        let oi = RooflineModel::intensity(&p.rates);
        println!(
            "  {:<15} oi={:<8.3} class={:?}",
            p.name,
            oi.value(),
            PhaseKind::classify(oi)
        );
    }

    // --- 2. Drive the control loop by hand through the public traits. ---
    let machine = Arc::new(Machine::new(sim));
    machine.load_all(&workload);

    let cfg = ControlConfig::from_arch(&arch, Ratio::from_percent(10.0)).unwrap();
    let capper =
        Arc::new(MsrRapl::new(Arc::clone(&machine), 1, arch.cores_per_socket as usize).unwrap());
    let mut actuators =
        HwActuators::new(Arc::clone(&machine), capper, SocketId(0), 0, cfg.clone()).unwrap();
    let mut controller = Dufp::new(cfg.clone());
    let mut sampler = Sampler::new();

    let start = machine.sample(SocketId(0)).unwrap();
    sampler.sample(machine.as_ref(), SocketId(0)).unwrap(); // prime

    let ticks_per_interval = cfg.interval.as_micros() / machine.config().tick.as_micros();
    let mut min_cap_seen = f64::INFINITY;
    let mut min_uncore_seen = f64::INFINITY;
    while !machine.done() {
        for _ in 0..ticks_per_interval {
            machine.tick();
            if machine.done() {
                break;
            }
        }
        if let Some(metrics) = sampler.sample(machine.as_ref(), SocketId(0)).unwrap() {
            controller.on_interval(&metrics, &mut actuators).unwrap();
            min_cap_seen = min_cap_seen.min(dufp_control::Actuators::cap_long(&actuators).value());
            min_uncore_seen =
                min_uncore_seen.min(dufp_control::Actuators::uncore(&actuators).as_ghz());
        }
    }
    let end = machine.sample(SocketId(0)).unwrap();

    let secs = end.at.duration_since(start.at).as_seconds();
    let pkg = (end.pkg_energy - start.pkg_energy) / secs;
    println!("\nDUFP @ 10 % on one socket:");
    println!("  execution time   : {:.2} s", secs.value());
    println!("  avg package power: {:.2} W", pkg.value());
    println!("  deepest cap seen : {min_cap_seen:.0} W (floor is 65 W)");
    println!("  lowest uncore    : {min_uncore_seen:.1} GHz (floor is 1.2 GHz)");

    assert!(
        min_cap_seen < arch.pl1_default.value(),
        "DUFP should have lowered the cap at least once"
    );
}
