//! Watch DUFP's decisions unfold over time on UA — the application whose
//! alternating 1-compute/N-memory iteration structure defeats phase
//! detection under deep caps (the paper's §V-A UA discussion).
//!
//! Prints a 200 ms-interval timeline: operational intensity, phase class,
//! FLOPS/s, the cap and the uncore frequency DUFP chose.
//!
//! ```sh
//! cargo run --release --example phase_timeline -- UA 0
//! ```

use dufp::prelude::*;
use dufp_control::{ControlConfig, Controller, Dufp, HwActuators, PhaseClass};
use dufp_rapl::MsrRapl;
use std::sync::Arc;

fn main() {
    let app = std::env::args().nth(1).unwrap_or_else(|| "UA".to_string());
    let pct: f64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.0);

    let sim = SimConfig::yeti_single_socket(11);
    let arch = sim.arch.clone();
    let ctx = MaterializeCtx::from_arch(&arch);
    let workload = apps::by_name(&app, &ctx).unwrap();

    let machine = Arc::new(Machine::new(sim));
    machine.load_all(&workload);

    let cfg = ControlConfig::from_arch(&arch, Ratio::from_percent(pct)).unwrap();
    let capper =
        Arc::new(MsrRapl::new(Arc::clone(&machine), 1, arch.cores_per_socket as usize).unwrap());
    let mut actuators =
        HwActuators::new(Arc::clone(&machine), capper, SocketId(0), 0, cfg.clone()).unwrap();
    let mut controller = Dufp::new(cfg.clone());
    let mut sampler = Sampler::new();
    sampler.sample(machine.as_ref(), SocketId(0)).unwrap();

    println!("{app} under DUFP @ {pct:.0}% — first 12 seconds of decisions\n");
    println!("   t(s)    oi      class    GFLOP/s    bw(GiB/s)   pkg(W)   cap(W)  uncore(GHz)");

    let ticks_per_interval = cfg.interval.as_micros() / machine.config().tick.as_micros();
    while !machine.done() && machine.now().as_seconds().value() < 12.0 {
        for _ in 0..ticks_per_interval {
            machine.tick();
        }
        if let Some(m) = sampler.sample(machine.as_ref(), SocketId(0)).unwrap() {
            controller.on_interval(&m, &mut actuators).unwrap();
            let class = match PhaseClass::of(m.oi.value()) {
                PhaseClass::Memory => "memory",
                PhaseClass::Cpu => "cpu",
            };
            println!(
                "  {:5.1}  {:7.3}  {:<7}  {:9.1}  {:10.1}  {:7.1}  {:6.0}  {:^10.1}",
                m.at.as_seconds().value(),
                m.oi.value(),
                class,
                m.flops.as_gflops(),
                m.bandwidth.as_gib(),
                m.pkg_power.value(),
                dufp_control::Actuators::cap_long(&actuators).value(),
                dufp_control::Actuators::uncore(&actuators).as_ghz(),
            );
        }
    }

    println!(
        "\nNote the compute spikes (oi jumps above 1): when a deep cap flattens \
         them the 'FLOPS/s doubled' phase trigger misses, the cap is not reset, \
         and UA accumulates overhead beyond the 0 % tolerance (paper §V-A)."
    );
}
