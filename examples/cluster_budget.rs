//! Distribute a cluster power budget over per-node DUFP instances.
//!
//! The paper scopes DUFP to one node and calls budget distribution across
//! nodes "complementary" (§VI, GEOPM/DAPS) — this example composes the two:
//! four single-socket nodes run different applications under one 400 W
//! budget; the demand-based allocator moves watts from the nodes DUFP has
//! already trimmed to the node that can still convert them into speed.
//!
//! ```sh
//! cargo run --release --example cluster_budget
//! ```

use dufp_cluster::{Cluster, ClusterConfig, DemandBased, NodeSpec, StaticSplit};
use dufp_types::{Duration, Ratio, Watts};

fn main() {
    let cfg = ClusterConfig {
        nodes: ["HPL", "CG", "EP", "MG"]
            .iter()
            .map(|a| NodeSpec::single(*a))
            .collect(),
        budget: Watts(400.0),
        slowdown: Ratio::from_percent(10.0),
        epoch: Duration::from_secs(1),
        seed: 11,
    };

    println!(
        "four nodes (HPL, CG, EP, MG), {} W cluster budget, DUFP @ 10 % per node\n",
        cfg.budget.value()
    );

    let static_out = Cluster::new(cfg.clone(), Box::new(StaticSplit))
        .unwrap()
        .run()
        .unwrap();
    let demand_out = Cluster::new(cfg, Box::new(DemandBased::default()))
        .unwrap()
        .run()
        .unwrap();

    for out in [&static_out, &demand_out] {
        println!("policy: {}", out.policy);
        for n in &out.nodes {
            println!(
                "  {:<6} finished in {:6.1} s at {:5.1} W (final ceiling {:3.0} W)",
                n.app,
                n.exec_time.value(),
                n.avg_power.value(),
                n.final_ceiling.value()
            );
        }
        println!(
            "  makespan {:.1} s, peak cluster power {:.1} W\n",
            out.makespan.value(),
            out.peak_cluster_power.value()
        );
    }

    let gain = (1.0 - demand_out.makespan.value() / static_out.makespan.value()) * 100.0;
    println!(
        "demand-based allocation shortened the makespan by {gain:.1} % under the \
         same budget — the watts came from nodes whose DUFP instances had \
         already capped below their share."
    );
    assert!(demand_out.makespan.value() <= static_out.makespan.value());
}
