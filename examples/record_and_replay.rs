//! Characterize an application from its own counter trace, then use the
//! captured model for offline what-if planning.
//!
//! This is the workflow a production deployment would follow:
//!
//! 1. run the application once in the default configuration, recording the
//!    (FLOPS/s, bandwidth, power) time series the measurement layer already
//!    produces,
//! 2. segment the trace into phases and save the description as JSON,
//! 3. sweep DUFP tolerances against the *captured model* — no more machine
//!    time spent on the real code — and pick the §V-H sweet spot.
//!
//! ```sh
//! cargo run --release --example record_and_replay -- FT
//! ```

use dufp::prelude::*;
use dufp::{ratios_vs_default, run_repeated, ControllerKind, ExperimentSpec};
use dufp_workloads::SegmentConfig;

fn main() {
    let app = std::env::args().nth(1).unwrap_or_else(|| "FT".to_string());
    let sim = SimConfig::yeti_single_socket(17);

    // 1+2. Record and segment.
    println!("recording {app} once in the default configuration...");
    let file = dufp::record_workload(&sim, &app, &SegmentConfig::default()).unwrap();
    let dir = std::env::temp_dir();
    let path = dir.join(format!("{app}-captured.json"));
    file.save(&path).unwrap();
    let ctx = MaterializeCtx::from_arch(&sim.arch);
    let rebuilt = file.materialize(&ctx).unwrap();
    println!(
        "captured {} phases (≈{:.1} s) into {}\n",
        file.phases.len(),
        rebuilt.nominal_duration(&ctx).value(),
        path.display()
    );
    for p in file.phases.iter().take(4) {
        println!(
            "  {:<12} {:5.1}s  oi={:<8.3} util={:.2}",
            p.name, p.seconds_at_default, p.oi, p.core_util
        );
    }
    if file.phases.len() > 4 {
        println!("  ... and {} more", file.phases.len() - 4);
    }

    // 3. What-if sweep on the captured model only.
    let spec = |controller| ExperimentSpec {
        sim: sim.clone(),
        app: path.to_str().unwrap().to_string(),
        controller,
        trace: None,
        interval_ms: None,
        telemetry: false,
        fault_plan: None,
        engine: Default::default(),
    };
    let base = run_repeated(&spec(ControllerKind::Default), 4, 1).unwrap();
    println!("\nwhat-if on the captured model:");
    for pct in [5.0, 10.0, 20.0] {
        let r = run_repeated(
            &spec(ControllerKind::Dufp {
                slowdown: Ratio::from_percent(pct),
            }),
            4,
            1,
        )
        .unwrap();
        let ratios = ratios_vs_default(&base, &r);
        println!(
            "  DUFP@{pct:>2.0}%: {:+6.2} % power, {:+6.2} % energy, {:+5.2} % overhead",
            ratios.pkg_power_savings_pct, ratios.energy_savings_pct, ratios.overhead_pct
        );
    }

    std::fs::remove_file(&path).ok();
}
