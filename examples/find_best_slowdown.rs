//! Find the best tolerated-slowdown setting for an application — the
//! operational question the paper's conclusion answers: *"it is possible to
//! find a tolerated slowdown configuration which reaches power savings with
//! no energy loss"* (§V-H).
//!
//! For each tolerance in {0, 5, 10, 20} % this sweeps DUFP, then reports
//! the configuration with the largest package power savings whose total
//! energy did not regress.
//!
//! ```sh
//! cargo run --release --example find_best_slowdown -- CG
//! ```

use dufp::prelude::*;
use dufp::{ratios_vs_default, run_repeated, ControllerKind, ExperimentSpec, Ratios};

fn main() {
    let app = std::env::args().nth(1).unwrap_or_else(|| "CG".to_string());
    let runs = 6;
    let sim = SimConfig::yeti(42);

    let spec = |controller| ExperimentSpec {
        sim: sim.clone(),
        app: app.clone(),
        controller,
        trace: None,
        interval_ms: None,
        telemetry: false,
        fault_plan: None,
        engine: Default::default(),
    };

    println!("sweeping {app} under DUFP, {runs} runs per tolerance...\n");
    let default_run = run_repeated(&spec(ControllerKind::Default), runs, 9).unwrap();

    let mut table: Vec<(f64, Ratios)> = Vec::new();
    for pct in [0.0, 5.0, 10.0, 20.0] {
        let r = run_repeated(
            &spec(ControllerKind::Dufp {
                slowdown: Ratio::from_percent(pct),
            }),
            runs,
            9,
        )
        .unwrap();
        table.push((pct, ratios_vs_default(&default_run, &r)));
    }

    println!("| tolerance | overhead | pkg power savings | energy savings |");
    println!("|-----------|----------|-------------------|----------------|");
    for (pct, r) in &table {
        println!(
            "| {pct:>6.0} %  | {:+6.2} % | {:+9.2} %        | {:+7.2} %      |",
            r.overhead_pct, r.pkg_power_savings_pct, r.energy_savings_pct
        );
    }

    // The paper's rule: best power savings subject to no energy loss.
    let best = table
        .iter()
        .filter(|(_, r)| r.energy_savings_pct >= 0.0)
        .max_by(|a, b| {
            a.1.pkg_power_savings_pct
                .total_cmp(&b.1.pkg_power_savings_pct)
        });

    match best {
        Some((pct, r)) => println!(
            "\nbest setting for {app}: {pct:.0} % tolerated slowdown — \
             {:+.2} % power savings at {:+.2} % energy \
             (paper §V-H: 10 % is the sweet spot for most applications)",
            r.pkg_power_savings_pct, r.energy_savings_pct
        ),
        None => println!("\nno energy-neutral setting found for {app}"),
    }
}
