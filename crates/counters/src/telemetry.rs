//! Raw per-socket hardware counters.

use dufp_types::{Hertz, Instant, Joules, Result, SocketId};
use serde::{Deserialize, Serialize};

/// One reading of a socket's monotonic counters.
///
/// All fields except `at` and `avg_core_freq` are cumulative since an
/// implementation-defined epoch; consumers must difference consecutive
/// snapshots, never interpret absolute values.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// When the snapshot was taken (simulated or wall-clock timeline).
    pub at: Instant,
    /// Double-precision floating-point operations retired.
    pub flops: f64,
    /// Bytes transferred between the socket and DRAM.
    pub bytes: f64,
    /// Package (PKG RAPL domain) energy.
    pub pkg_energy: Joules,
    /// DRAM RAPL domain energy.
    pub dram_energy: Joules,
    /// Average core frequency over the recent past (APERF/MPERF style).
    pub avg_core_freq: Hertz,
}

/// Read access to a platform's performance and energy counters.
///
/// Implementations must be thread-safe: DUFP runs one controller per socket
/// concurrently.
pub trait Telemetry: Send + Sync {
    /// Samples the counters of `socket`.
    fn sample(&self, socket: SocketId) -> Result<CounterSnapshot>;

    /// Sockets this platform exposes.
    fn socket_count(&self) -> usize;
}

impl<T: Telemetry + ?Sized> Telemetry for std::sync::Arc<T> {
    fn sample(&self, socket: SocketId) -> Result<CounterSnapshot> {
        (**self).sample(socket)
    }
    fn socket_count(&self) -> usize {
        (**self).socket_count()
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;
    use dufp_types::Error;
    use std::sync::Mutex;

    /// A scripted telemetry source replaying a fixed snapshot sequence.
    pub struct Scripted {
        pub frames: Mutex<std::vec::IntoIter<CounterSnapshot>>,
    }

    impl Scripted {
        pub fn new(frames: Vec<CounterSnapshot>) -> Self {
            Scripted {
                frames: Mutex::new(frames.into_iter()),
            }
        }
    }

    impl Telemetry for Scripted {
        fn sample(&self, _socket: SocketId) -> Result<CounterSnapshot> {
            self.frames
                .lock()
                .unwrap()
                .next()
                .ok_or_else(|| Error::Precondition("script exhausted".into()))
        }
        fn socket_count(&self) -> usize {
            1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_is_plain_data() {
        let s = CounterSnapshot {
            at: Instant(1),
            flops: 10.0,
            bytes: 20.0,
            pkg_energy: Joules(1.0),
            dram_energy: Joules(0.5),
            avg_core_freq: Hertz::from_ghz(2.8),
        };
        let t = s;
        assert_eq!(s, t);
    }

    #[test]
    fn scripted_source_replays_then_errors() {
        use test_support::Scripted;
        let s = Scripted::new(vec![CounterSnapshot {
            at: Instant(0),
            flops: 0.0,
            bytes: 0.0,
            pkg_energy: Joules(0.0),
            dram_energy: Joules(0.0),
            avg_core_freq: Hertz::ZERO,
        }]);
        assert!(s.sample(SocketId(0)).is_ok());
        assert!(s.sample(SocketId(0)).is_err());
    }
}
