//! Periodic sampling and derived interval metrics.
//!
//! Both DUF and DUFP observe the platform at a fixed monitoring interval
//! (200 ms in the paper, §IV-D: shorter intervals add overhead, longer ones
//! apply bad caps for too long). Each interval is summarized as an
//! [`IntervalMetrics`]: FLOPS/s, memory bandwidth, operational intensity,
//! package and DRAM power, average core frequency.

use crate::telemetry::{CounterSnapshot, Telemetry};
use dufp_types::{
    BytesPerSec, FlopsPerSec, Hertz, Instant, OpIntensity, Result, Seconds, SocketId, Watts,
};
use serde::{Deserialize, Serialize};

/// Derived measurements over one monitoring interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IntervalMetrics {
    /// End of the interval.
    pub at: Instant,
    /// Interval length.
    pub interval: Seconds,
    /// FLOPS/s achieved over the interval — DUFP's primary performance
    /// signal.
    pub flops: FlopsPerSec,
    /// Memory bandwidth over the interval.
    pub bandwidth: BytesPerSec,
    /// Operational intensity (`flops / bandwidth`).
    pub oi: OpIntensity,
    /// Average package power over the interval.
    pub pkg_power: Watts,
    /// Average DRAM power over the interval.
    pub dram_power: Watts,
    /// Average core frequency over the interval.
    pub core_freq: Hertz,
}

/// Operational intensity reported when the interval moved zero bytes but
/// a nonzero FLOP count — finite (instead of `inf`) so downstream ratio
/// arithmetic stays well-defined, and far above any class boundary so the
/// phase detector still classifies the interval as CPU-intensive.
pub const OI_SATURATED: f64 = 1e6;

/// Differencing sampler for one socket.
///
/// Call [`Sampler::sample`] once per monitoring interval; the first call
/// only primes the baseline and yields `None`. Degenerate intervals —
/// non-advancing clocks, non-finite counter values — yield `None` rather
/// than NaN/inf metrics that would poison the phase detector.
#[derive(Debug, Default)]
pub struct Sampler {
    prev: Option<CounterSnapshot>,
}

impl Sampler {
    /// A sampler with no baseline yet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a snapshot and, when a baseline exists, returns the metrics of
    /// the elapsed interval.
    pub fn sample(
        &mut self,
        telemetry: &dyn Telemetry,
        socket: SocketId,
    ) -> Result<Option<IntervalMetrics>> {
        let snap = telemetry.sample(socket)?;
        let metrics = self.prev.take().map(|prev| Self::derive(&prev, &snap));
        self.prev = Some(snap);
        Ok(metrics.flatten())
    }

    /// Drops the baseline, so the next call primes afresh. Used after
    /// experiment restarts.
    pub fn reset(&mut self) {
        self.prev = None;
    }

    /// The current baseline snapshot (for checkpoints).
    pub fn snapshot(&self) -> Option<CounterSnapshot> {
        self.prev
    }

    /// Restores a checkpointed baseline, so the first post-resume interval
    /// is differenced against the same snapshot the crashed run held.
    pub fn restore(&mut self, prev: Option<CounterSnapshot>) {
        self.prev = prev;
    }

    fn derive(prev: &CounterSnapshot, cur: &CounterSnapshot) -> Option<IntervalMetrics> {
        let dt = cur.at.duration_since(prev.at).as_seconds();
        if !dt.value().is_finite() || dt.value() <= 0.0 {
            return None;
        }
        // A stale or corrupted snapshot (NaN/inf counter, non-finite
        // frequency) cannot be differenced meaningfully; drop the interval.
        let finite = [prev.flops, prev.bytes, cur.flops, cur.bytes]
            .iter()
            .all(|v| v.is_finite())
            && prev.pkg_energy.value().is_finite()
            && cur.pkg_energy.value().is_finite()
            && prev.dram_energy.value().is_finite()
            && cur.dram_energy.value().is_finite()
            && cur.avg_core_freq.value().is_finite();
        if !finite {
            return None;
        }
        let d_flops = (cur.flops - prev.flops).max(0.0);
        let d_bytes = (cur.bytes - prev.bytes).max(0.0);
        let flops = FlopsPerSec(d_flops / dt.value());
        let bandwidth = BytesPerSec(d_bytes / dt.value());
        let oi = if bandwidth.value() > 0.0 {
            flops / bandwidth
        } else if flops.value() > 0.0 {
            OpIntensity(OI_SATURATED)
        } else {
            OpIntensity(0.0)
        };
        // Energy counters only move forward; a negative delta (wrap missed
        // by a lower layer, counter reset) clamps to zero power.
        let pkg_power = Watts(((cur.pkg_energy - prev.pkg_energy) / dt).value().max(0.0));
        let dram_power = Watts(((cur.dram_energy - prev.dram_energy) / dt).value().max(0.0));
        Some(IntervalMetrics {
            at: cur.at,
            interval: dt,
            flops,
            bandwidth,
            oi,
            pkg_power,
            dram_power,
            core_freq: cur.avg_core_freq,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::test_support::Scripted;
    use dufp_types::Joules;

    fn snap(at_ms: u64, flops: f64, bytes: f64, pkg_j: f64, dram_j: f64) -> CounterSnapshot {
        CounterSnapshot {
            at: Instant(at_ms * 1000),
            flops,
            bytes,
            pkg_energy: Joules(pkg_j),
            dram_energy: Joules(dram_j),
            avg_core_freq: Hertz::from_ghz(2.8),
        }
    }

    #[test]
    fn first_sample_primes_only() {
        let t = Scripted::new(vec![snap(0, 0.0, 0.0, 0.0, 0.0)]);
        let mut s = Sampler::new();
        assert!(s.sample(&t, SocketId(0)).unwrap().is_none());
    }

    #[test]
    fn derives_rates_over_200ms() {
        let t = Scripted::new(vec![
            snap(0, 0.0, 0.0, 0.0, 0.0),
            snap(200, 2e9, 4e9, 25.0, 6.0),
        ]);
        let mut s = Sampler::new();
        s.sample(&t, SocketId(0)).unwrap();
        let m = s.sample(&t, SocketId(0)).unwrap().unwrap();
        assert!((m.interval.value() - 0.2).abs() < 1e-9);
        assert!((m.flops.value() - 1e10).abs() < 1.0);
        assert!((m.bandwidth.value() - 2e10).abs() < 1.0);
        assert!((m.oi.value() - 0.5).abs() < 1e-9);
        assert!((m.pkg_power.value() - 125.0).abs() < 1e-9);
        assert!((m.dram_power.value() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn zero_bandwidth_gives_saturated_finite_oi() {
        let t = Scripted::new(vec![
            snap(0, 0.0, 0.0, 0.0, 0.0),
            snap(200, 1e9, 0.0, 10.0, 1.0),
        ]);
        let mut s = Sampler::new();
        s.sample(&t, SocketId(0)).unwrap();
        let m = s.sample(&t, SocketId(0)).unwrap().unwrap();
        assert!(m.oi.value().is_finite(), "no inf OI: {:?}", m.oi);
        assert_eq!(m.oi.value(), OI_SATURATED);
        assert!(m.oi.value() >= 1.0, "still classifies as CPU-intensive");
    }

    #[test]
    fn fully_idle_interval_has_zero_oi() {
        let t = Scripted::new(vec![
            snap(0, 1e9, 1e9, 0.0, 0.0),
            snap(200, 1e9, 1e9, 1.0, 0.1),
        ]);
        let mut s = Sampler::new();
        s.sample(&t, SocketId(0)).unwrap();
        let m = s.sample(&t, SocketId(0)).unwrap().unwrap();
        assert_eq!(m.oi.value(), 0.0);
    }

    #[test]
    fn non_finite_counters_yield_none() {
        for bad in [
            snap(200, f64::NAN, 1e9, 10.0, 1.0),
            snap(200, 1e9, f64::INFINITY, 10.0, 1.0),
            snap(200, 1e9, 1e9, f64::NAN, 1.0),
        ] {
            let t = Scripted::new(vec![snap(0, 0.0, 0.0, 0.0, 0.0), bad]);
            let mut s = Sampler::new();
            s.sample(&t, SocketId(0)).unwrap();
            assert!(
                s.sample(&t, SocketId(0)).unwrap().is_none(),
                "corrupted snapshot must not derive metrics"
            );
        }
    }

    #[test]
    fn negative_energy_delta_clamps_power_to_zero() {
        let t = Scripted::new(vec![
            snap(0, 0.0, 0.0, 100.0, 10.0),
            snap(200, 1e9, 1e9, 50.0, 5.0),
        ]);
        let mut s = Sampler::new();
        s.sample(&t, SocketId(0)).unwrap();
        let m = s.sample(&t, SocketId(0)).unwrap().unwrap();
        assert_eq!(m.pkg_power.value(), 0.0);
        assert_eq!(m.dram_power.value(), 0.0);
    }

    #[test]
    fn non_advancing_clock_yields_none() {
        let t = Scripted::new(vec![
            snap(100, 1.0, 1.0, 1.0, 1.0),
            snap(100, 2.0, 2.0, 2.0, 2.0),
        ]);
        let mut s = Sampler::new();
        s.sample(&t, SocketId(0)).unwrap();
        assert!(s.sample(&t, SocketId(0)).unwrap().is_none());
    }

    #[test]
    fn counter_regression_clamps_to_zero() {
        // A wrapped / reset raw counter must not produce negative rates.
        let t = Scripted::new(vec![
            snap(0, 5e9, 5e9, 10.0, 1.0),
            snap(200, 1e9, 1e9, 11.0, 1.1),
        ]);
        let mut s = Sampler::new();
        s.sample(&t, SocketId(0)).unwrap();
        let m = s.sample(&t, SocketId(0)).unwrap().unwrap();
        assert_eq!(m.flops.value(), 0.0);
        assert_eq!(m.bandwidth.value(), 0.0);
    }

    #[test]
    fn reset_forces_reprime() {
        let t = Scripted::new(vec![
            snap(0, 0.0, 0.0, 0.0, 0.0),
            snap(200, 1.0, 1.0, 1.0, 1.0),
            snap(400, 2.0, 2.0, 2.0, 2.0),
        ]);
        let mut s = Sampler::new();
        s.sample(&t, SocketId(0)).unwrap();
        s.reset();
        assert!(s.sample(&t, SocketId(0)).unwrap().is_none());
        assert!(s.sample(&t, SocketId(0)).unwrap().is_some());
    }
}
