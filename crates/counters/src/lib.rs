//! PAPI-like measurement framework.
//!
//! The paper's tool "relies on PAPI for power, FLOPS/s and bandwidth
//! measurements" (§IV-C). This crate reproduces that measurement layer:
//!
//! * [`telemetry`] — the [`telemetry::Telemetry`] trait: monotonic raw
//!   counters (FLOPs retired, bytes moved, package/DRAM energy) per socket.
//!   The simulator implements it; a real-hardware implementation would wrap
//!   PAPI or perf events.
//! * [`events`] — PAPI-style named events and event sets, for tools that
//!   want the classic `PAPI_DP_OPS` interface.
//! * [`sampler`] — the periodic sampler: converts consecutive raw
//!   snapshots into the *interval metrics* (FLOPS/s, bandwidth,
//!   operational intensity, power) that drive every DUF/DUFP decision.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod events;
pub mod sampler;
pub mod telemetry;

pub use events::{Event, EventSet};
pub use sampler::{IntervalMetrics, Sampler, OI_SATURATED};
pub use telemetry::{CounterSnapshot, Telemetry};
