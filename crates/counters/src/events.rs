//! PAPI-style named events and event sets.
//!
//! DUF/DUFP historically program a PAPI event set containing the
//! double-precision FLOP counter, an uncore traffic proxy and the two RAPL
//! energy components. This module offers the same ergonomics on top of
//! [`crate::telemetry::Telemetry`]: select events by name, read them as a
//! value vector.

use crate::telemetry::{CounterSnapshot, Telemetry};
use dufp_types::{Error, Result, SocketId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The counters the measurement layer can expose.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Event {
    /// Double-precision floating point operations (`PAPI_DP_OPS`).
    DpOps,
    /// Bytes moved between socket and DRAM (uncore IMC counters).
    DramBytes,
    /// Package energy in nanojoules (`rapl:::PACKAGE_ENERGY:PACKAGE<n>`).
    PackageEnergyNj,
    /// DRAM energy in nanojoules (`rapl:::DRAM_ENERGY:PACKAGE<n>`).
    DramEnergyNj,
    /// Average core frequency in kHz (APERF/MPERF derived).
    CoreFreqKhz,
}

impl Event {
    /// The PAPI-style name of this event.
    pub fn name(self) -> &'static str {
        match self {
            Event::DpOps => "PAPI_DP_OPS",
            Event::DramBytes => "uncore_imc::CAS_COUNT_BYTES",
            Event::PackageEnergyNj => "rapl:::PACKAGE_ENERGY",
            Event::DramEnergyNj => "rapl:::DRAM_ENERGY",
            Event::CoreFreqKhz => "aperf_mperf::AVG_CORE_FREQ_KHZ",
        }
    }

    /// Parses a PAPI-style name.
    pub fn from_name(name: &str) -> Result<Self> {
        match name {
            "PAPI_DP_OPS" => Ok(Event::DpOps),
            "uncore_imc::CAS_COUNT_BYTES" => Ok(Event::DramBytes),
            "rapl:::PACKAGE_ENERGY" => Ok(Event::PackageEnergyNj),
            "rapl:::DRAM_ENERGY" => Ok(Event::DramEnergyNj),
            "aperf_mperf::AVG_CORE_FREQ_KHZ" => Ok(Event::CoreFreqKhz),
            other => Err(Error::invalid("event name", other.to_owned())),
        }
    }

    /// Extracts this event's value from a snapshot.
    pub fn extract(self, s: &CounterSnapshot) -> f64 {
        match self {
            Event::DpOps => s.flops,
            Event::DramBytes => s.bytes,
            Event::PackageEnergyNj => s.pkg_energy.value() * 1e9,
            Event::DramEnergyNj => s.dram_energy.value() * 1e9,
            Event::CoreFreqKhz => s.avg_core_freq.value() / 1e3,
        }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// An ordered selection of events read together, PAPI-eventset style.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EventSet {
    events: Vec<Event>,
}

impl EventSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// The full set DUF/DUFP program: FLOPs, bytes, both energies, core
    /// frequency.
    pub fn dufp_default() -> Self {
        EventSet {
            events: vec![
                Event::DpOps,
                Event::DramBytes,
                Event::PackageEnergyNj,
                Event::DramEnergyNj,
                Event::CoreFreqKhz,
            ],
        }
    }

    /// Adds an event; duplicates are rejected like PAPI does.
    pub fn add(&mut self, event: Event) -> Result<()> {
        if self.events.contains(&event) {
            return Err(Error::invalid("event", format!("{event} already in set")));
        }
        self.events.push(event);
        Ok(())
    }

    /// The events in read order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of events in the set.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events are selected.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Reads all selected events from `telemetry` for `socket`, in order.
    pub fn read(&self, telemetry: &dyn Telemetry, socket: SocketId) -> Result<Vec<f64>> {
        let snap = telemetry.sample(socket)?;
        Ok(self.events.iter().map(|e| e.extract(&snap)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dufp_types::{Hertz, Instant, Joules};

    fn snap() -> CounterSnapshot {
        CounterSnapshot {
            at: Instant(0),
            flops: 1e9,
            bytes: 2e9,
            pkg_energy: Joules(3.0),
            dram_energy: Joules(0.5),
            avg_core_freq: Hertz::from_ghz(2.5),
        }
    }

    #[test]
    fn names_round_trip() {
        for e in [
            Event::DpOps,
            Event::DramBytes,
            Event::PackageEnergyNj,
            Event::DramEnergyNj,
            Event::CoreFreqKhz,
        ] {
            assert_eq!(Event::from_name(e.name()).unwrap(), e);
        }
        assert!(Event::from_name("PAPI_NOPE").is_err());
    }

    #[test]
    fn extract_scales_correctly() {
        let s = snap();
        assert_eq!(Event::DpOps.extract(&s), 1e9);
        assert_eq!(Event::PackageEnergyNj.extract(&s), 3e9);
        assert_eq!(Event::CoreFreqKhz.extract(&s), 2.5e6);
    }

    #[test]
    fn duplicate_events_rejected() {
        let mut set = EventSet::new();
        set.add(Event::DpOps).unwrap();
        assert!(set.add(Event::DpOps).is_err());
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn default_set_reads_in_order() {
        use crate::telemetry::test_support::Scripted;
        let t = Scripted::new(vec![snap()]);
        let set = EventSet::dufp_default();
        let vals = set.read(&t, SocketId(0)).unwrap();
        assert_eq!(vals.len(), 5);
        assert_eq!(vals[0], 1e9);
        assert_eq!(vals[1], 2e9);
    }
}
