//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB8_8320`), table-driven.
//!
//! Hand-rolled because the build environment vendors its dependencies; the
//! algorithm matches zlib's `crc32()` so journal files remain checkable
//! with standard tools.

/// Lazily built 256-entry lookup table for the reflected polynomial.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        t
    })
}

/// CRC-32 of `data` (initial value `0xFFFF_FFFF`, final xor-out).
pub fn crc32(data: &[u8]) -> u32 {
    let t = table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = t[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789" under CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let a = crc32(b"journal record");
        let mut flipped = b"journal record".to_vec();
        flipped[3] ^= 0x01;
        assert_ne!(a, crc32(&flipped));
    }
}
