//! Atomic checkpoints: full durable snapshots written beside the journal.
//!
//! A checkpoint is the caller's serialized state at sequence number `seq`
//! (for the runner: the control-interval index whose journal record is
//! already durable). Writes are atomic — payload goes to a temp file,
//! `fdatasync`, then `rename(2)` — so a crash mid-checkpoint leaves the
//! previous checkpoint intact. The last two checkpoints are retained so
//! recovery can fall back when the newest one outruns a torn journal.

use dufp_types::{Error, Result};
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// Checkpoints retained after a successful write.
pub const KEEP_CHECKPOINTS: usize = 2;

fn checkpoint_name(seq: u64) -> String {
    format!("checkpoint-{seq:08}.json")
}

/// Lists `(seq, path)` for every checkpoint in `dir`, ascending by seq.
pub fn list_checkpoints(dir: &Path) -> Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(rest) = name
            .strip_prefix("checkpoint-")
            .and_then(|r| r.strip_suffix(".json"))
        {
            if let Ok(seq) = rest.parse::<u64>() {
                out.push((seq, entry.path()));
            }
        }
    }
    out.sort_by_key(|(s, _)| *s);
    Ok(out)
}

/// Atomically writes `payload` to an arbitrary file name in `dir` (temp
/// file + fdatasync + rename). Used for checkpoints and the run metadata.
pub fn write_file_atomic(dir: &Path, name: &str, payload: &[u8]) -> Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let tmp = dir.join(format!("{name}.tmp"));
    let target = dir.join(name);
    {
        let mut f = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&tmp)?;
        f.write_all(payload)?;
        f.sync_data()?;
    }
    fs::rename(&tmp, &target)?;
    // Make the rename itself durable where the platform allows it.
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(target)
}

/// Atomically writes checkpoint `seq` and prunes older checkpoints down to
/// [`KEEP_CHECKPOINTS`]. Returns the checkpoint path.
pub fn write_checkpoint(dir: &Path, seq: u64, payload: &[u8]) -> Result<PathBuf> {
    let target = write_file_atomic(dir, &checkpoint_name(seq), payload)?;
    let all = list_checkpoints(dir)?;
    if all.len() > KEEP_CHECKPOINTS {
        for (_, path) in &all[..all.len() - KEEP_CHECKPOINTS] {
            let _ = fs::remove_file(path);
        }
    }
    Ok(target)
}

/// Reads a checkpoint's raw payload.
pub fn load_checkpoint(path: &Path) -> Result<Vec<u8>> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    Ok(bytes)
}

/// Picks the newest loadable checkpoint with `seq <= head` (i.e. every
/// record the checkpoint folds is itself durable; writers sync the log
/// before sealing a checkpoint, so `seq == head` — a crash exactly at a
/// checkpoint boundary, with an empty replay tail — is fully
/// corroborated).
///
/// * No checkpoints at all → `Ok(None)`: the caller replays from scratch.
/// * Checkpoints exist but every one is newer than the journal head →
///   typed [`Error::Corruption`]: the durable state is self-inconsistent
///   (a checkpoint claims records the disk does not have).
/// * An unreadable newest checkpoint falls back to the older one.
pub fn latest_checkpoint_before(dir: &Path, head: u64) -> Result<Option<(u64, Vec<u8>)>> {
    let all = list_checkpoints(dir)?;
    if all.is_empty() {
        return Ok(None);
    }
    for (seq, path) in all.iter().rev() {
        if *seq > head {
            continue;
        }
        if let Ok(payload) = load_checkpoint(path) {
            return Ok(Some((*seq, payload)));
        }
    }
    Err(Error::Corruption(format!(
        "all {} checkpoint(s) in {} are beyond the journal head {head} \
         (or unreadable); newest is {}",
        all.len(),
        dir.display(),
        all.last().map(|(s, _)| *s).unwrap_or(0),
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testdir::TestDir;

    #[test]
    fn write_load_roundtrip() {
        let t = TestDir::new("ckpt-roundtrip");
        let p = write_checkpoint(t.path(), 7, b"{\"interval\":7}").unwrap();
        assert_eq!(load_checkpoint(&p).unwrap(), b"{\"interval\":7}");
        assert!(p
            .file_name()
            .unwrap()
            .to_string_lossy()
            .contains("00000007"));
    }

    #[test]
    fn retains_only_the_last_two() {
        let t = TestDir::new("ckpt-prune");
        for seq in [3u64, 6, 9, 12] {
            write_checkpoint(t.path(), seq, format!("s{seq}").as_bytes()).unwrap();
        }
        let all = list_checkpoints(t.path()).unwrap();
        assert_eq!(all.iter().map(|(s, _)| *s).collect::<Vec<_>>(), vec![9, 12]);
    }

    #[test]
    fn no_checkpoints_means_replay_from_scratch() {
        let t = TestDir::new("ckpt-none");
        assert_eq!(latest_checkpoint_before(t.path(), 100).unwrap(), None);
    }

    #[test]
    fn newer_than_head_falls_back_to_older() {
        let t = TestDir::new("ckpt-fallback");
        write_checkpoint(t.path(), 10, b"old").unwrap();
        write_checkpoint(t.path(), 50, b"new").unwrap();
        // Journal head is 20 records: checkpoint 50 is unusable, 10 works.
        let (seq, payload) = latest_checkpoint_before(t.path(), 20).unwrap().unwrap();
        assert_eq!(seq, 10);
        assert_eq!(payload, b"old");
    }

    #[test]
    fn all_checkpoints_newer_than_head_is_corruption() {
        let t = TestDir::new("ckpt-corrupt");
        write_checkpoint(t.path(), 40, b"a").unwrap();
        write_checkpoint(t.path(), 50, b"b").unwrap();
        let err = latest_checkpoint_before(t.path(), 20).unwrap_err();
        assert!(matches!(err, Error::Corruption(_)), "got {err}");
        assert!(err.to_string().contains("journal head 20"));
    }

    #[test]
    fn checkpoint_at_head_is_usable_with_an_empty_tail() {
        // seq == head is a crash exactly at a checkpoint boundary: the log
        // was synced before the checkpoint was sealed, so every folded
        // record is durable and the replay tail is simply empty. Only
        // seq > head — a checkpoint claiming records the disk lacks — is
        // corruption.
        let t = TestDir::new("ckpt-at-head");
        write_checkpoint(t.path(), 5, b"x").unwrap();
        let (seq, payload) = latest_checkpoint_before(t.path(), 5).unwrap().unwrap();
        assert_eq!((seq, payload.as_slice()), (5, b"x".as_slice()));
        assert!(latest_checkpoint_before(t.path(), 6).unwrap().is_some());
        let err = latest_checkpoint_before(t.path(), 4).unwrap_err();
        assert!(matches!(err, Error::Corruption(_)));
    }

    #[test]
    fn atomic_write_leaves_no_tmp_behind() {
        let t = TestDir::new("ckpt-tmp");
        write_file_atomic(t.path(), "meta.json", b"{}").unwrap();
        let names: Vec<_> = fs::read_dir(t.path())
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["meta.json"]);
    }
}
