//! Crash-safe durability for long experiments.
//!
//! The paper's DUFP campaigns run for hours on shared hardware; PR 2 made
//! a run survive actuator faults, but a process crash (OOM-kill, node
//! reboot, scheduler preemption) still discarded everything. This crate
//! provides the two durable artifacts the runner needs to resume:
//!
//! * [`JournalWriter`] / [`read_records`] — an append-only write-ahead
//!   journal of opaque byte records, CRC-32-framed, rotated over segment
//!   files, with a configurable [`FsyncPolicy`]. The reader tolerates the
//!   one corruption a crash can produce — a torn tail — by truncating at
//!   the first bad record instead of failing the file.
//! * [`write_checkpoint`] / [`latest_checkpoint_before`] — atomic
//!   full-state snapshots (temp file + fsync + rename), pruned to the
//!   last [`KEEP_CHECKPOINTS`], with recovery that falls back to an older
//!   checkpoint when the newest one outruns the surviving journal and
//!   reports a typed [`dufp_types::Error::Corruption`] when none lines up.
//!
//! Everything here is byte-generic: the typed record/checkpoint schemas
//! (what the runner actually journals) live in the `dufp` core crate, and
//! the crash-equivalence semantics — kill-at-tick-N + resume must be
//! bit-identical to an uninterrupted run — are verified there. DESIGN.md
//! §11 documents the format and the recovery rules.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checkpoint;
mod crc;
mod journal;
mod testdir;

pub use checkpoint::{
    latest_checkpoint_before, list_checkpoints, load_checkpoint, write_checkpoint,
    write_file_atomic, KEEP_CHECKPOINTS,
};
pub use crc::crc32;
pub use journal::{
    read_records, segment_paths, truncate_records, FsyncPolicy, JournalWriter, ReadOutcome,
    DEFAULT_SEGMENT_BYTES, SEGMENT_MAGIC,
};
pub use testdir::TestDir;
