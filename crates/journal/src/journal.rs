//! The append-only, CRC-framed, segment-rotated write-ahead journal.
//!
//! On-disk layout inside a journal directory:
//!
//! ```text
//! segment-00000000.log      [magic "DUFPJNL1"] [record]*
//! segment-00000001.log      ...
//! ```
//!
//! Each record is framed as `[len: u32 LE][crc32: u32 LE][payload]` where
//! the CRC covers the payload bytes only. The reader is
//! corruption-tolerant: the first torn or corrupt record truncates the
//! logical journal at that point — everything before it is returned,
//! everything after (including later segments) is discarded. That is the
//! right semantics for a write-ahead log: a crash can only tear the tail.

use crate::crc::crc32;
use dufp_types::{Error, Result};
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// Magic bytes opening every segment file.
pub const SEGMENT_MAGIC: &[u8; 8] = b"DUFPJNL1";

/// Bytes of framing per record in addition to the payload.
const FRAME_BYTES: u64 = 8;

/// Default rotation threshold (1 MiB) — small enough that a multi-hour
/// campaign spreads over many segments and a torn tail loses one segment
/// of locality at most.
pub const DEFAULT_SEGMENT_BYTES: u64 = 1 << 20;

/// When appended records are flushed to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fdatasync` after every record — maximum durability, one syscall
    /// per control interval.
    Always,
    /// `fdatasync` every N records (and on rotation / explicit sync).
    EveryN(u32),
    /// Never fsync implicitly; the OS flushes when it pleases. Crash
    /// durability is best-effort but checkpoints still sync explicitly.
    Never,
}

fn segment_name(index: u64) -> String {
    format!("segment-{index:08}.log")
}

/// Lists `(index, path)` for every segment file in `dir`, ascending.
pub fn segment_paths(dir: &Path) -> Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(rest) = name
            .strip_prefix("segment-")
            .and_then(|r| r.strip_suffix(".log"))
        {
            if let Ok(index) = rest.parse::<u64>() {
                out.push((index, entry.path()));
            }
        }
    }
    out.sort_by_key(|(i, _)| *i);
    Ok(out)
}

/// Appends CRC-framed records to rotating segment files.
pub struct JournalWriter {
    dir: PathBuf,
    file: File,
    seg_index: u64,
    seg_bytes: u64,
    max_segment_bytes: u64,
    policy: FsyncPolicy,
    unsynced: u32,
    records: u64,
}

impl JournalWriter {
    /// Creates a fresh journal in `dir` (created if missing). Fails with a
    /// precondition error if segments already exist — resuming callers
    /// must go through [`JournalWriter::open`] so an existing tail is
    /// never silently clobbered.
    pub fn create(dir: &Path, policy: FsyncPolicy) -> Result<Self> {
        fs::create_dir_all(dir)?;
        if !segment_paths(dir)?.is_empty() {
            return Err(Error::Precondition(format!(
                "journal directory {} already contains segments; \
                 use resume or a fresh directory",
                dir.display()
            )));
        }
        let file = Self::start_segment(dir, 0)?;
        Ok(JournalWriter {
            dir: dir.to_path_buf(),
            file,
            seg_index: 0,
            seg_bytes: SEGMENT_MAGIC.len() as u64,
            max_segment_bytes: DEFAULT_SEGMENT_BYTES,
            policy,
            unsynced: 0,
            records: 0,
        })
    }

    /// Opens an existing journal for appending. The caller must have
    /// already recovered/truncated the tail (see [`truncate_records`]):
    /// this appends to the highest segment as-is. `existing_records` seeds
    /// the record counter for [`JournalWriter::records_written`].
    pub fn open(dir: &Path, policy: FsyncPolicy, existing_records: u64) -> Result<Self> {
        let segs = segment_paths(dir)?;
        let (seg_index, seg_bytes, file) = match segs.last() {
            None => (0, SEGMENT_MAGIC.len() as u64, Self::start_segment(dir, 0)?),
            Some((index, path)) => {
                let len = fs::metadata(path)?.len();
                let file = OpenOptions::new().append(true).open(path)?;
                (*index, len, file)
            }
        };
        Ok(JournalWriter {
            dir: dir.to_path_buf(),
            file,
            seg_index,
            seg_bytes,
            max_segment_bytes: DEFAULT_SEGMENT_BYTES,
            policy,
            unsynced: 0,
            records: existing_records,
        })
    }

    /// Overrides the rotation threshold (bytes per segment).
    pub fn with_max_segment_bytes(mut self, bytes: u64) -> Self {
        self.max_segment_bytes = bytes.max(SEGMENT_MAGIC.len() as u64 + FRAME_BYTES);
        self
    }

    fn start_segment(dir: &Path, index: u64) -> Result<File> {
        let mut file = OpenOptions::new()
            .create_new(true)
            .append(true)
            .open(dir.join(segment_name(index)))?;
        file.write_all(SEGMENT_MAGIC)?;
        Ok(file)
    }

    /// Records appended so far (including any `existing_records` seed).
    pub fn records_written(&self) -> u64 {
        self.records
    }

    /// Appends one record, rotating and fsyncing per policy.
    pub fn append(&mut self, payload: &[u8]) -> Result<()> {
        let record_len = FRAME_BYTES + payload.len() as u64;
        if self.seg_bytes > SEGMENT_MAGIC.len() as u64
            && self.seg_bytes + record_len > self.max_segment_bytes
        {
            self.sync()?;
            self.seg_index += 1;
            self.file = Self::start_segment(&self.dir, self.seg_index)?;
            self.seg_bytes = SEGMENT_MAGIC.len() as u64;
        }
        let len = u32::try_from(payload.len())
            .map_err(|_| Error::invalid("journal record", "payload exceeds u32::MAX bytes"))?;
        self.file.write_all(&len.to_le_bytes())?;
        self.file.write_all(&crc32(payload).to_le_bytes())?;
        self.file.write_all(payload)?;
        self.seg_bytes += record_len;
        self.records += 1;
        self.unsynced += 1;
        let flush = match self.policy {
            FsyncPolicy::Always => true,
            FsyncPolicy::EveryN(n) => self.unsynced >= n.max(1),
            FsyncPolicy::Never => false,
        };
        if flush {
            self.sync()?;
        }
        Ok(())
    }

    /// Flushes and `fdatasync`s the current segment.
    pub fn sync(&mut self) -> Result<()> {
        self.file.flush()?;
        self.file.sync_data()?;
        self.unsynced = 0;
        Ok(())
    }
}

/// Result of a corruption-tolerant journal read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadOutcome {
    /// Every intact record, in append order.
    pub records: Vec<Vec<u8>>,
    /// True when a torn/corrupt record (or segment) cut the read short —
    /// everything at and after the bad point was discarded.
    pub truncated: bool,
}

/// Reads every intact record from the journal in `dir`.
///
/// Stops (setting `truncated`) at the first torn frame, CRC mismatch, bad
/// segment magic, or gap in the segment numbering; I/O failures on the
/// directory itself still surface as typed errors.
pub fn read_records(dir: &Path) -> Result<ReadOutcome> {
    let mut records = Vec::new();
    let mut expected_index = None;
    for (index, path) in segment_paths(dir)? {
        if let Some(expected) = expected_index {
            if index != expected {
                return Ok(ReadOutcome {
                    records,
                    truncated: true,
                });
            }
        }
        expected_index = Some(index + 1);
        let mut bytes = Vec::new();
        File::open(&path)?.read_to_end(&mut bytes)?;
        if bytes.len() < SEGMENT_MAGIC.len() || &bytes[..SEGMENT_MAGIC.len()] != SEGMENT_MAGIC {
            return Ok(ReadOutcome {
                records,
                truncated: true,
            });
        }
        let mut at = SEGMENT_MAGIC.len();
        while at < bytes.len() {
            if bytes.len() - at < FRAME_BYTES as usize {
                return Ok(ReadOutcome {
                    records,
                    truncated: true,
                });
            }
            let mut word = [0u8; 4];
            word.copy_from_slice(&bytes[at..at + 4]);
            let len = u32::from_le_bytes(word) as usize;
            word.copy_from_slice(&bytes[at + 4..at + 8]);
            let crc = u32::from_le_bytes(word);
            at += FRAME_BYTES as usize;
            if bytes.len() - at < len {
                return Ok(ReadOutcome {
                    records,
                    truncated: true,
                });
            }
            let payload = &bytes[at..at + len];
            if crc32(payload) != crc {
                return Ok(ReadOutcome {
                    records,
                    truncated: true,
                });
            }
            records.push(payload.to_vec());
            at += len;
        }
    }
    Ok(ReadOutcome {
        records,
        truncated: false,
    })
}

/// Rewrites the journal so that exactly the first `keep` intact records
/// remain, discarding any corrupt tail along the way. Returns the number
/// of records actually kept (less than `keep` if the journal was shorter).
///
/// Used on resume: everything after the checkpointed interval is dropped
/// and regenerated live, which keeps crashed-and-resumed journals
/// bit-identical to uninterrupted ones.
pub fn truncate_records(dir: &Path, keep: u64) -> Result<u64> {
    let mut outcome = read_records(dir)?;
    outcome.records.truncate(keep as usize);
    for (_, path) in segment_paths(dir)? {
        fs::remove_file(path)?;
    }
    let mut w = JournalWriter::create(dir, FsyncPolicy::Never)?;
    for record in &outcome.records {
        w.append(record)?;
    }
    w.sync()?;
    Ok(outcome.records.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testdir::TestDir;

    fn payloads(n: usize) -> Vec<Vec<u8>> {
        (0..n)
            .map(|i| format!("record-{i}-{}", "x".repeat(i % 7)).into_bytes())
            .collect()
    }

    #[test]
    fn roundtrip_preserves_records_and_order() {
        let t = TestDir::new("journal-roundtrip");
        let mut w = JournalWriter::create(t.path(), FsyncPolicy::EveryN(4)).unwrap();
        let data = payloads(25);
        for p in &data {
            w.append(p).unwrap();
        }
        w.sync().unwrap();
        let out = read_records(t.path()).unwrap();
        assert!(!out.truncated);
        assert_eq!(out.records, data);
    }

    #[test]
    fn rotation_spreads_records_over_segments() {
        let t = TestDir::new("journal-rotation");
        let mut w = JournalWriter::create(t.path(), FsyncPolicy::Never)
            .unwrap()
            .with_max_segment_bytes(64);
        let data = payloads(40);
        for p in &data {
            w.append(p).unwrap();
        }
        w.sync().unwrap();
        assert!(
            segment_paths(t.path()).unwrap().len() > 1,
            "64-byte segments must rotate"
        );
        let out = read_records(t.path()).unwrap();
        assert!(!out.truncated);
        assert_eq!(out.records, data);
    }

    #[test]
    fn create_refuses_nonempty_directory() {
        let t = TestDir::new("journal-refuse");
        let mut w = JournalWriter::create(t.path(), FsyncPolicy::Never).unwrap();
        w.append(b"a").unwrap();
        w.sync().unwrap();
        drop(w);
        assert!(matches!(
            JournalWriter::create(t.path(), FsyncPolicy::Never),
            Err(Error::Precondition(_))
        ));
    }

    #[test]
    fn truncated_tail_recovers_prefix() {
        let t = TestDir::new("journal-torn");
        let mut w = JournalWriter::create(t.path(), FsyncPolicy::Always).unwrap();
        let data = payloads(10);
        for p in &data {
            w.append(p).unwrap();
        }
        drop(w);
        // Tear the last record: chop 3 bytes off the segment.
        let (_, path) = segment_paths(t.path()).unwrap().pop().unwrap();
        let len = fs::metadata(&path).unwrap().len();
        OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(len - 3)
            .unwrap();
        let out = read_records(t.path()).unwrap();
        assert!(out.truncated);
        assert_eq!(out.records, data[..9].to_vec());
    }

    #[test]
    fn flipped_crc_byte_truncates_at_the_bad_record() {
        let t = TestDir::new("journal-crcflip");
        let mut w = JournalWriter::create(t.path(), FsyncPolicy::Always).unwrap();
        let data = payloads(6);
        for p in &data {
            w.append(p).unwrap();
        }
        drop(w);
        let (_, path) = segment_paths(t.path()).unwrap().pop().unwrap();
        let mut bytes = Vec::new();
        File::open(&path).unwrap().read_to_end(&mut bytes).unwrap();
        // Flip one payload byte of the 4th record (leaving its CRC stale).
        let mut at = SEGMENT_MAGIC.len();
        for _ in 0..3 {
            let len = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()) as usize;
            at += FRAME_BYTES as usize + len;
        }
        bytes[at + FRAME_BYTES as usize] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        let out = read_records(t.path()).unwrap();
        assert!(out.truncated);
        assert_eq!(out.records, data[..3].to_vec());
    }

    #[test]
    fn empty_segment_file_is_a_clean_truncation() {
        let t = TestDir::new("journal-empty-seg");
        let mut w = JournalWriter::create(t.path(), FsyncPolicy::Never)
            .unwrap()
            .with_max_segment_bytes(64);
        let data = payloads(12);
        for p in &data {
            w.append(p).unwrap();
        }
        w.sync().unwrap();
        drop(w);
        // Simulate a crash right at rotation: a new segment exists but is
        // zero bytes (not even the magic landed).
        let last = segment_paths(t.path()).unwrap().last().unwrap().0;
        fs::write(t.path().join(segment_name(last + 1)), b"").unwrap();
        let out = read_records(t.path()).unwrap();
        assert!(out.truncated);
        assert_eq!(out.records, data, "all real records survive");
    }

    #[test]
    fn missing_middle_segment_truncates_at_the_gap() {
        let t = TestDir::new("journal-gap");
        let mut w = JournalWriter::create(t.path(), FsyncPolicy::Never)
            .unwrap()
            .with_max_segment_bytes(64);
        for p in payloads(40) {
            w.append(&p).unwrap();
        }
        w.sync().unwrap();
        drop(w);
        let segs = segment_paths(t.path()).unwrap();
        assert!(segs.len() >= 3);
        fs::remove_file(&segs[1].1).unwrap();
        let out = read_records(t.path()).unwrap();
        assert!(out.truncated);
        let first_seg_only = read_segment_count(&segs[0].1);
        assert_eq!(out.records.len(), first_seg_only);
    }

    fn read_segment_count(path: &Path) -> usize {
        let mut bytes = Vec::new();
        File::open(path).unwrap().read_to_end(&mut bytes).unwrap();
        let mut at = SEGMENT_MAGIC.len();
        let mut n = 0;
        while at < bytes.len() {
            let len = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()) as usize;
            at += FRAME_BYTES as usize + len;
            n += 1;
        }
        n
    }

    #[test]
    fn truncate_records_keeps_exact_prefix_and_reopens() {
        let t = TestDir::new("journal-truncate");
        let mut w = JournalWriter::create(t.path(), FsyncPolicy::Never)
            .unwrap()
            .with_max_segment_bytes(64);
        let data = payloads(30);
        for p in &data {
            w.append(p).unwrap();
        }
        w.sync().unwrap();
        drop(w);
        assert_eq!(truncate_records(t.path(), 11).unwrap(), 11);
        let out = read_records(t.path()).unwrap();
        assert!(!out.truncated);
        assert_eq!(out.records, data[..11].to_vec());
        // Appending after truncation continues the sequence.
        let mut w = JournalWriter::open(t.path(), FsyncPolicy::Never, 11).unwrap();
        w.append(b"after-resume").unwrap();
        w.sync().unwrap();
        assert_eq!(w.records_written(), 12);
        drop(w);
        let out = read_records(t.path()).unwrap();
        assert_eq!(out.records.len(), 12);
        assert_eq!(out.records[11], b"after-resume");
    }
}
