//! Minimal self-cleaning temp directory for tests (no external tempfile
//! crate in the vendored build environment).

#![allow(dead_code)]

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static COUNTER: AtomicU64 = AtomicU64::new(0);

/// A unique directory under the system temp dir, removed on drop.
pub struct TestDir {
    path: PathBuf,
}

impl TestDir {
    /// Creates `<tmp>/dufp-<name>-<pid>-<n>`.
    pub fn new(name: &str) -> Self {
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!("dufp-{name}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&path).expect("create test dir");
        TestDir { path }
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TestDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}
