//! Property tests for the budget allocation policies: for arbitrary
//! fleets, both policies must conserve the total budget, respect the
//! demand-based floor, and be deterministic — the invariants the
//! networked control plane (`dufp-net`) leans on for its conservation and
//! reclaim guarantees.

use dufp_cluster::allocator::{AllocatorPolicy, DemandBased, NodeObservation, StaticSplit};
use dufp_types::Watts;
use proptest::prelude::*;

/// An arbitrary-but-plausible node: ceiling within the silicon band,
/// consumption at or under the ceiling, possibly finished.
fn arb_node() -> impl Strategy<Value = (f64, f64, bool)> {
    (65.0f64..125.0, 0.0f64..1.0, any::<bool>())
}

fn observations(nodes: &[(f64, f64, bool)]) -> Vec<NodeObservation> {
    nodes
        .iter()
        .map(|&(ceiling, load, active)| NodeObservation {
            ceiling: Watts(ceiling),
            consumption: Watts(ceiling * load),
            active,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn static_split_conserves_and_is_even(
        budget in 100.0f64..2000.0,
        nodes in proptest::collection::vec(arb_node(), 1..32),
    ) {
        let obs = observations(&nodes);
        let out = StaticSplit.allocate(Watts(budget), &obs);
        prop_assert_eq!(out.len(), obs.len());
        let total: f64 = out.iter().map(|w| w.value()).sum();
        prop_assert!(total <= budget + 1e-6, "total {} over budget {}", total, budget);
        // Even: every node gets the same share.
        for w in &out {
            prop_assert!((w.value() - budget / obs.len() as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn demand_based_conserves_and_respects_the_floor(
        budget in 200.0f64..4000.0,
        nodes in proptest::collection::vec(arb_node(), 1..32),
    ) {
        let mut policy = DemandBased::default();
        let obs = observations(&nodes);
        let out = policy.allocate(Watts(budget), &obs);
        prop_assert_eq!(out.len(), obs.len());
        let total: f64 = out.iter().map(|w| w.value()).sum();
        // Conservation holds whenever the floors fit in the budget at all
        // (the networked coordinator adds a proportional scale-down guard
        // for the oversubscribed case).
        let floor_total = policy.floor.value() * obs.len() as f64;
        if floor_total <= budget {
            prop_assert!(
                total <= budget + 1e-6,
                "total {} over budget {}",
                total,
                budget
            );
        }
        for (i, w) in out.iter().enumerate() {
            prop_assert!(
                *w >= policy.floor - Watts(1e-9),
                "node {} granted {:?} below the {:?} floor",
                i,
                w,
                policy.floor
            );
            prop_assert!(
                *w <= policy.node_max + Watts(1e-9),
                "node {} granted {:?} above the silicon limit",
                i,
                w
            );
        }
    }

    #[test]
    fn both_policies_are_deterministic(
        budget in 100.0f64..2000.0,
        nodes in proptest::collection::vec(arb_node(), 1..16),
    ) {
        let obs = observations(&nodes);
        prop_assert_eq!(
            StaticSplit.allocate(Watts(budget), &obs),
            StaticSplit.allocate(Watts(budget), &obs)
        );
        // A fresh DemandBased each time: determinism must not depend on
        // hidden per-instance state.
        let a = DemandBased::default().allocate(Watts(budget), &obs);
        let b = DemandBased::default().allocate(Watts(budget), &obs);
        prop_assert_eq!(a, b);
    }
}
