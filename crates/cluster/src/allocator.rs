//! Budget allocation policies.

use dufp_types::Watts;
use serde::{Deserialize, Serialize};

/// Per-node state the allocator sees at each epoch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeObservation {
    /// The node's current ceiling.
    pub ceiling: Watts,
    /// Average package power over the last epoch.
    pub consumption: Watts,
    /// Whether the node still has work.
    pub active: bool,
}

/// A budget allocation policy: maps observations to new ceilings summing
/// to at most the cluster budget.
pub trait AllocatorPolicy: Send {
    /// Policy name for reports.
    fn name(&self) -> &'static str;

    /// Computes the next epoch's ceilings.
    fn allocate(&mut self, budget: Watts, nodes: &[NodeObservation]) -> Vec<Watts>;
}

/// Even split, never changes — the baseline every distribution paper
/// compares against.
#[derive(Debug, Default)]
pub struct StaticSplit;

impl AllocatorPolicy for StaticSplit {
    fn name(&self) -> &'static str {
        "static-split"
    }

    fn allocate(&mut self, budget: Watts, nodes: &[NodeObservation]) -> Vec<Watts> {
        let n = nodes.len().max(1) as f64;
        vec![budget / n; nodes.len()]
    }
}

/// Demand-based reallocation: nodes consuming well below their ceiling
/// donate part of the headroom; nodes riding their ceiling split the pool.
///
/// ```
/// use dufp_cluster::allocator::{AllocatorPolicy, DemandBased, NodeObservation};
/// use dufp_types::Watts;
///
/// let mut policy = DemandBased::default();
/// let nodes = [
///     NodeObservation { ceiling: Watts(100.0), consumption: Watts(99.0), active: true },
///     NodeObservation { ceiling: Watts(100.0), consumption: Watts(70.0), active: true },
/// ];
/// let out = policy.allocate(Watts(200.0), &nodes);
/// assert!(out[0] > Watts(100.0)); // the rider gains what the donor frees
/// assert!(out[1] < Watts(100.0));
/// ```
///
/// Inactive (finished) nodes keep only a `floor` allocation and donate the
/// rest — the mechanism of the paper's §VII heterogeneous-budget vision
/// ("reduce the budget of the CPU when it does not need it and increase
/// the GPU power budget"), applied across nodes.
#[derive(Debug)]
pub struct DemandBased {
    /// A node is "riding" its ceiling when within this margin of it.
    pub riding_margin: Watts,
    /// Fraction of observed headroom a node donates per epoch.
    pub donate_fraction: f64,
    /// No node's ceiling falls below this.
    pub floor: Watts,
    /// No node's ceiling exceeds this (the silicon PL1 — extra watts above
    /// it are unusable and stay in the pool).
    pub node_max: Watts,
}

impl Default for DemandBased {
    fn default() -> Self {
        DemandBased {
            riding_margin: Watts(6.0),
            donate_fraction: 0.5,
            floor: Watts(65.0),
            node_max: Watts(125.0),
        }
    }
}

impl AllocatorPolicy for DemandBased {
    fn name(&self) -> &'static str {
        "demand-based"
    }

    fn allocate(&mut self, budget: Watts, nodes: &[NodeObservation]) -> Vec<Watts> {
        if nodes.is_empty() {
            return Vec::new();
        }
        // Start from a demand estimate per node…
        let mut want: Vec<f64> = nodes
            .iter()
            .map(|n| {
                if !n.active {
                    self.floor.value()
                } else if n.consumption.value() >= (n.ceiling - self.riding_margin).value() {
                    // Riding the ceiling: wants more than it has.
                    n.ceiling.value() + 2.0 * self.riding_margin.value()
                } else {
                    // Headroom: donate a fraction of it.
                    let headroom = (n.ceiling - n.consumption).value();
                    (n.ceiling.value() - self.donate_fraction * headroom).max(self.floor.value())
                }
            })
            .collect();

        // …then scale into the budget while respecting the floor.
        let floor_total: f64 = self.floor.value() * nodes.len() as f64;
        let budget_above_floor = (budget.value() - floor_total).max(0.0);
        let want_above_floor: f64 = want.iter().map(|w| (w - self.floor.value()).max(0.0)).sum();
        if want_above_floor > 0.0 {
            let scale = (budget_above_floor / want_above_floor).min(1.0);
            for w in &mut want {
                let above = (*w - self.floor.value()).max(0.0);
                *w = self.floor.value() + above * scale;
            }
        }
        // Leftover (if everyone is modest) goes to the riders evenly.
        let assigned: f64 = want.iter().sum();
        let leftover = budget.value() - assigned;
        if leftover > 1.0 {
            let riders: Vec<usize> = nodes
                .iter()
                .enumerate()
                .filter(|(_, n)| {
                    n.active && n.consumption.value() >= (n.ceiling - self.riding_margin).value()
                })
                .map(|(i, _)| i)
                .collect();
            let targets = if riders.is_empty() {
                (0..nodes.len()).collect::<Vec<_>>()
            } else {
                riders
            };
            let share = leftover / targets.len() as f64;
            for i in targets {
                want[i] += share;
            }
        }
        // Watts above the silicon limit are unusable; clamp.
        for w in &mut want {
            *w = w.min(self.node_max.value());
        }
        want.into_iter().map(Watts).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(ceiling: f64, consumption: f64, active: bool) -> NodeObservation {
        NodeObservation {
            ceiling: Watts(ceiling),
            consumption: Watts(consumption),
            active,
        }
    }

    #[test]
    fn static_split_is_even_and_constant() {
        let mut p = StaticSplit;
        let out = p.allocate(Watts(400.0), &[obs(100.0, 50.0, true); 4]);
        assert_eq!(out, vec![Watts(100.0); 4]);
    }

    #[test]
    fn demand_based_moves_watts_from_idle_to_riders() {
        let mut p = DemandBased::default();
        let nodes = [
            obs(100.0, 99.0, true),  // rider (HPL-like)
            obs(100.0, 70.0, true),  // headroom (EP under DUFP)
            obs(100.0, 99.0, true),  // rider
            obs(100.0, 65.0, false), // finished
        ];
        let out = p.allocate(Watts(400.0), &nodes);
        let total: f64 = out.iter().map(|w| w.value()).sum();
        assert!(total <= 400.0 + 1e-6, "total {total}");
        assert!(out[0] > Watts(100.0), "rider should gain: {:?}", out[0]);
        assert!(out[0] <= Watts(125.0), "never above the silicon PL1");
        assert!(out[2] > Watts(100.0));
        assert!(out[1] < Watts(100.0), "donor should shrink: {:?}", out[1]);
        assert!(
            out[3] >= Watts(65.0) && out[3] <= Watts(80.0),
            "finished node near floor"
        );
    }

    #[test]
    fn nobody_falls_below_the_floor() {
        let mut p = DemandBased::default();
        let nodes = [obs(70.0, 40.0, true), obs(70.0, 69.0, true)];
        let out = p.allocate(Watts(140.0), &nodes);
        for w in &out {
            assert!(*w >= Watts(65.0), "{w:?}");
        }
    }

    #[test]
    fn total_respects_a_tight_budget() {
        let mut p = DemandBased::default();
        let nodes = [obs(100.0, 99.0, true); 4];
        let out = p.allocate(Watts(300.0), &nodes);
        let total: f64 = out.iter().map(|w| w.value()).sum();
        assert!(total <= 300.0 + 1e-6, "{total}");
    }

    #[test]
    fn empty_cluster_is_fine() {
        let mut p = DemandBased::default();
        assert!(p.allocate(Watts(100.0), &[]).is_empty());
        let mut s = StaticSplit;
        assert!(s.allocate(Watts(100.0), &[]).is_empty());
    }
}
