//! The cluster simulation: N single-socket nodes, per-node DUFP, a global
//! budget allocator epoch.

use crate::allocator::{AllocatorPolicy, NodeObservation};
use crate::budget::{BudgetedCapper, NodeBudget};
use dufp_control::{Actuators, ControlConfig, Controller, Dufp, HwActuators};
use dufp_counters::{Sampler, Telemetry};
use dufp_rapl::MsrRapl;
use dufp_sim::{Machine, SimConfig};
use dufp_types::{Duration, Error, Ratio, Result, Seconds, SocketId, Watts};
use dufp_workloads::{apps, MaterializeCtx, Workload};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One node's job queue: applications run back to back; the node counts as
/// active until the queue drains.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeSpec {
    /// Applications to run in order (see [`dufp_workloads::apps::by_name`]).
    pub queue: Vec<String>,
}

impl NodeSpec {
    /// A single-job node.
    pub fn single(app: impl Into<String>) -> Self {
        NodeSpec {
            queue: vec![app.into()],
        }
    }
}

/// Cluster experiment configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// One entry per node.
    pub nodes: Vec<NodeSpec>,
    /// Total cluster power budget (package domains).
    pub budget: Watts,
    /// Tolerated slowdown for every node's DUFP.
    pub slowdown: Ratio,
    /// Allocator epoch length.
    pub epoch: Duration,
    /// Master seed.
    pub seed: u64,
}

impl ClusterConfig {
    /// Rejects configurations no cluster can run — empty node lists or
    /// queues, zero/negative/NaN budgets, slowdowns outside [0, 1),
    /// zero-length epochs — with a typed [`Error::InvalidValue`] naming
    /// the offending field, the same contract
    /// [`dufp_control::ControlConfig::validate`] gives control settings.
    pub fn validate(&self) -> Result<()> {
        if self.nodes.is_empty() {
            return Err(Error::invalid("nodes", "cluster needs at least one node"));
        }
        for (i, spec) in self.nodes.iter().enumerate() {
            if spec.queue.is_empty() || spec.queue.iter().any(String::is_empty) {
                return Err(Error::invalid(
                    "nodes",
                    format!("node {i} has an empty application queue"),
                ));
            }
        }
        if !self.budget.value().is_finite() {
            return Err(Error::invalid(
                "budget",
                format!("{} is not finite", self.budget.value()),
            ));
        }
        if self.budget.value() <= 0.0 {
            return Err(Error::invalid(
                "budget",
                format!("{} W must be positive", self.budget.value()),
            ));
        }
        if !self.slowdown.value().is_finite() || !(0.0..1.0).contains(&self.slowdown.value()) {
            return Err(Error::invalid(
                "slowdown",
                format!("{} must be within [0, 1)", self.slowdown.value()),
            ));
        }
        if self.epoch.as_micros() == 0 {
            return Err(Error::invalid("epoch", "zero allocator epoch"));
        }
        Ok(())
    }

    /// The demo mix: a hungry solver, two memory-bound codes and one
    /// compute-bound code, under a budget tighter than 4 × PL1.
    pub fn demo(seed: u64) -> Self {
        ClusterConfig {
            nodes: ["HPL", "CG", "EP", "MG"]
                .iter()
                .map(|a| NodeSpec::single(*a))
                .collect(),
            budget: Watts(420.0),
            slowdown: Ratio::from_percent(10.0),
            epoch: Duration::from_secs(1),
            seed,
        }
    }
}

/// Per-node outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NodeOutcome {
    /// The node's job queue, joined for display.
    pub app: String,
    /// Job completion time.
    pub exec_time: Seconds,
    /// Average package power while the job ran.
    pub avg_power: Watts,
    /// Final ceiling when the job finished.
    pub final_ceiling: Watts,
}

/// Whole-cluster outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterOutcome {
    /// Allocation policy used.
    pub policy: String,
    /// Per-node outcomes in configuration order.
    pub nodes: Vec<NodeOutcome>,
    /// Time until the last job finished.
    pub makespan: Seconds,
    /// Peak epoch-average cluster power (must stay within the budget).
    pub peak_cluster_power: Watts,
}

/// The budget-enforcing RAPL stack shared by a node's actuators.
type NodeCapper = Arc<BudgetedCapper<MsrRapl<Arc<Machine>>>>;

struct Node {
    app: String,
    /// Jobs not yet started.
    pending: Vec<Workload>,
    machine: Arc<Machine>,
    controller: Dufp,
    sampler: Sampler,
    actuators: HwActuators<Arc<Machine>, NodeCapper>,
    budget: Arc<NodeBudget>,
    capper: NodeCapper,
    epoch_start_energy: f64,
    finished_at: Option<Seconds>,
    power_sum: f64,
    power_samples: u64,
}

/// The running cluster.
pub struct Cluster {
    cfg: ClusterConfig,
    nodes: Vec<Node>,
    policy: Box<dyn AllocatorPolicy>,
}

impl Cluster {
    /// Builds the cluster: one single-socket simulated node per job, an
    /// even initial split of the budget.
    pub fn new(cfg: ClusterConfig, policy: Box<dyn AllocatorPolicy>) -> Result<Self> {
        cfg.validate()?;
        let initial = cfg.budget / cfg.nodes.len() as f64;
        let mut nodes = Vec::with_capacity(cfg.nodes.len());
        for (i, spec) in cfg.nodes.iter().enumerate() {
            let sim = SimConfig::yeti_single_socket(cfg.seed.wrapping_add(i as u64 * 131));
            let arch = sim.arch.clone();
            let ctx = MaterializeCtx::from_arch(&arch);
            let machine = Arc::new(Machine::new(sim));
            let mut jobs = spec
                .queue
                .iter()
                .map(|app| apps::by_name(app, &ctx))
                .collect::<Result<Vec<_>>>()?;
            machine.load_all(&jobs.remove(0));
            jobs.reverse(); // pop() yields the next job in order

            let budget = NodeBudget::try_new(initial)?;
            let capper = Arc::new(BudgetedCapper::new(
                MsrRapl::new(Arc::clone(&machine), 1, arch.cores_per_socket as usize)?,
                Arc::clone(&budget),
            ));
            let control_cfg = ControlConfig::from_arch(&arch, cfg.slowdown)?;
            let mut actuators = HwActuators::new(
                Arc::clone(&machine),
                Arc::clone(&capper),
                SocketId(0),
                0,
                control_cfg.clone(),
            )?;
            // Start the node at its allocation.
            actuators.reset_cap()?;
            let mut sampler = Sampler::new();
            sampler.sample(machine.as_ref(), SocketId(0))?;
            nodes.push(Node {
                app: spec.queue.join("+"),
                pending: jobs,
                machine,
                controller: Dufp::new(control_cfg),
                sampler,
                actuators,
                budget,
                capper,
                epoch_start_energy: 0.0,
                finished_at: None,
                power_sum: 0.0,
                power_samples: 0,
            });
        }
        Ok(Cluster { cfg, nodes, policy })
    }

    /// Runs to completion (all jobs done) and reports the outcome.
    pub fn run(mut self) -> Result<ClusterOutcome> {
        let interval = Duration::from_millis(200);
        let tick = self.nodes[0].machine.config().tick;
        let ticks_per_interval = (interval.as_micros() / tick.as_micros()).max(1);
        let intervals_per_epoch = (self.cfg.epoch.as_micros() / interval.as_micros()).max(1);

        let mut elapsed = Seconds(0.0);
        let mut interval_count: u64 = 0;
        let mut peak_cluster_power = 0.0f64;
        let max_time = 3600.0;

        while self.nodes.iter().any(|n| n.finished_at.is_none()) {
            // Advance every node one monitoring interval.
            for _ in 0..ticks_per_interval {
                for n in &self.nodes {
                    n.machine.tick();
                }
            }
            elapsed += interval.as_seconds();
            interval_count += 1;
            if elapsed.value() > max_time {
                return Err(Error::Precondition("cluster run exceeded 1 h".into()));
            }

            // Node-local DUFP decisions; drained machines pull the next
            // queued job.
            for n in &mut self.nodes {
                if n.finished_at.is_none() && n.machine.done() {
                    match n.pending.pop() {
                        Some(next) => n.machine.load_all(&next),
                        None => n.finished_at = Some(elapsed),
                    }
                }
                if let Some(m) = n.sampler.sample(n.machine.as_ref(), SocketId(0))? {
                    n.power_sum += m.pkg_power.value();
                    n.power_samples += 1;
                    if n.finished_at.is_none() {
                        n.controller.on_interval(&m, &mut n.actuators)?;
                    }
                }
            }

            // Allocator epoch.
            if interval_count.is_multiple_of(intervals_per_epoch) {
                let epoch_secs = self.cfg.epoch.as_seconds().value();
                let observations: Vec<NodeObservation> = self
                    .nodes
                    .iter_mut()
                    .map(|n| {
                        let snap = n.machine.sample(SocketId(0))?;
                        let consumed = snap.pkg_energy.value() - n.epoch_start_energy;
                        n.epoch_start_energy = snap.pkg_energy.value();
                        Ok(NodeObservation {
                            ceiling: n.budget.ceiling(),
                            consumption: Watts(consumed / epoch_secs),
                            active: n.finished_at.is_none(),
                        })
                    })
                    .collect::<Result<Vec<_>>>()?;

                let cluster_power: f64 = observations.iter().map(|o| o.consumption.value()).sum();
                peak_cluster_power = peak_cluster_power.max(cluster_power);

                let ceilings = self.policy.allocate(self.cfg.budget, &observations);
                for (n, ceiling) in self.nodes.iter_mut().zip(ceilings) {
                    n.budget.set_ceiling(ceiling);
                    n.capper.enforce_ceiling(SocketId(0))?;
                }
            }
        }

        let makespan = self
            .nodes
            .iter()
            .filter_map(|n| n.finished_at)
            .fold(Seconds(0.0), |acc, t| acc.max(t));
        let nodes = self
            .nodes
            .into_iter()
            .map(|n| NodeOutcome {
                exec_time: n.finished_at.expect("all finished"),
                avg_power: Watts(n.power_sum / n.power_samples.max(1) as f64),
                final_ceiling: n.budget.ceiling(),
                app: n.app,
            })
            .collect();
        Ok(ClusterOutcome {
            policy: self.policy.name().to_string(),
            nodes,
            makespan,
            peak_cluster_power: Watts(peak_cluster_power),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocator::{DemandBased, StaticSplit};

    #[test]
    fn demo_cluster_completes_under_both_policies() {
        for policy in [
            Box::new(StaticSplit) as Box<dyn AllocatorPolicy>,
            Box::new(DemandBased::default()),
        ] {
            let out = Cluster::new(ClusterConfig::demo(3), policy)
                .unwrap()
                .run()
                .unwrap();
            assert_eq!(out.nodes.len(), 4);
            assert!(out.makespan.value() > 10.0);
            // Epoch-average cluster power stays within the budget (small
            // enforcement slack allowed).
            assert!(
                out.peak_cluster_power.value() <= 420.0 * 1.05,
                "{}: peak {:?}",
                out.policy,
                out.peak_cluster_power
            );
        }
    }

    #[test]
    fn demand_based_beats_static_split_on_the_hungry_node() {
        let static_out = Cluster::new(ClusterConfig::demo(7), Box::new(StaticSplit))
            .unwrap()
            .run()
            .unwrap();
        let demand_out = Cluster::new(ClusterConfig::demo(7), Box::new(DemandBased::default()))
            .unwrap()
            .run()
            .unwrap();
        // HPL is node 0 and is the budget-hungry job: demand-based
        // allocation must speed it up.
        let hpl_static = static_out.nodes[0].exec_time.value();
        let hpl_demand = demand_out.nodes[0].exec_time.value();
        assert!(
            hpl_demand < hpl_static * 0.99,
            "HPL: static {hpl_static:.1}s vs demand {hpl_demand:.1}s"
        );
        // And the whole mix should not get worse.
        assert!(demand_out.makespan.value() <= static_out.makespan.value() * 1.02);
    }

    #[test]
    fn job_queues_run_back_to_back_and_donate_when_drained() {
        // Node 0 runs two short jobs in sequence; node 1 runs one long one.
        let cfg = ClusterConfig {
            nodes: vec![
                NodeSpec {
                    queue: vec!["EP".into(), "MG".into()],
                },
                NodeSpec::single("HPL"),
            ],
            budget: Watts(220.0),
            slowdown: Ratio::from_percent(10.0),
            epoch: Duration::from_secs(1),
            seed: 5,
        };
        let out = Cluster::new(cfg, Box::new(DemandBased::default()))
            .unwrap()
            .run()
            .unwrap();
        // The queued node takes at least the sum of both jobs' shortest
        // possible times (EP ≈ 30 s + MG ≈ 30 s).
        assert!(
            out.nodes[0].exec_time.value() > 55.0,
            "queue ran too fast: {:?}",
            out.nodes[0].exec_time
        );
        assert_eq!(out.nodes[0].app, "EP+MG");
        // HPL finishes first here; once it drains, its budget flows to the
        // still-running queue node, whose final ceiling reflects that.
        assert!(
            out.nodes[0].final_ceiling >= Watts(100.0),
            "{:?}",
            out.nodes[0]
        );
    }

    #[test]
    fn validation_names_the_offending_field() {
        for bad in [0.0, -50.0, f64::NAN, f64::INFINITY] {
            let mut cfg = ClusterConfig::demo(1);
            cfg.budget = Watts(bad);
            let err = cfg.validate().unwrap_err();
            assert!(
                matches!(err, Error::InvalidValue { what: "budget", .. }),
                "{bad}: {err:?}"
            );
        }
        let mut cfg = ClusterConfig::demo(1);
        cfg.slowdown = Ratio(1.5);
        assert!(matches!(
            cfg.validate().unwrap_err(),
            Error::InvalidValue {
                what: "slowdown",
                ..
            }
        ));
        let mut cfg = ClusterConfig::demo(1);
        cfg.epoch = Duration::from_secs(0);
        assert!(matches!(
            cfg.validate().unwrap_err(),
            Error::InvalidValue { what: "epoch", .. }
        ));
        assert!(ClusterConfig::demo(1).validate().is_ok());
    }

    #[test]
    fn empty_queue_is_rejected() {
        let cfg = ClusterConfig {
            nodes: vec![NodeSpec { queue: vec![] }],
            budget: Watts(100.0),
            slowdown: Ratio::from_percent(10.0),
            epoch: Duration::from_secs(1),
            seed: 1,
        };
        assert!(Cluster::new(cfg, Box::new(StaticSplit)).is_err());
    }

    #[test]
    fn empty_cluster_is_rejected() {
        let cfg = ClusterConfig {
            nodes: vec![],
            budget: Watts(100.0),
            slowdown: Ratio::from_percent(10.0),
            epoch: Duration::from_secs(1),
            seed: 1,
        };
        assert!(Cluster::new(cfg, Box::new(StaticSplit)).is_err());
    }
}
