//! Cluster-level power-budget distribution over per-node DUFP.
//!
//! The paper positions DUFP as *node-level* dynamic capping and cites the
//! job/cluster-level budget distributors (GEOPM, DAPS, …) as complementary
//! (§VI): "These studies are complementary to DUFP since they propose
//! power budget allocation strategies across nodes while DUFP provides
//! node-level dynamic power-capping." This crate builds that complementary
//! layer and composes it with DUFP:
//!
//! * [`budget`] — a per-node budget ceiling and a [`dufp_rapl::PowerCapper`]
//!   wrapper that clamps everything a node-local controller does to it, so
//!   DUFP needs no modification to run under an allocator,
//! * [`allocator`] — allocation policies: static even split, and a
//!   demand-based policy that moves watts from nodes with headroom to
//!   nodes riding their ceiling,
//! * [`cluster`] — the cluster simulation: one simulated node (socket) per
//!   job, per-node DUFP instances, a global allocator epoch,
//! * [`gpu`] / [`hetero`] — the §VII future-work question: a power-capped
//!   GPU model and a CPU+GPU shared-budget coordinator that donates the
//!   watts DUFP frees on the CPU to the GPU.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allocator;
pub mod budget;
pub mod cluster;
pub mod gpu;
pub mod hetero;

pub use allocator::{AllocatorPolicy, DemandBased, StaticSplit};
pub use budget::{BudgetedCapper, NodeBudget};
pub use cluster::{Cluster, ClusterConfig, ClusterOutcome, NodeSpec};
pub use gpu::{GpuSim, GpuSpec};
pub use hetero::{run_hetero, HeteroConfig, HeteroOutcome, SharePolicy};
