//! Per-node budget ceilings and the capper wrapper that enforces them.

use dufp_rapl::{Constraint, PowerCapper};
use dufp_types::{Error, Joules, Result, SocketId, Watts};
use parking_lot::Mutex;
use std::sync::Arc;

/// A node's current power ceiling, shared between the allocator (writer)
/// and the node's capper wrapper (reader).
#[derive(Debug)]
pub struct NodeBudget {
    ceiling: Mutex<Watts>,
}

impl NodeBudget {
    /// New budget at the given ceiling.
    pub fn new(ceiling: Watts) -> Arc<Self> {
        Arc::new(NodeBudget {
            ceiling: Mutex::new(ceiling),
        })
    }

    /// Like [`NodeBudget::new`], but rejects ceilings no node can enforce
    /// (zero, negative, NaN, infinite) with a typed
    /// [`Error::InvalidValue`] naming the field — the same contract
    /// `ControlConfig::validate` gives control-side settings.
    pub fn try_new(ceiling: Watts) -> Result<Arc<Self>> {
        if !ceiling.value().is_finite() {
            return Err(Error::invalid(
                "ceiling",
                format!("{} is not finite", ceiling.value()),
            ));
        }
        if ceiling.value() <= 0.0 {
            return Err(Error::invalid(
                "ceiling",
                format!("{} W must be positive", ceiling.value()),
            ));
        }
        Ok(NodeBudget::new(ceiling))
    }

    /// The current ceiling.
    pub fn ceiling(&self) -> Watts {
        *self.ceiling.lock()
    }

    /// Replaces the ceiling (allocator epoch).
    pub fn set_ceiling(&self, w: Watts) {
        *self.ceiling.lock() = w;
    }
}

/// Wraps a node's [`PowerCapper`] so every limit the node-local controller
/// programs — including "reset to defaults" — is clamped to the node's
/// allocated ceiling. DUFP runs unmodified underneath.
pub struct BudgetedCapper<C> {
    inner: C,
    budget: Arc<NodeBudget>,
}

impl<C: PowerCapper> BudgetedCapper<C> {
    /// Wraps `inner` under `budget`.
    pub fn new(inner: C, budget: Arc<NodeBudget>) -> Self {
        BudgetedCapper { inner, budget }
    }

    /// The node's budget handle.
    pub fn budget(&self) -> &Arc<NodeBudget> {
        &self.budget
    }

    /// Re-applies the ceiling to the hardware if the currently programmed
    /// limits exceed it (called by the allocator after lowering a ceiling).
    pub fn enforce_ceiling(&self, socket: SocketId) -> Result<()> {
        let ceiling = self.budget.ceiling();
        if self.inner.limit(socket, Constraint::LongTerm)? > ceiling {
            self.inner
                .set_limit(socket, Constraint::LongTerm, ceiling)?;
        }
        if self.inner.limit(socket, Constraint::ShortTerm)? > ceiling {
            self.inner
                .set_limit(socket, Constraint::ShortTerm, ceiling)?;
        }
        Ok(())
    }
}

impl<C: PowerCapper> PowerCapper for BudgetedCapper<C> {
    fn set_limit(&self, socket: SocketId, which: Constraint, limit: Watts) -> Result<()> {
        self.inner
            .set_limit(socket, which, limit.min(self.budget.ceiling()))
    }

    fn limit(&self, socket: SocketId, which: Constraint) -> Result<Watts> {
        self.inner.limit(socket, which)
    }

    fn defaults(&self, socket: SocketId) -> Result<(Watts, Watts)> {
        // The ceiling *is* the node's default: a DUFP "reset" returns to the
        // allocation, not to the silicon's PL1/PL2.
        let (pl1, pl2) = self.inner.defaults(socket)?;
        let ceiling = self.budget.ceiling();
        Ok((pl1.min(ceiling), pl2.min(ceiling)))
    }

    fn package_energy(&self, socket: SocketId) -> Result<Joules> {
        self.inner.package_energy(socket)
    }

    fn dram_energy(&self, socket: SocketId) -> Result<Joules> {
        self.inner.dram_energy(socket)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dufp_msr::registers::{
        PkgPowerLimit, RaplPowerUnit, MSR_PKG_POWER_LIMIT, MSR_RAPL_POWER_UNIT,
        SKYLAKE_SP_POWER_UNIT_RAW,
    };
    use dufp_msr::FakeMsr;
    use dufp_rapl::MsrRapl;
    use dufp_types::Seconds;

    fn rig(ceiling: f64) -> (Arc<NodeBudget>, BudgetedCapper<MsrRapl<FakeMsr>>) {
        let m = FakeMsr::new(16);
        m.seed(MSR_RAPL_POWER_UNIT, SKYLAKE_SP_POWER_UNIT_RAW);
        let units = RaplPowerUnit::skylake_sp();
        let reg = PkgPowerLimit::defaults(Watts(125.0), Seconds(1.0), Watts(150.0), Seconds(0.01));
        m.seed(MSR_PKG_POWER_LIMIT, reg.encode(&units).unwrap());
        let budget = NodeBudget::new(Watts(ceiling));
        let capper = BudgetedCapper::new(MsrRapl::new(m, 1, 16).unwrap(), Arc::clone(&budget));
        (budget, capper)
    }

    #[test]
    fn try_new_rejects_unenforceable_ceilings() {
        for bad in [0.0, -10.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = NodeBudget::try_new(Watts(bad)).unwrap_err();
            assert!(
                matches!(
                    err,
                    Error::InvalidValue {
                        what: "ceiling",
                        ..
                    }
                ),
                "{bad}: {err:?}"
            );
        }
        assert_eq!(
            NodeBudget::try_new(Watts(100.0)).unwrap().ceiling(),
            Watts(100.0)
        );
    }

    #[test]
    fn limits_clamp_to_the_ceiling() {
        let (_, c) = rig(100.0);
        c.set_limit(SocketId(0), Constraint::LongTerm, Watts(120.0))
            .unwrap();
        assert_eq!(
            c.limit(SocketId(0), Constraint::LongTerm).unwrap(),
            Watts(100.0)
        );
        c.set_limit(SocketId(0), Constraint::LongTerm, Watts(80.0))
            .unwrap();
        assert_eq!(
            c.limit(SocketId(0), Constraint::LongTerm).unwrap(),
            Watts(80.0)
        );
    }

    #[test]
    fn defaults_are_the_allocation_not_the_silicon() {
        let (_, c) = rig(100.0);
        assert_eq!(
            c.defaults(SocketId(0)).unwrap(),
            (Watts(100.0), Watts(100.0))
        );
        // A DUFP reset therefore lands on the allocation.
        c.reset(SocketId(0)).unwrap();
        assert_eq!(
            c.limit(SocketId(0), Constraint::LongTerm).unwrap(),
            Watts(100.0)
        );
    }

    #[test]
    fn raising_the_ceiling_raises_defaults() {
        let (b, c) = rig(100.0);
        b.set_ceiling(Watts(120.0));
        assert_eq!(
            c.defaults(SocketId(0)).unwrap(),
            (Watts(120.0), Watts(120.0))
        );
        // Above the silicon limit the silicon wins.
        b.set_ceiling(Watts(500.0));
        assert_eq!(
            c.defaults(SocketId(0)).unwrap(),
            (Watts(125.0), Watts(150.0))
        );
    }

    #[test]
    fn enforce_ceiling_pulls_programmed_limits_down() {
        let (b, c) = rig(120.0);
        c.set_both(SocketId(0), Watts(115.0)).unwrap();
        b.set_ceiling(Watts(90.0));
        c.enforce_ceiling(SocketId(0)).unwrap();
        assert_eq!(
            c.limit(SocketId(0), Constraint::LongTerm).unwrap(),
            Watts(90.0)
        );
        assert_eq!(
            c.limit(SocketId(0), Constraint::ShortTerm).unwrap(),
            Watts(90.0)
        );
    }
}
