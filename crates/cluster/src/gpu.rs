//! A power-cappable GPU model, for the paper's §VII heterogeneous
//! future-work study.
//!
//! The paper closes with: "we plan to target heterogeneous architectures:
//! With a specified shared power budget to distribute over a CPU and a
//! GPU, can we benefit from dynamic power capping to reduce the budget of
//! the CPU when it does not need it and increase the GPU power budget?"
//!
//! This module provides the GPU half of that question: a discrete-time
//! device with an NVML-style power limit. GPU boards enforce power limits
//! by clock-capping just like RAPL does, and compute throughput follows
//! the delivered power sub-linearly (voltage rides down with frequency):
//!
//! ```text
//! rate(cap) = peak_rate · ((cap − idle) / (tdp − idle))^α ,  α ≈ 0.7
//! ```

use dufp_types::{Error, Result, Seconds, Watts};
use serde::{Deserialize, Serialize};

/// Static description of a GPU device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Board power limit ceiling (the silicon TDP).
    pub tdp: Watts,
    /// Idle/static power (fans, HBM refresh, leakage).
    pub idle: Watts,
    /// Lowest enforceable power limit (NVML refuses lower).
    pub min_limit: Watts,
    /// Work throughput at TDP, abstract units/second.
    pub peak_rate: f64,
    /// Power-to-throughput exponent (sub-linear: voltage scales down with
    /// the clock cap).
    pub alpha: f64,
}

impl GpuSpec {
    /// A V100-class board: 300 W TDP, 100 W minimum limit.
    pub fn v100() -> Self {
        GpuSpec {
            tdp: Watts(300.0),
            idle: Watts(40.0),
            min_limit: Watts(100.0),
            peak_rate: 1.0,
            alpha: 0.7,
        }
    }
}

/// A running GPU job under a power limit.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GpuSim {
    spec: GpuSpec,
    /// Programmed power limit.
    limit: Watts,
    /// Remaining work units.
    remaining: f64,
    /// Total energy consumed so far.
    energy: f64,
    /// Total busy time.
    elapsed: f64,
}

impl GpuSim {
    /// Starts a job of `work_units` on a board at its TDP limit.
    pub fn new(spec: GpuSpec, work_units: f64) -> Result<Self> {
        if work_units <= 0.0 || !work_units.is_finite() {
            return Err(Error::invalid("work_units", format!("{work_units}")));
        }
        Ok(GpuSim {
            limit: spec.tdp,
            spec,
            remaining: work_units,
            energy: 0.0,
            elapsed: 0.0,
        })
    }

    /// Sets the power limit (clamped to the board's legal range, like
    /// `nvidia-smi -pl`).
    pub fn set_power_limit(&mut self, w: Watts) {
        self.limit = w.clamp(self.spec.min_limit, self.spec.tdp);
    }

    /// The programmed power limit.
    pub fn power_limit(&self) -> Watts {
        self.limit
    }

    /// The board specification.
    pub fn spec(&self) -> &GpuSpec {
        &self.spec
    }

    /// Instantaneous throughput at the current limit (units/second).
    pub fn rate(&self) -> f64 {
        if self.done() {
            return 0.0;
        }
        let span = (self.spec.tdp - self.spec.idle).value().max(1e-9);
        let avail = (self.limit - self.spec.idle).value().max(0.0);
        self.spec.peak_rate * (avail / span).powf(self.spec.alpha)
    }

    /// Instantaneous power draw: the limit while busy (boost clocks ride
    /// the limit), idle power when the job is finished.
    pub fn power(&self) -> Watts {
        if self.done() {
            self.spec.idle
        } else {
            self.limit
        }
    }

    /// Advances the device by `dt`.
    pub fn tick(&mut self, dt: Seconds) {
        let p = self.power();
        self.energy += (p * dt).value();
        if !self.done() {
            self.remaining = (self.remaining - self.rate() * dt.value()).max(0.0);
            self.elapsed += dt.value();
        }
    }

    /// True once the job has no work left.
    pub fn done(&self) -> bool {
        self.remaining <= 0.0
    }

    /// Busy time so far.
    pub fn elapsed(&self) -> Seconds {
        Seconds(self.elapsed)
    }

    /// Energy consumed so far (including idle tail).
    pub fn energy(&self) -> f64 {
        self.energy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn run_to_done(mut g: GpuSim, max_secs: f64) -> f64 {
        let dt = Seconds(0.01);
        let mut t = 0.0;
        while !g.done() {
            g.tick(dt);
            t += dt.value();
            assert!(t < max_secs, "gpu job stuck");
        }
        t
    }

    #[test]
    fn full_power_full_speed() {
        let g = GpuSim::new(GpuSpec::v100(), 30.0).unwrap();
        assert!((g.rate() - 1.0).abs() < 1e-9);
        let t = run_to_done(g, 100.0);
        assert!((t - 30.0).abs() < 0.1, "{t}");
    }

    #[test]
    fn halving_available_power_slows_sublinearly() {
        let mut g = GpuSim::new(GpuSpec::v100(), 30.0).unwrap();
        g.set_power_limit(Watts(170.0)); // half the idle..tdp span
        let r = g.rate();
        assert!(
            r > 0.5 && r < 0.75,
            "α=0.7 keeps throughput above linear scaling: {r}"
        );
    }

    #[test]
    fn limit_clamps_to_board_range() {
        let mut g = GpuSim::new(GpuSpec::v100(), 1.0).unwrap();
        g.set_power_limit(Watts(20.0));
        assert_eq!(g.power_limit(), Watts(100.0));
        g.set_power_limit(Watts(900.0));
        assert_eq!(g.power_limit(), Watts(300.0));
    }

    #[test]
    fn finished_board_draws_idle_power() {
        let mut g = GpuSim::new(GpuSpec::v100(), 0.5).unwrap();
        run_to_done(g.clone(), 10.0);
        for _ in 0..100 {
            g.tick(Seconds(0.01));
        }
        assert!(g.done());
        assert_eq!(g.power(), Watts(40.0));
    }

    #[test]
    fn invalid_work_rejected() {
        assert!(GpuSim::new(GpuSpec::v100(), 0.0).is_err());
        assert!(GpuSim::new(GpuSpec::v100(), f64::NAN).is_err());
    }

    proptest! {
        #[test]
        fn rate_monotone_in_limit(a in 100.0f64..300.0, b in 100.0f64..300.0) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            let mut g = GpuSim::new(GpuSpec::v100(), 100.0).unwrap();
            g.set_power_limit(Watts(lo));
            let r_lo = g.rate();
            g.set_power_limit(Watts(hi));
            let r_hi = g.rate();
            prop_assert!(r_lo <= r_hi + 1e-12);
        }

        #[test]
        fn energy_is_power_times_time(limit in 100.0f64..300.0, secs in 1.0f64..20.0) {
            let mut g = GpuSim::new(GpuSpec::v100(), 1e12).unwrap(); // never finishes
            g.set_power_limit(Watts(limit));
            let steps = (secs / 0.01) as usize;
            for _ in 0..steps {
                g.tick(Seconds(0.01));
            }
            let expect = limit * steps as f64 * 0.01;
            prop_assert!((g.energy() - expect).abs() < expect * 1e-9 + 1e-6);
        }
    }
}
