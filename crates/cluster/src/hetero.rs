//! CPU+GPU shared-budget coordination — the paper's closing §VII question:
//! *"With a specified shared power budget to distribute over a CPU and a
//! GPU, can we benefit from dynamic power capping to reduce the budget of
//! the CPU when it does not need it and increase the GPU power budget?"*
//!
//! One simulated CPU socket runs an application under an unmodified DUFP
//! instance (behind a [`crate::budget::BudgetedCapper`]); one
//! [`crate::gpu::GpuSim`] runs a GPU job under an NVML-style power limit.
//! Every epoch a coordinator re-splits the shared budget:
//!
//! * **static** — a fixed CPU/GPU split, the baseline,
//! * **donate** — the CPU keeps `consumption + margin` (whatever DUFP's
//!   capping left it actually using); everything else goes to the GPU.

use crate::budget::{BudgetedCapper, NodeBudget};
use crate::gpu::{GpuSim, GpuSpec};
use dufp_control::{Actuators, ControlConfig, Controller, Dufp, HwActuators};
use dufp_counters::{Sampler, Telemetry};
use dufp_rapl::MsrRapl;
use dufp_sim::{Machine, SimConfig};
use dufp_types::{Duration, Error, Ratio, Result, Seconds, SocketId, Watts};
use dufp_workloads::{apps, MaterializeCtx};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// How the shared budget is split each epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SharePolicy {
    /// Fixed split: CPU gets its PL1 share, the GPU the rest.
    Static,
    /// The CPU keeps measured consumption plus a margin; the GPU gets the
    /// remainder (clamped to its board range).
    Donate,
}

/// Configuration of one heterogeneous-node experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HeteroConfig {
    /// CPU application (runs under DUFP).
    pub cpu_app: String,
    /// CPU DUFP tolerated slowdown.
    pub slowdown: Ratio,
    /// GPU job size in abstract units (1 unit/s at TDP).
    pub gpu_work: f64,
    /// GPU board.
    pub gpu: GpuSpec,
    /// Shared budget for CPU package + GPU board.
    pub budget: Watts,
    /// Coordinator epoch.
    pub epoch: Duration,
    /// Seed.
    pub seed: u64,
}

impl HeteroConfig {
    /// The paper's motivating pairing: a memory-leaning CPU code whose
    /// budget DUFP can shrink, next to a power-hungry GPU job, under a
    /// budget well below `PL1 + GPU TDP`.
    pub fn demo(seed: u64) -> Self {
        HeteroConfig {
            cpu_app: "CG".into(),
            slowdown: Ratio::from_percent(10.0),
            gpu_work: 60.0,
            gpu: GpuSpec::v100(),
            budget: Watts(330.0),
            epoch: Duration::from_secs(1),
            seed,
        }
    }
}

/// Outcome of one heterogeneous run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HeteroOutcome {
    /// Policy used.
    pub policy: SharePolicy,
    /// CPU job completion time.
    pub cpu_time: Seconds,
    /// GPU job completion time.
    pub gpu_time: Seconds,
    /// Average GPU power limit while the GPU job ran.
    pub avg_gpu_limit: Watts,
    /// Peak epoch-average combined power.
    pub peak_combined_power: Watts,
}

/// Runs the experiment under `policy`.
pub fn run_hetero(cfg: &HeteroConfig, policy: SharePolicy) -> Result<HeteroOutcome> {
    let sim = SimConfig::yeti_single_socket(cfg.seed);
    let arch = sim.arch.clone();
    let ctx = MaterializeCtx::from_arch(&arch);
    let machine = Arc::new(Machine::new(sim));
    machine.load_all(&apps::by_name(&cfg.cpu_app, &ctx)?);

    // Static split: CPU gets PL1's share of the budget (or everything the
    // GPU cannot use).
    let gpu_static = (cfg.budget - arch.pl1_default).clamp(cfg.gpu.min_limit, cfg.gpu.tdp);
    let cpu_initial = cfg.budget - gpu_static;

    let budget = NodeBudget::new(cpu_initial);
    let capper = Arc::new(BudgetedCapper::new(
        MsrRapl::new(Arc::clone(&machine), 1, arch.cores_per_socket as usize)?,
        Arc::clone(&budget),
    ));
    let control_cfg = ControlConfig::from_arch(&arch, cfg.slowdown)?;
    let mut actuators = HwActuators::new(
        Arc::clone(&machine),
        Arc::clone(&capper),
        SocketId(0),
        0,
        control_cfg.clone(),
    )?;
    actuators.reset_cap()?;
    let mut controller = Dufp::new(control_cfg.clone());
    let mut sampler = Sampler::new();
    sampler.sample(machine.as_ref(), SocketId(0))?;

    let mut gpu = GpuSim::new(cfg.gpu, cfg.gpu_work)?;
    gpu.set_power_limit(gpu_static);

    let interval = Duration::from_millis(200);
    let tick = machine.config().tick;
    let ticks_per_interval = (interval.as_micros() / tick.as_micros()).max(1);
    let intervals_per_epoch = (cfg.epoch.as_micros() / interval.as_micros()).max(1);

    let mut elapsed = Seconds(0.0);
    let mut intervals = 0u64;
    let mut cpu_done_at: Option<Seconds> = None;
    let mut gpu_done_at: Option<Seconds> = None;
    let mut epoch_energy_start = 0.0;
    let mut peak_combined = 0.0f64;
    let mut gpu_limit_sum = 0.0;
    let mut gpu_limit_samples = 0u64;
    let mut prev_cpu_ceiling = cpu_initial.value();

    while cpu_done_at.is_none() || gpu_done_at.is_none() {
        for _ in 0..ticks_per_interval {
            machine.tick();
            gpu.tick(tick.as_seconds());
        }
        elapsed += interval.as_seconds();
        intervals += 1;
        if elapsed.value() > 3600.0 {
            return Err(Error::Precondition("hetero run exceeded 1 h".into()));
        }

        if cpu_done_at.is_none() && machine.done() {
            cpu_done_at = Some(elapsed);
        }
        if gpu_done_at.is_none() && gpu.done() {
            gpu_done_at = Some(elapsed);
        }
        if let Some(m) = sampler.sample(machine.as_ref(), SocketId(0))? {
            if cpu_done_at.is_none() {
                controller.on_interval(&m, &mut actuators)?;
            }
        }
        if gpu_done_at.is_none() {
            gpu_limit_sum += gpu.power_limit().value();
            gpu_limit_samples += 1;
        }

        // Coordinator epoch.
        if intervals.is_multiple_of(intervals_per_epoch) {
            let snap = machine.sample(SocketId(0))?;
            let epoch_secs = cfg.epoch.as_seconds().value();
            let cpu_power = (snap.pkg_energy.value() - epoch_energy_start) / epoch_secs;
            epoch_energy_start = snap.pkg_energy.value();
            peak_combined = peak_combined.max(cpu_power + gpu.power().value());

            if policy == SharePolicy::Donate {
                // CPU keeps what it uses plus a margin; the GPU gets the
                // rest. The ceiling decays *gradually* toward demand —
                // snapping it to consumption each epoch would ratchet DUFP
                // down (every reset would land on the squeezed ceiling and
                // probing headroom would vanish).
                let margin = 15.0;
                let demand = if cpu_done_at.is_some() {
                    cpu_power + margin
                } else {
                    (cpu_power + margin).min(arch.pl1_default.value())
                };
                let cpu_share = demand.max(prev_cpu_ceiling * 0.93);
                let gpu_share = (cfg.budget.value() - cpu_share)
                    .clamp(cfg.gpu.min_limit.value(), cfg.gpu.tdp.value());
                // Whatever the GPU cannot absorb flows back to the CPU.
                let cpu_ceiling = (cfg.budget.value() - gpu_share).max(65.0);
                prev_cpu_ceiling = cpu_ceiling;
                budget.set_ceiling(Watts(cpu_ceiling));
                capper.enforce_ceiling(SocketId(0))?;
                gpu.set_power_limit(Watts(gpu_share));
            }
        }
    }

    Ok(HeteroOutcome {
        policy,
        cpu_time: cpu_done_at.expect("cpu finished"),
        gpu_time: gpu_done_at.expect("gpu finished"),
        avg_gpu_limit: Watts(gpu_limit_sum / gpu_limit_samples.max(1) as f64),
        peak_combined_power: Watts(peak_combined),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_policies_complete_within_budget() {
        for policy in [SharePolicy::Static, SharePolicy::Donate] {
            let out = run_hetero(&HeteroConfig::demo(3), policy).unwrap();
            assert!(out.cpu_time.value() > 10.0);
            assert!(out.gpu_time.value() > 10.0);
            assert!(
                out.peak_combined_power.value() <= 330.0 * 1.06,
                "{policy:?}: peak {:?}",
                out.peak_combined_power
            );
        }
    }

    #[test]
    fn donating_the_cpu_headroom_speeds_up_the_gpu() {
        // The §VII question, answered in the affirmative: DUFP trims CG's
        // package power, the coordinator hands the freed watts to the GPU,
        // and the GPU job finishes sooner at the same combined budget.
        let st = run_hetero(&HeteroConfig::demo(7), SharePolicy::Static).unwrap();
        let dn = run_hetero(&HeteroConfig::demo(7), SharePolicy::Donate).unwrap();
        assert!(
            dn.gpu_time.value() < st.gpu_time.value() * 0.97,
            "GPU: static {:.1}s vs donate {:.1}s",
            st.gpu_time.value(),
            dn.gpu_time.value()
        );
        assert!(
            dn.avg_gpu_limit > st.avg_gpu_limit,
            "the GPU must actually have received more budget"
        );
        // The CPU must not blow its tolerance for it: CG at 10 % on this
        // seed stays close to its static-share time.
        assert!(
            dn.cpu_time.value() <= st.cpu_time.value() * 1.12,
            "CPU: static {:.1}s vs donate {:.1}s",
            st.cpu_time.value(),
            dn.cpu_time.value()
        );
    }
}
