//! Coordinator high-availability tests: a real primary/standby pair over
//! loopback sharing a durable fleet journal, plus crash-equivalence
//! properties for the journal itself.
//!
//! The contract under test (ISSUE acceptance criteria):
//!
//! * killing the primary and binding a standby on the shared journal
//!   promotes it to a **higher term** and restores non-safe-cap grants
//!   within three epochs,
//! * a recovered core is **byte-identical** to the crashed primary's for
//!   *arbitrary* event schedules and checkpoint cadences,
//! * `Σ granted ≤ budget` holds at every epoch **across** the handover,
//!   for arbitrary kill/partition schedules.

use dufp_journal::TestDir;
use dufp_net::chaos::{ChaosConfig, ChaosFleet};
use dufp_net::{
    recover, Agent, AgentConfig, AgentOutcome, Coordinator, CoordinatorConfig, FleetCore,
    FleetJournal, NetFaultPlan,
};
use dufp_telemetry::{Reason, Telemetry};
use dufp_types::Watts;
use proptest::prelude::*;
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const BUDGET: f64 = 300.0;
const SAFE_CAP: f64 = 90.0;

/// Spawns an agent that knows about the standby address up front and is
/// configured with the patient retry ladder the CLI uses for failover:
/// the reconnect loop must outlive the window in which the standby
/// notices the primary died and replays the journal.
fn spawn_failover_agent(
    addr: &str,
    standby: &str,
    name: &str,
    crash: Arc<AtomicBool>,
) -> std::thread::JoinHandle<AgentOutcome> {
    let mut cfg = AgentConfig::new(addr, name, "EP");
    cfg.safe_cap = Watts(SAFE_CAP);
    cfg.pace = Duration::from_millis(5);
    cfg.max_intervals = Some(4000);
    cfg.standbys = vec![standby.to_string()];
    cfg.retry.max_retries = 60;
    cfg.retry.base_backoff = Duration::from_millis(10);
    cfg.retry.max_backoff = Duration::from_millis(60);
    let agent = Agent::new(cfg).expect("valid agent config");
    let agent = agent.with_crash_switch(crash);
    std::thread::spawn(move || agent.run().expect("agent run never errors"))
}

/// Polls `cond` until it holds or `timeout` passes.
fn wait_for(mut cond: impl FnMut() -> bool, timeout: Duration) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    cond()
}

/// A journaled coordinator config on `listen` with a short epoch so the
/// test crosses several allocation rounds quickly.
fn journaled(listen: &str, dir: &TestDir) -> CoordinatorConfig {
    let mut cfg =
        CoordinatorConfig::new(listen, Watts(BUDGET)).with_epoch(Duration::from_millis(100));
    cfg.heartbeat_timeout = Duration::from_millis(150);
    cfg.journal_dir = Some(dir.path().to_path_buf());
    cfg
}

#[test]
fn killed_primary_hands_over_to_a_journal_replaying_standby() {
    let dir = TestDir::new("failover-itest");

    // Reserve an address for the standby so the agents can be told about
    // it before the standby even exists (mirrors static fleet config).
    let standby_addr = {
        let probe = TcpListener::bind("127.0.0.1:0").expect("reserve standby port");
        let addr = probe.local_addr().expect("reserved addr").to_string();
        drop(probe);
        addr
    };

    let mut primary = Coordinator::bind(journaled("127.0.0.1:0", &dir)).expect("bind primary");
    assert_eq!(primary.term(), 1, "a fresh journal starts at term 1");
    let primary_addr = primary.local_addr().expect("primary addr").to_string();

    let switches: Vec<Arc<AtomicBool>> = (0..2).map(|_| Arc::new(AtomicBool::new(false))).collect();
    let handles: Vec<_> = ["n0", "n1"]
        .iter()
        .zip(&switches)
        .map(|(name, crash)| {
            spawn_failover_agent(&primary_addr, &standby_addr, name, Arc::clone(crash))
        })
        .collect();

    assert!(
        wait_for(|| primary.node_count() == 2, Duration::from_secs(10)),
        "both agents should register with the primary, saw {}",
        primary.node_count()
    );

    // Two funded epochs under term 1, journaled as they happen.
    let r1 = primary.epoch_once();
    assert_eq!(r1.live, 2);
    assert!(r1.total_granted <= BUDGET + 1e-6, "term-1 epoch 1: {r1:?}");
    std::thread::sleep(Duration::from_millis(60));
    let r2 = primary.epoch_once();
    assert!(r2.total_granted <= BUDGET + 1e-6, "term-1 epoch 2: {r2:?}");

    // SIGKILL stand-in: the primary dies without a Goodbye or Handover.
    primary.abort();

    // Takeover: a standby binds the reserved address over the same
    // journal. Recovery replays the fleet and bumps the fencing term.
    let mut standby = Coordinator::bind(journaled(&standby_addr, &dir)).expect("bind standby");
    assert_eq!(standby.term(), 2, "takeover must bump the fencing term");
    assert!(
        standby.node_count() >= 2,
        "journal replay must rebuild the crashed primary's fleet, saw {}",
        standby.node_count()
    );

    // Within three epochs of the takeover both agents must hold real
    // grants again (not their local safe cap), and no epoch may
    // overcommit: the handover hold-down keeps replayed-but-unattached
    // slots' watts reserved, so Σ granted ≤ budget holds throughout.
    let mut regranted_at = None;
    for step in 1u64..=6 {
        std::thread::sleep(Duration::from_millis(80));
        let r = standby.epoch_once();
        assert!(
            r.total_granted <= BUDGET + 1e-6,
            "term-2 step {step} overcommitted across the handover: {r:?}"
        );
        let both_funded = ["n0", "n1"]
            .iter()
            .all(|n| r.granted.iter().any(|(g, w)| g == *n && *w > 0.0));
        if both_funded && regranted_at.is_none() {
            regranted_at = Some(step);
        }
    }
    assert!(
        regranted_at.is_some_and(|e| e <= 3),
        "grants not restored within three epochs of takeover: {regranted_at:?}"
    );

    for s in &switches {
        s.store(true, Ordering::Relaxed);
    }
    let outcomes: Vec<AgentOutcome> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    for o in &outcomes {
        assert_eq!(
            o.max_term, 2,
            "{} must have applied a term-2 grant: {o:?}",
            o.node
        );
    }

    let outcome = standby.finish();
    assert!(
        outcome
            .telemetry
            .decisions
            .iter()
            .any(|d| d.reason == Reason::TookOver),
        "the takeover must be visible in the decision trace"
    );
    for epoch in &outcome.epochs {
        assert!(
            epoch.total_granted <= BUDGET + 1e-6,
            "conservation violated at term-2 epoch {}: {epoch:?}",
            epoch.epoch
        );
    }
}

// ---------------------------------------------------------------------
// Crash-equivalence properties (satellite: proptest over arbitrary
// kill-tick / partition / standby schedules).
// ---------------------------------------------------------------------

/// A short chaos soak, matching the adversarial suite's cadence.
fn short(seed: u64) -> ChaosConfig {
    let mut cfg = ChaosConfig::new(seed);
    cfg.epochs = 20;
    cfg
}

/// One core entry-point call in a generated journal schedule.
#[derive(Debug, Clone)]
enum Op {
    Admit(u8),
    Report {
        slot: u8,
        seq: u64,
        ceiling: f64,
        consumption: f64,
        active: bool,
    },
    Heartbeat {
        slot: u8,
        seq: u64,
    },
    Goodbye(u8),
    Epoch,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..6).prop_map(Op::Admit),
        (any::<u8>(), 0u64..100, 10.0f64..200.0, 0.0f64..200.0, any::<bool>()).prop_map(
            |(slot, seq, ceiling, consumption, active)| Op::Report {
                slot,
                seq,
                ceiling,
                consumption,
                active,
            }
        ),
        (any::<u8>(), 0u64..100).prop_map(|(slot, seq)| Op::Heartbeat { slot, seq }),
        any::<u8>().prop_map(Op::Goodbye),
        3 => Just(Op::Epoch),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Crash equivalence: for any schedule of admissions, reports,
    /// heartbeats, goodbyes and epoch ticks — and any checkpoint cadence
    /// — recovering from the journal rebuilds a core byte-identical to
    /// the one that wrote it.
    #[test]
    fn any_journal_schedule_recovers_byte_identical(
        ops in proptest::collection::vec(op_strategy(), 1..60),
        checkpoint_every in 1u64..20,
    ) {
        let dir = TestDir::new("failover-replay-prop");
        let cfg = CoordinatorConfig::new("virtual", Watts(BUDGET));
        let mut core = FleetCore::new(&cfg, Telemetry::enabled());
        core.attach_journal(
            FleetJournal::create(dir.path())
                .expect("create journal")
                .with_checkpoint_every(checkpoint_every),
        );

        let mut now_ms = 1_000u64;
        let mut slots: Vec<usize> = Vec::new();
        for op in &ops {
            now_ms += 50;
            match op {
                Op::Admit(i) => {
                    if let Ok(slot) = core.admit(
                        format!("n{i}"),
                        "EP".into(),
                        Watts(65.0),
                        Watts(125.0),
                        now_ms,
                    ) {
                        slots.push(slot);
                    }
                }
                Op::Report { slot, seq, ceiling, consumption, active } => {
                    if !slots.is_empty() {
                        let s = slots[*slot as usize % slots.len()];
                        core.on_report(
                            s,
                            *seq,
                            Watts(*ceiling),
                            Watts(*consumption),
                            *active,
                            now_ms,
                        );
                    }
                }
                Op::Heartbeat { slot, seq } => {
                    if !slots.is_empty() {
                        let s = slots[*slot as usize % slots.len()];
                        core.on_heartbeat(s, *seq, now_ms);
                    }
                }
                Op::Goodbye(slot) => {
                    if !slots.is_empty() {
                        let s = slots[*slot as usize % slots.len()];
                        core.on_goodbye(s);
                    }
                }
                Op::Epoch => {
                    core.epoch_once(now_ms);
                }
            }
        }

        let live = core.snapshot_bytes().expect("snapshot live core");
        let recovered = recover(dir.path(), &cfg, Telemetry::enabled())
            .expect("recover from journal");
        let replayed = recovered.core.snapshot_bytes().expect("snapshot replayed core");
        prop_assert_eq!(
            live,
            replayed,
            "checkpoint+replay diverged from the live core (cadence {}, {} ops)",
            checkpoint_every,
            ops.len()
        );
    }

    /// Split-brain safety: no kill tick, resurrection window, partition
    /// or delay schedule lets any coordinator incarnation overcommit the
    /// budget, un-fence a stale primary, or promote a diverged replica.
    #[test]
    fn no_kill_or_partition_schedule_breaks_handover_invariants(
        seed in 0u64..10_000,
        kill in (4u64..16, 1u64..999),
        part in (2u64..14, 0u64..8),
        delay in any::<bool>(),
    ) {
        let mut segments = vec![format!("coord-kill,window={}+{}", kill.0, kill.1)];
        if part.1 > 0 {
            segments.push(format!(
                "partition,peer=2-3,dir=both,window={}+{}",
                part.0, part.1
            ));
        }
        if delay {
            segments.push("delay,p=0.2,n=2".to_string());
        }
        let plan_text = segments.join(";");
        let plan = NetFaultPlan::parse(&plan_text).expect("generated plan parses");
        let fleet = ChaosFleet::from_plan(short(seed), "failover-prop", plan, false)
            .expect("valid chaos config");
        let card = fleet.run();
        prop_assert!(
            card.conservation_ok,
            "Σ granted ≤ budget broke across handover under `{}` seed {}: {:?}",
            plan_text, seed, card
        );
        prop_assert!(
            card.fenced_ok,
            "a resurrected stale primary was not fenced under `{}` seed {}: {:?}",
            plan_text, seed, card
        );
        prop_assert!(
            card.replay_matched != Some(false),
            "journal replay diverged from the crashed primary under `{}` seed {}: {:?}",
            plan_text, seed, card
        );
        prop_assert_eq!(
            card.safe_cap_violations,
            0,
            "an agent exceeded a grant under `{}` seed {}: {:?}",
            plan_text, seed, card
        );
    }
}
