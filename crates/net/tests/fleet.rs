//! Loopback fleet integration tests: a real coordinator and real agents
//! over 127.0.0.1, driven deterministically by stepping allocator epochs
//! by hand.
//!
//! The contract under test (ISSUE acceptance criteria):
//!
//! * total granted ≤ budget at **every** epoch,
//! * killing an agent mid-run reclaims and redistributes its watts within
//!   two epochs,
//! * losing the coordinator degrades agents to their safe local cap
//!   without a panic,
//! * garbage on the wire never takes the coordinator down.

use dufp_net::{Agent, AgentConfig, AgentOutcome, Coordinator, CoordinatorConfig, Frame};
use dufp_types::Watts;
use std::io::Write as _;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const BUDGET: f64 = 300.0;
const SAFE_CAP: f64 = 90.0;

fn coordinator(heartbeat_ms: u64) -> Coordinator {
    let mut cfg = CoordinatorConfig::new("127.0.0.1:0", Watts(BUDGET))
        .with_epoch(Duration::from_millis(heartbeat_ms * 2 / 3));
    cfg.heartbeat_timeout = Duration::from_millis(heartbeat_ms);
    Coordinator::bind(cfg).expect("bind loopback coordinator")
}

/// Spawns an agent thread running `app` against `addr`, paced so it stays
/// alive for wall-clock long enough to be observed and killed.
fn spawn_agent(
    addr: &str,
    name: &str,
    app: &str,
    crash: Arc<AtomicBool>,
) -> std::thread::JoinHandle<AgentOutcome> {
    let mut cfg = AgentConfig::new(addr, name, app);
    cfg.safe_cap = Watts(SAFE_CAP);
    cfg.pace = Duration::from_millis(5);
    cfg.max_intervals = Some(2000);
    let agent = Agent::new(cfg).expect("valid agent config");
    let agent = agent.with_crash_switch(crash);
    std::thread::spawn(move || agent.run().expect("agent run never errors"))
}

/// Polls `cond` until it holds or `timeout` passes.
fn wait_for(mut cond: impl FnMut() -> bool, timeout: Duration) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    cond()
}

#[test]
fn killed_agent_watts_are_reclaimed_within_two_epochs() {
    let mut coord = coordinator(150);
    let addr = coord.local_addr().unwrap().to_string();

    let switches: Vec<Arc<AtomicBool>> = (0..3).map(|_| Arc::new(AtomicBool::new(false))).collect();
    let handles: Vec<_> = ["n0", "n1", "n2"]
        .iter()
        .zip(["EP", "CG", "HPL"])
        .zip(&switches)
        .map(|((name, app), crash)| spawn_agent(&addr, name, app, Arc::clone(crash)))
        .collect();

    assert!(
        wait_for(|| coord.node_count() == 3, Duration::from_secs(10)),
        "3 agents should register, saw {}",
        coord.node_count()
    );

    // Two epochs with the full fleet: everyone funded, budget conserved.
    let r1 = coord.epoch_once();
    assert_eq!(r1.live, 3);
    assert!(r1.total_granted <= BUDGET + 1e-6, "epoch 1: {r1:?}");
    for (name, w) in &r1.granted {
        assert!(*w > 0.0, "{name} granted nothing: {r1:?}");
    }
    std::thread::sleep(Duration::from_millis(60));
    let r2 = coord.epoch_once();
    assert_eq!(r2.live, 3);
    assert!(r2.total_granted <= BUDGET + 1e-6, "epoch 2: {r2:?}");
    let victim_grant = r2
        .granted
        .iter()
        .find(|(n, _)| n == "n1")
        .map(|(_, w)| *w)
        .expect("victim funded before the kill");

    // SIGKILL the middle agent: abrupt socket teardown, no Goodbye.
    switches[1].store(true, Ordering::Relaxed);
    std::thread::sleep(Duration::from_millis(250)); // > heartbeat timeout

    // Within two epochs of the kill the watts must be reclaimed.
    let r3 = coord.epoch_once();
    let r4 = coord.epoch_once();
    let reclaimed: Vec<&String> = r3.reclaimed.iter().chain(&r4.reclaimed).collect();
    assert!(
        reclaimed.iter().any(|n| *n == "n1"),
        "victim not reclaimed within two epochs: {r3:?} / {r4:?}"
    );
    assert!(
        r3.reclaimed_watts + r4.reclaimed_watts >= victim_grant - 1e-6,
        "reclaim returned less than the victim held"
    );
    assert_eq!(r4.live, 2, "{r4:?}");
    assert!(r4.total_granted <= BUDGET + 1e-6, "epoch 4: {r4:?}");
    // Redistribution: the survivors are still funded above the policy
    // floor after the reclaim.
    for (name, w) in &r4.granted {
        assert!(*w >= 65.0 - 1e-6, "{name} starved after reclaim: {r4:?}");
    }

    // Let the survivors finish, then check every epoch conserved watts.
    let outcome = coord.finish();
    for epoch in &outcome.epochs {
        assert!(
            epoch.total_granted <= BUDGET + 1e-6,
            "conservation violated at epoch {}: {epoch:?}",
            epoch.epoch
        );
    }
    assert!(outcome
        .nodes
        .iter()
        .any(|n| n.name == "n1" && n.state == dufp_net::NodeState::Dead));

    let outcomes: Vec<AgentOutcome> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let victim = outcomes.iter().find(|o| o.node == "n1").unwrap();
    assert!(victim.crashed, "crash switch must report as a crash");
    for o in outcomes.iter().filter(|o| o.node != "n1") {
        assert!(!o.crashed);
        assert!(o.grants_applied >= 1, "{}: {o:?}", o.node);
        assert!(o.reports_sent >= 1, "{}: {o:?}", o.node);
    }
}

#[test]
fn coordinator_loss_degrades_agents_to_their_safe_cap() {
    let mut coord = coordinator(150);
    let addr = coord.local_addr().unwrap().to_string();
    let crash = Arc::new(AtomicBool::new(false));
    let handle = spawn_agent(&addr, "lonely", "EP", crash);

    assert!(wait_for(
        || coord.node_count() == 1,
        Duration::from_secs(10)
    ));
    coord.epoch_once();
    std::thread::sleep(Duration::from_millis(60));
    coord.epoch_once();

    // The coordinator dies without a Goodbye.
    coord.abort();

    let out = handle.join().expect("agent must not panic");
    assert!(out.degradations >= 1, "{out:?}");
    assert_eq!(
        out.final_ceiling,
        Watts(SAFE_CAP),
        "agent should end at its safe local cap: {out:?}"
    );
    assert!(
        out.telemetry
            .decisions
            .iter()
            .any(|d| d.reason == dufp_telemetry::Reason::CoordinatorLost),
        "loss must be visible in the decision trace"
    );
}

#[test]
fn garbage_on_the_wire_never_kills_the_coordinator() {
    let mut coord = coordinator(300);
    let addr = coord.local_addr().unwrap().to_string();

    // A peer that is not speaking the protocol at all.
    let mut junk = TcpStream::connect(&addr).unwrap();
    junk.write_all(b"GET / HTTP/1.1\r\nHost: fleet\r\n\r\n")
        .unwrap();
    junk.flush().unwrap();
    drop(junk);

    // A peer that opens correctly, then corrupts a frame mid-stream.
    let mut half = TcpStream::connect(&addr).unwrap();
    Frame::Hello {
        node: "evil".into(),
        floor: Watts(65.0),
        node_max: Watts(125.0),
        app: "EP".into(),
        term: 0,
    }
    .write_to(&mut half)
    .unwrap();
    let mut bytes = Frame::Heartbeat { seq: 1, term: 0 }.encode();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xFF; // break the CRC
    half.write_all(&bytes).unwrap();
    half.flush().unwrap();

    // The coordinator is still alive and serving honest agents.
    let crash = Arc::new(AtomicBool::new(false));
    let handle = spawn_agent(&addr, "honest", "EP", Arc::clone(&crash));
    assert!(
        wait_for(|| coord.node_count() >= 2, Duration::from_secs(10)),
        "honest agent must still be admitted"
    );
    let record = coord.epoch_once();
    assert!(record.total_granted <= BUDGET + 1e-6);
    crash.store(true, Ordering::Relaxed);
    let _ = handle.join().unwrap();

    let outcome = coord.finish();
    let wire_errors = outcome
        .telemetry
        .metrics
        .counters
        .iter()
        .find(|c| c.name == "wire_errors_total")
        .map(|c| c.value)
        .unwrap_or(0);
    assert!(wire_errors >= 1, "corrupt frame should be counted");
}
