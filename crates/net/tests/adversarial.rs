//! Adversarial property tests for the fleet plane: for *arbitrary*
//! seeded combinations of byzantine behaviors, kills and partitions, the
//! coordinator's hard invariants must hold —
//!
//! * `Σ granted ≤ budget` at every epoch (conservation),
//! * no live, honest, non-quarantined agent below its floor,
//! * the same seed replays a byte-identical scorecard,
//!
//! — plus targeted regressions: NaN demand at the ingestion boundary,
//! quarantine latency, and the deterministic bounded reconnect backoff
//! agents use when the coordinator vanishes.

use dufp_control::RetryPolicy;
use dufp_net::chaos::{run_matrix, run_scenario, ChaosConfig, ChaosFleet};
use dufp_net::{CoordinatorConfig, FleetCore, NetFaultPlan};
use dufp_telemetry::Telemetry;
use dufp_types::Watts;
use proptest::prelude::*;

/// A short soak (fewer epochs than the CLI default) to keep the property
/// suite fast while still crossing every schedule in the generated plans.
fn short(seed: u64) -> ChaosConfig {
    let mut cfg = ChaosConfig::new(seed);
    cfg.epochs = 20;
    cfg
}

const BYZ_OPS: [&str; 5] = [
    "byz-nan",
    "byz-inflate",
    "byz-negative",
    "byz-overdraw",
    "byz-replay,n=5",
];

/// Builds a plan string from generated adversity: each byzantine index
/// picks an op for one agent, plus optional kill and partition windows.
fn plan_of(byz: &[usize], kill: Option<(u64, u64)>, part: Option<(u64, u64)>) -> String {
    let mut segments: Vec<String> = byz
        .iter()
        .enumerate()
        .map(|(agent, op_idx)| format!("{},peer={agent}", BYZ_OPS[op_idx % BYZ_OPS.len()]))
        .collect();
    if let Some((from, count)) = kill {
        segments.push(format!("kill,peer=3,window={from}+{count}"));
    }
    if let Some((from, count)) = part {
        segments.push(format!("partition,peer=4-5,dir=both,window={from}+{count}"));
    }
    segments.join(";")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The load-bearing property: no byzantine minority, kill schedule or
    /// partition window breaks conservation or starves an honest agent.
    #[test]
    fn no_adversary_breaks_conservation_or_honest_floors(
        seed in 0u64..10_000,
        byz in proptest::collection::vec(0usize..BYZ_OPS.len(), 0..3),
        kill in (2u64..12, 0u64..20),   // count 0 = no kill schedule
        part in (2u64..12, 0u64..8),    // count 0 = no partition
    ) {
        let plan_text = plan_of(
            &byz,
            (kill.1 > 0).then_some(kill),
            (part.1 > 0).then_some(part),
        );
        let plan = NetFaultPlan::parse(&plan_text).expect("generated plan parses");
        let fleet = ChaosFleet::from_plan(short(seed), "prop", plan, false)
            .expect("valid chaos config");
        let card = fleet.run();
        prop_assert!(
            card.conservation_ok,
            "conservation broke under `{plan_text}` seed {seed}: {card:?}"
        );
        prop_assert!(
            card.floor_ok,
            "an honest floor broke under `{plan_text}` seed {seed}: {card:?}"
        );
        prop_assert_eq!(card.safe_cap_violations, 0);
    }

    /// Determinism: one seed, one scorecard — byte-identical through
    /// serde, which is exactly what the CI double-run compares.
    #[test]
    fn the_scorecard_is_a_pure_function_of_the_seed(seed in 0u64..10_000) {
        let a = run_scenario(&short(seed), "byzantine-minority").unwrap();
        let b = run_scenario(&short(seed), "byzantine-minority").unwrap();
        prop_assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }

    /// The deterministic reconnect backoff agents use: bounded within
    /// [backoff/2, backoff], capped, and reproducible per (seed, attempt).
    #[test]
    fn reconnect_backoff_is_bounded_and_deterministic(
        seed in 0u64..1_000_000,
        attempt in 1u32..20,
    ) {
        let policy = RetryPolicy::default();
        let full = policy.backoff(attempt);
        let jittered = policy.backoff_jittered(attempt, seed);
        prop_assert!(jittered <= full, "{jittered:?} > {full:?}");
        prop_assert!(jittered >= full / 2, "{jittered:?} < {:?}", full / 2);
        prop_assert_eq!(jittered, policy.backoff_jittered(attempt, seed));
        // Different attempts under the same seed de-synchronize.
        let other = policy.backoff_jittered(attempt + 1, seed);
        prop_assert!(other <= policy.backoff(attempt + 1));
    }
}

/// The full matrix replays byte-identically — the CI contract, verified
/// here without spawning the CLI.
#[test]
fn the_full_matrix_replays_byte_identically() {
    let a = run_matrix(&short(42)).unwrap();
    let b = run_matrix(&short(42)).unwrap();
    let to_jsonl = |cards: &[dufp_net::ScenarioScore]| {
        cards
            .iter()
            .map(|c| serde_json::to_string(c).unwrap())
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(to_jsonl(&a), to_jsonl(&b));
}

/// Regression (ingestion boundary): NaN and negative demand reach
/// `FleetCore::on_report` and must be vetoed — never propagated into the
/// allocator's observations.
#[test]
fn nan_and_negative_demand_are_vetoed_at_ingestion() {
    let cfg = CoordinatorConfig::new("virtual", Watts(300.0));
    let mut core = FleetCore::new(&cfg, Telemetry::enabled());
    let liar = core
        .admit("liar".into(), "EP".into(), Watts(65.0), Watts(125.0), 100)
        .unwrap();
    let honest = core
        .admit("honest".into(), "EP".into(), Watts(65.0), Watts(125.0), 100)
        .unwrap();
    for (epoch, poison) in [(1u64, f64::NAN), (2, -500.0), (3, f64::INFINITY)] {
        let now = epoch * 1000;
        core.on_report(liar, epoch, Watts(125.0), Watts(poison), true, now - 500);
        core.on_report(honest, epoch, Watts(90.0), Watts(80.0), true, now - 500);
        let step = core.epoch_once(now);
        assert!(
            step.record.total_granted.is_finite(),
            "poison {poison} leaked: {:?}",
            step.record
        );
        assert!(
            step.record.total_granted <= 300.0 + 1e-6,
            "conservation broke on poison {poison}: {:?}",
            step.record
        );
        let honest_grant = step
            .record
            .granted
            .iter()
            .find(|(n, _)| n == "honest")
            .map(|(_, w)| *w)
            .expect("honest node funded");
        assert!(
            honest_grant >= 65.0 - 1e-6,
            "honest starved: {honest_grant}"
        );
    }
}

/// Quarantine latency at the integration level: every byzantine agent in
/// the built-in byzantine scenario is quarantined within two epochs of
/// its first lie, and the honest majority never pays for it.
#[test]
fn byzantine_minority_is_contained_within_two_epochs() {
    let card = run_scenario(&ChaosConfig::new(1234), "byzantine-minority").unwrap();
    assert_eq!(card.byz_total, 3, "{card:?}");
    assert_eq!(card.byz_quarantined, 3, "{card:?}");
    assert!(
        card.max_quarantine_delay.is_some_and(|d| d <= 2),
        "{card:?}"
    );
    assert!(card.conservation_ok && card.floor_ok, "{card:?}");
    assert_eq!(
        card.score, 100.0,
        "containment must not cost score: {card:?}"
    );
}
