//! The versioned, length-prefixed binary wire protocol.
//!
//! Every frame on a fleet connection is:
//!
//! ```text
//! offset  size  field
//!      0     4  magic      0x4455_4650 ("DUFP", big-endian bytes)
//!      4     2  version    protocol version (little-endian), currently 2
//!      6     1  frame type (see [`FrameType`])
//!      7     1  reserved   must be 0
//!      8     4  payload length N (little-endian; at most MAX_PAYLOAD)
//!     12     N  payload    frame-specific fields, little-endian
//!   12+N     4  CRC-32     over bytes [4, 12+N) — everything but the magic
//! ```
//!
//! The CRC is the same IEEE 802.3 polynomial the experiment journal uses
//! ([`dufp_journal::crc32`]), so a frame hexdump is checkable with the same
//! standard tools. Strings are `u16` length-prefixed UTF-8; floats are
//! `f64::to_le_bytes`. Decoding never panics: bad magic, a torn frame, a
//! flipped bit, an unknown frame type or an oversized length each produce a
//! typed [`Error`] the peer can log and survive.

use dufp_journal::crc32;
use dufp_types::{Error, Result, Watts};
use std::io::{Read, Write};

/// Frame magic: the ASCII bytes `DUFP`.
pub const MAGIC: [u8; 4] = *b"DUFP";

/// Protocol version spoken by this build. Version 2 added the coordination
/// term (fencing token) to `Hello`/`BudgetGrant`/`Heartbeat` and the
/// `Handover` frame for planned coordinator succession.
pub const VERSION: u16 = 2;

/// Upper bound on a frame payload; anything larger is corruption (or an
/// attack) and is rejected before allocation.
pub const MAX_PAYLOAD: u32 = 64 * 1024;

/// Fixed header size (magic + version + type + reserved + length).
pub const HEADER_LEN: usize = 12;

/// Frame discriminants as they appear on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameType {
    /// Agent → coordinator: introduce a node.
    Hello = 1,
    /// Agent → coordinator: per-epoch demand observation.
    DemandReport = 2,
    /// Coordinator → agent: a new budget ceiling.
    BudgetGrant = 3,
    /// Agent → coordinator: liveness beacon.
    Heartbeat = 4,
    /// Either direction: clean departure.
    Goodbye = 5,
    /// Coordinator → agent: planned succession — reconnect to the named
    /// successor, which will grant under the announced term.
    Handover = 6,
}

impl FrameType {
    fn from_u8(v: u8) -> Result<Self> {
        match v {
            1 => Ok(FrameType::Hello),
            2 => Ok(FrameType::DemandReport),
            3 => Ok(FrameType::BudgetGrant),
            4 => Ok(FrameType::Heartbeat),
            5 => Ok(FrameType::Goodbye),
            6 => Ok(FrameType::Handover),
            other => Err(Error::Corruption(format!("unknown frame type {other}"))),
        }
    }

    /// The largest payload this frame type can legitimately carry. Only
    /// [`FrameType::Hello`] has variable-length fields (two strings); every
    /// other frame is fixed-size, so a hostile peer cannot pad a heartbeat
    /// out to [`MAX_PAYLOAD`] and make every receiver buffer it.
    pub fn max_payload(self) -> u32 {
        match self {
            // str(node) + floor + node_max + str(app) + term; bounded by
            // the frame-wide ceiling.
            FrameType::Hello => MAX_PAYLOAD,
            // seq(8) + ceiling(8) + consumption(8) + active(1)
            FrameType::DemandReport => 25,
            // epoch(8) + ceiling(8) + kind(1) + term(8)
            FrameType::BudgetGrant => 25,
            // seq(8) + term(8)
            FrameType::Heartbeat => 16,
            FrameType::Goodbye => 0,
            // str(successor) bounded to 1 KiB + term(8); an address, not
            // a document.
            FrameType::Handover => 2 + 1024 + 8,
        }
    }
}

/// Why a coordinator moved a node's ceiling (the wire form of the
/// telemetry reasons).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum GrantKind {
    /// The ceiling rose (or is the node's first allocation).
    Raise = 0,
    /// The ceiling shrank to fund other nodes or fit the budget.
    Shrink = 1,
}

impl GrantKind {
    fn from_u8(v: u8) -> Result<Self> {
        match v {
            0 => Ok(GrantKind::Raise),
            1 => Ok(GrantKind::Shrink),
            other => Err(Error::Corruption(format!("unknown grant kind {other}"))),
        }
    }
}

/// A decoded protocol frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Agent → coordinator introduction.
    Hello {
        /// Human-readable node name (unique per fleet run is advisable,
        /// not enforced).
        node: String,
        /// The node's floor: the allocator never grants below it.
        floor: Watts,
        /// The node's silicon PL1: watts above it are unusable.
        node_max: Watts,
        /// The application (queue) the node is running, for reports.
        app: String,
        /// The highest coordination term the agent has seen (0 on a fresh
        /// start). A coordinator whose own term is lower knows a successor
        /// has taken over and fences itself.
        term: u64,
    },
    /// Agent → coordinator demand observation.
    DemandReport {
        /// The agent's report sequence number.
        seq: u64,
        /// The ceiling the agent currently enforces.
        ceiling: Watts,
        /// Average package power since the previous report.
        consumption: Watts,
        /// Whether the node still has work.
        active: bool,
    },
    /// Coordinator → agent ceiling update.
    BudgetGrant {
        /// The coordinator's allocator epoch.
        epoch: u64,
        /// The new ceiling the agent must enforce.
        ceiling: Watts,
        /// Whether this raises or shrinks the previous ceiling.
        kind: GrantKind,
        /// The granting coordinator's term. Agents apply grants only in
        /// `(term, epoch)` lexicographic order: a stale primary's grants
        /// are discarded once any higher term has been seen.
        term: u64,
    },
    /// Agent → coordinator liveness beacon.
    Heartbeat {
        /// Monotonic beacon sequence number.
        seq: u64,
        /// The highest coordination term the agent has seen.
        term: u64,
    },
    /// Clean departure (either direction).
    Goodbye,
    /// Coordinator → agent: planned succession. The agent should reconnect
    /// to `successor` immediately, skipping the disconnect grace window.
    Handover {
        /// Address (`host:port`) of the coordinator taking over.
        successor: String,
        /// The term the successor will grant under (the departing
        /// coordinator's term + 1); pre-fences the old term.
        term: u64,
    },
}

impl Frame {
    /// The frame's wire discriminant.
    pub fn frame_type(&self) -> FrameType {
        match self {
            Frame::Hello { .. } => FrameType::Hello,
            Frame::DemandReport { .. } => FrameType::DemandReport,
            Frame::BudgetGrant { .. } => FrameType::BudgetGrant,
            Frame::Heartbeat { .. } => FrameType::Heartbeat,
            Frame::Goodbye => FrameType::Goodbye,
            Frame::Handover { .. } => FrameType::Handover,
        }
    }

    /// Encodes the frame into a self-contained byte vector.
    pub fn encode(&self) -> Vec<u8> {
        let payload = self.encode_payload();
        let mut buf = Vec::with_capacity(HEADER_LEN + payload.len() + 4);
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.push(self.frame_type() as u8);
        buf.push(0); // reserved
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(&payload);
        let crc = crc32(&buf[4..]);
        buf.extend_from_slice(&crc.to_le_bytes());
        buf
    }

    fn encode_payload(&self) -> Vec<u8> {
        let mut p = Vec::new();
        match self {
            Frame::Hello {
                node,
                floor,
                node_max,
                app,
                term,
            } => {
                put_str(&mut p, node);
                p.extend_from_slice(&floor.value().to_le_bytes());
                p.extend_from_slice(&node_max.value().to_le_bytes());
                put_str(&mut p, app);
                p.extend_from_slice(&term.to_le_bytes());
            }
            Frame::DemandReport {
                seq,
                ceiling,
                consumption,
                active,
            } => {
                p.extend_from_slice(&seq.to_le_bytes());
                p.extend_from_slice(&ceiling.value().to_le_bytes());
                p.extend_from_slice(&consumption.value().to_le_bytes());
                p.push(u8::from(*active));
            }
            Frame::BudgetGrant {
                epoch,
                ceiling,
                kind,
                term,
            } => {
                p.extend_from_slice(&epoch.to_le_bytes());
                p.extend_from_slice(&ceiling.value().to_le_bytes());
                p.push(*kind as u8);
                p.extend_from_slice(&term.to_le_bytes());
            }
            Frame::Heartbeat { seq, term } => {
                p.extend_from_slice(&seq.to_le_bytes());
                p.extend_from_slice(&term.to_le_bytes());
            }
            Frame::Goodbye => {}
            Frame::Handover { successor, term } => {
                put_str(&mut p, successor);
                p.extend_from_slice(&term.to_le_bytes());
            }
        }
        p
    }

    /// Decodes a frame from a complete byte buffer (header + payload +
    /// CRC). The inverse of [`Frame::encode`].
    pub fn decode(buf: &[u8]) -> Result<Frame> {
        if buf.len() < HEADER_LEN + 4 {
            return Err(Error::Corruption(format!(
                "frame truncated: {} bytes, need at least {}",
                buf.len(),
                HEADER_LEN + 4
            )));
        }
        if buf[0..4] != MAGIC {
            return Err(Error::Corruption("bad frame magic".into()));
        }
        let version = u16::from_le_bytes([buf[4], buf[5]]);
        if version != VERSION {
            return Err(Error::Unsupported(
                "peer speaks a different dufp-net protocol version",
            ));
        }
        let len = u32::from_le_bytes([buf[8], buf[9], buf[10], buf[11]]);
        if len > MAX_PAYLOAD {
            return Err(Error::FrameTooLarge {
                len: u64::from(len),
                max: MAX_PAYLOAD,
            });
        }
        let want = HEADER_LEN + len as usize + 4;
        if buf.len() != want {
            return Err(Error::Corruption(format!(
                "frame truncated: {} bytes, header says {want}",
                buf.len()
            )));
        }
        let crc_at = HEADER_LEN + len as usize;
        let stored = u32::from_le_bytes([
            buf[crc_at],
            buf[crc_at + 1],
            buf[crc_at + 2],
            buf[crc_at + 3],
        ]);
        let computed = crc32(&buf[4..crc_at]);
        if stored != computed {
            return Err(Error::Corruption(format!(
                "frame CRC mismatch: stored {stored:#010x}, computed {computed:#010x}"
            )));
        }
        let ty = FrameType::from_u8(buf[6])?;
        if len > ty.max_payload() {
            return Err(Error::FrameTooLarge {
                len: u64::from(len),
                max: ty.max_payload(),
            });
        }
        let mut r = Cursor::new(&buf[HEADER_LEN..crc_at]);
        let frame = match ty {
            FrameType::Hello => Frame::Hello {
                node: r.str_()?,
                floor: Watts(r.f64_()?),
                node_max: Watts(r.f64_()?),
                app: r.str_()?,
                term: r.u64_()?,
            },
            FrameType::DemandReport => Frame::DemandReport {
                seq: r.u64_()?,
                ceiling: Watts(r.f64_()?),
                consumption: Watts(r.f64_()?),
                active: r.u8_()? != 0,
            },
            FrameType::BudgetGrant => Frame::BudgetGrant {
                epoch: r.u64_()?,
                ceiling: Watts(r.f64_()?),
                kind: GrantKind::from_u8(r.u8_()?)?,
                term: r.u64_()?,
            },
            FrameType::Heartbeat => Frame::Heartbeat {
                seq: r.u64_()?,
                term: r.u64_()?,
            },
            FrameType::Goodbye => Frame::Goodbye,
            FrameType::Handover => Frame::Handover {
                successor: r.str_()?,
                term: r.u64_()?,
            },
        };
        r.finish()?;
        Ok(frame)
    }

    /// Writes the frame to a stream.
    pub fn write_to<W: Write>(&self, w: &mut W) -> Result<()> {
        w.write_all(&self.encode())?;
        Ok(())
    }

    /// Reads one frame from a stream.
    ///
    /// Returns `Ok(None)` on clean EOF at a frame boundary (the peer went
    /// away between frames). A torn frame, bad magic, a version mismatch,
    /// an oversized length or a CRC failure is a typed error; the caller
    /// decides whether to drop the connection.
    pub fn read_from<R: Read>(r: &mut R) -> Result<Option<Frame>> {
        let mut header = [0u8; HEADER_LEN];
        match r.read(&mut header)? {
            0 => return Ok(None),
            n => r.read_exact(&mut header[n..]).map_err(|e| {
                if e.kind() == std::io::ErrorKind::UnexpectedEof {
                    Error::Corruption("frame truncated inside the header".into())
                } else {
                    Error::Io(e)
                }
            })?,
        }
        if header[0..4] != MAGIC {
            return Err(Error::Corruption("bad frame magic".into()));
        }
        let version = u16::from_le_bytes([header[4], header[5]]);
        if version != VERSION {
            return Err(Error::Unsupported(
                "peer speaks a different dufp-net protocol version",
            ));
        }
        let len = u32::from_le_bytes([header[8], header[9], header[10], header[11]]);
        if len > MAX_PAYLOAD {
            return Err(Error::FrameTooLarge {
                len: u64::from(len),
                max: MAX_PAYLOAD,
            });
        }
        // When the type byte is recognisable, enforce its (much tighter)
        // per-type bound *before* allocating the payload buffer; unknown
        // types stay bounded by MAX_PAYLOAD and fail typed in decode.
        if let Ok(ty) = FrameType::from_u8(header[6]) {
            if len > ty.max_payload() {
                return Err(Error::FrameTooLarge {
                    len: u64::from(len),
                    max: ty.max_payload(),
                });
            }
        }
        let mut rest = vec![0u8; len as usize + 4];
        r.read_exact(&mut rest).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                Error::Corruption("frame truncated inside the payload".into())
            } else {
                Error::Io(e)
            }
        })?;
        let mut buf = header.to_vec();
        buf.extend_from_slice(&rest);
        Frame::decode(&buf).map(Some)
    }
}

fn put_str(p: &mut Vec<u8>, s: &str) {
    let bytes = s.as_bytes();
    let len = bytes.len().min(u16::MAX as usize);
    p.extend_from_slice(&(len as u16).to_le_bytes());
    p.extend_from_slice(&bytes[..len]);
}

/// A bounds-checked payload reader; every under-read is a typed error,
/// never a panic.
struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self.at.checked_add(n).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let s = &self.buf[self.at..end];
                self.at = end;
                Ok(s)
            }
            None => Err(Error::Corruption(format!(
                "payload underrun: wanted {n} bytes at offset {} of {}",
                self.at,
                self.buf.len()
            ))),
        }
    }

    fn u8_(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u64_(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn f64_(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64_()?))
    }

    fn str_(&mut self) -> Result<String> {
        let b = self.take(2)?;
        let len = u16::from_le_bytes([b[0], b[1]]) as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| Error::Corruption("payload string is not UTF-8".into()))
    }

    fn finish(&self) -> Result<()> {
        if self.at == self.buf.len() {
            Ok(())
        } else {
            Err(Error::Corruption(format!(
                "{} trailing byte(s) after the payload",
                self.buf.len() - self.at
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Frame> {
        vec![
            Frame::Hello {
                node: "node-3".into(),
                floor: Watts(65.0),
                node_max: Watts(125.0),
                app: "CG+EP".into(),
                term: 2,
            },
            Frame::DemandReport {
                seq: 17,
                ceiling: Watts(105.0),
                consumption: Watts(98.5),
                active: true,
            },
            Frame::BudgetGrant {
                epoch: 4,
                ceiling: Watts(112.5),
                kind: GrantKind::Raise,
                term: 3,
            },
            Frame::Heartbeat { seq: 9001, term: 3 },
            Frame::Goodbye,
            Frame::Handover {
                successor: "127.0.0.1:7102".into(),
                term: 4,
            },
        ]
    }

    #[test]
    fn every_frame_round_trips() {
        for f in samples() {
            let bytes = f.encode();
            assert_eq!(Frame::decode(&bytes).unwrap(), f, "{f:?}");
        }
    }

    #[test]
    fn stream_round_trip_preserves_order() {
        let mut buf = Vec::new();
        for f in samples() {
            f.write_to(&mut buf).unwrap();
        }
        let mut r = std::io::Cursor::new(buf);
        for want in samples() {
            assert_eq!(Frame::read_from(&mut r).unwrap().unwrap(), want);
        }
        assert!(Frame::read_from(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn truncation_anywhere_is_corruption_not_panic() {
        let bytes = samples()[0].encode();
        for cut in 0..bytes.len() {
            let torn = &bytes[..cut];
            let err = Frame::decode(torn).unwrap_err();
            assert!(matches!(err, Error::Corruption(_)), "cut at {cut}: {err:?}");
        }
    }

    #[test]
    fn flipped_bits_fail_the_crc() {
        let bytes = samples()[1].encode();
        // Flip one bit in every payload byte position in turn.
        for i in HEADER_LEN..bytes.len() - 4 {
            let mut bad = bytes.clone();
            bad[i] ^= 0x10;
            let err = Frame::decode(&bad).unwrap_err();
            assert!(matches!(err, Error::Corruption(_)), "byte {i}: {err:?}");
            assert!(err.to_string().contains("CRC"), "byte {i}: {err}");
        }
    }

    #[test]
    fn unknown_frame_type_is_typed() {
        let mut bytes = Frame::Goodbye.encode();
        bytes[6] = 0xEE;
        // Re-seal the CRC so the type check (not the CRC) is what trips.
        let crc_at = bytes.len() - 4;
        let crc = crc32(&bytes[4..crc_at]);
        bytes[crc_at..].copy_from_slice(&crc.to_le_bytes());
        let err = Frame::decode(&bytes).unwrap_err();
        assert!(err.to_string().contains("unknown frame type"), "{err}");
    }

    #[test]
    fn version_mismatch_is_typed() {
        let mut bytes = Frame::Heartbeat { seq: 1, term: 1 }.encode();
        bytes[4..6].copy_from_slice(&99u16.to_le_bytes());
        let err = Frame::decode(&bytes).unwrap_err();
        assert!(matches!(err, Error::Unsupported(_)), "{err:?}");
    }

    #[test]
    fn oversized_length_is_rejected_before_allocation() {
        let mut bytes = Frame::Goodbye.encode();
        bytes[8..12].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        let err = Frame::decode(&bytes).unwrap_err();
        assert!(matches!(err, Error::FrameTooLarge { .. }), "{err:?}");

        // And through the streaming reader, too.
        let mut r = std::io::Cursor::new(bytes);
        let err = Frame::read_from(&mut r).unwrap_err();
        assert!(matches!(err, Error::FrameTooLarge { .. }), "{err:?}");
    }

    #[test]
    fn fixed_size_frames_enforce_their_own_payload_bound() {
        // A heartbeat claiming a 4 KiB payload is under MAX_PAYLOAD but
        // eight hundred times its real size: the per-type bound refuses it
        // in the streaming reader before the payload buffer is allocated.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.push(FrameType::Heartbeat as u8);
        bytes.push(0);
        bytes.extend_from_slice(&4096u32.to_le_bytes());
        let mut r = std::io::Cursor::new(bytes.clone());
        let err = Frame::read_from(&mut r).unwrap_err();
        assert!(
            matches!(err, Error::FrameTooLarge { len: 4096, max: 16 }),
            "{err:?}"
        );

        // decode sees the same refusal on a complete, CRC-sealed buffer.
        bytes.extend_from_slice(&[0u8; 4096]);
        let crc = crc32(&bytes[4..]);
        bytes.extend_from_slice(&crc.to_le_bytes());
        let err = Frame::decode(&bytes).unwrap_err();
        assert!(matches!(err, Error::FrameTooLarge { .. }), "{err:?}");
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = Frame::Goodbye.encode();
        bytes[0] = b'X';
        assert!(Frame::decode(&bytes).is_err());
        let mut r = std::io::Cursor::new(bytes);
        assert!(Frame::read_from(&mut r).is_err());
    }

    #[test]
    fn trailing_payload_bytes_are_rejected() {
        // A Hello (the one variable-size frame) with one spare payload byte
        // appended, length and CRC re-sealed so only finish() can object.
        let good = samples()[0].encode();
        let payload_len = good.len() - HEADER_LEN - 4;
        let mut bytes = good[..good.len() - 4].to_vec();
        bytes.push(0);
        bytes[8..12].copy_from_slice(&((payload_len + 1) as u32).to_le_bytes());
        let crc = crc32(&bytes[4..]);
        bytes.extend_from_slice(&crc.to_le_bytes());
        let err = Frame::decode(&bytes).unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");
    }
}
