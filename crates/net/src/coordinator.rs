//! The fleet coordinator: owns the global power budget and runs an
//! [`AllocatorPolicy`] over live per-node demand reports.
//!
//! One thread accepts connections; one handler thread per agent reads its
//! frames (Hello, then DemandReport/Heartbeat/Goodbye) into a shared
//! registry. The allocator epoch — [`Coordinator::epoch_once`] — runs on
//! the caller's thread: it declares nodes dead when their last report or
//! heartbeat is older than the heartbeat timeout, reclaims their watts,
//! runs the policy over the survivors' observations, and pushes
//! `BudgetGrant` frames. [`Coordinator::run`] wraps that in a wall-clock
//! loop; tests and benchmarks call `epoch_once` directly for deterministic
//! stepping.
//!
//! A malformed frame (bad magic, flipped CRC, unknown type, version
//! mismatch) never panics the coordinator: the offending connection is
//! dropped, a `wire_errors_total` counter ticks, and the node — if it ever
//! completed a Hello — dies by heartbeat timeout like any other.

use crate::config::{CoordinatorConfig, PolicyKind};
use crate::wire::{Frame, GrantKind};
use dufp_cluster::allocator::{AllocatorPolicy, DemandBased, NodeObservation, StaticSplit};
use dufp_telemetry::{Actuator, DecisionEvent, Reason, Telemetry, TelemetryReport};
use dufp_types::{shutdown, Result, Watts};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::io::Write as _;
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Where a node is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeState {
    /// Connected and reporting.
    Live,
    /// Sent Goodbye; its watts were (or will be) reclaimed.
    Departed,
    /// Missed heartbeats past the timeout; watts reclaimed.
    Dead,
}

struct NodeSlot {
    name: String,
    app: String,
    floor: Watts,
    node_max: Watts,
    stream: TcpStream,
    state: NodeState,
    last_seen: Instant,
    /// Latest demand report: (ceiling the agent enforces, consumption,
    /// still has work).
    report: Option<(Watts, Watts, bool)>,
    /// Last ceiling granted by the allocator (ZERO before the first
    /// grant — the agent self-enforces its safe cap until then).
    granted: Watts,
    /// Whether the reclaim for a Departed/Dead node already ran.
    reclaimed: bool,
}

/// Registry shared between the connection handlers and the epoch loop.
struct Fleet {
    nodes: Mutex<Vec<NodeSlot>>,
    tel: Telemetry,
}

/// One allocator epoch, as recorded in the outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EpochRecord {
    /// Epoch number (1-based).
    pub epoch: u64,
    /// Milliseconds since the coordinator started serving.
    pub at_ms: u64,
    /// Ceilings granted this epoch, one per live node: `(name, watts)`.
    pub granted: Vec<(String, f64)>,
    /// Sum of all live grants (must never exceed the budget).
    pub total_granted: f64,
    /// Live nodes at the end of the epoch.
    pub live: usize,
    /// Nodes declared dead or departed *this* epoch.
    pub reclaimed: Vec<String>,
    /// Watts returned to the pool by this epoch's reclaims.
    pub reclaimed_watts: f64,
}

/// Per-node summary in the outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NodeSummary {
    /// Node name from its Hello.
    pub name: String,
    /// Application queue it announced.
    pub app: String,
    /// Final lifecycle state.
    pub state: NodeState,
    /// Last granted ceiling.
    pub final_ceiling: f64,
}

/// What a coordinator run produced.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetOutcome {
    /// Allocation policy used.
    pub policy: String,
    /// Global budget served.
    pub budget: f64,
    /// Every allocator epoch, in order.
    pub epochs: Vec<EpochRecord>,
    /// Every node that ever completed a Hello.
    pub nodes: Vec<NodeSummary>,
    /// Decision trace + metrics (grant/shrink/reclaim events).
    pub telemetry: TelemetryReport,
}

/// The fleet coordinator. See the module docs for the thread layout.
pub struct Coordinator {
    cfg: CoordinatorConfig,
    listener: TcpListener,
    fleet: Arc<Fleet>,
    policy: Box<dyn AllocatorPolicy>,
    epoch: u64,
    started: Instant,
    epochs: Vec<EpochRecord>,
    stop_accept: Arc<AtomicBool>,
    accept_handle: Option<std::thread::JoinHandle<()>>,
    handler_handles: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

impl Coordinator {
    /// Validates `cfg`, binds the listen address and starts accepting
    /// agents. The allocator does not run until [`Coordinator::run`] or
    /// [`Coordinator::epoch_once`].
    pub fn bind(cfg: CoordinatorConfig) -> Result<Self> {
        cfg.validate()?;
        let policy: Box<dyn AllocatorPolicy> = match cfg.policy {
            PolicyKind::StaticSplit => Box::new(StaticSplit),
            PolicyKind::DemandBased => Box::new(DemandBased {
                floor: cfg.floor,
                node_max: cfg.node_max,
                ..DemandBased::default()
            }),
        };
        let listener = TcpListener::bind(&cfg.listen)?;
        listener.set_nonblocking(true)?;
        let fleet = Arc::new(Fleet {
            nodes: Mutex::new(Vec::new()),
            tel: Telemetry::enabled(),
        });
        let stop_accept = Arc::new(AtomicBool::new(false));
        let handler_handles = Arc::new(Mutex::new(Vec::new()));
        let accept_handle = {
            let listener = listener.try_clone()?;
            let fleet = Arc::clone(&fleet);
            let stop = Arc::clone(&stop_accept);
            let handlers = Arc::clone(&handler_handles);
            std::thread::spawn(move || accept_loop(listener, fleet, stop, handlers))
        };
        Ok(Coordinator {
            cfg,
            listener,
            fleet,
            policy,
            epoch: 0,
            started: Instant::now(),
            epochs: Vec::new(),
            stop_accept,
            accept_handle: Some(accept_handle),
            handler_handles,
        })
    }

    /// The bound listen address (resolves `:0` to the picked port).
    pub fn local_addr(&self) -> Result<std::net::SocketAddr> {
        Ok(self.listener.local_addr()?)
    }

    /// Nodes currently registered (any state).
    pub fn node_count(&self) -> usize {
        self.fleet.nodes.lock().len()
    }

    /// One allocator epoch: detect dead nodes, reclaim their watts, run
    /// the policy over the survivors, push grants. Deterministic given the
    /// registry state — tests step it directly.
    pub fn epoch_once(&mut self) -> EpochRecord {
        self.epoch += 1;
        let now = Instant::now();
        let mut nodes = self.fleet.nodes.lock();

        // Failure detection + reclaim.
        let mut reclaimed = Vec::new();
        let mut reclaimed_watts = 0.0;
        for (i, n) in nodes.iter_mut().enumerate() {
            if n.state == NodeState::Live
                && now.duration_since(n.last_seen) > self.cfg.heartbeat_timeout
            {
                n.state = NodeState::Dead;
                let _ = n.stream.shutdown(Shutdown::Both);
            }
            if n.state != NodeState::Live && !n.reclaimed {
                n.reclaimed = true;
                reclaimed.push(n.name.clone());
                reclaimed_watts += n.granted.value();
                self.fleet.tel.counter("budget_reclaims_total").inc();
                self.record(i, n.granted.value(), 0.0, Reason::BudgetReclaim);
                n.granted = Watts::ZERO;
            }
        }

        // Observations for every live node. A node that has not reported
        // yet is treated as an idle consumer at its floor, so it is funded
        // (and counted against the budget) from its first epoch.
        let live: Vec<usize> = nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.state == NodeState::Live)
            .map(|(i, _)| i)
            .collect();
        let observations: Vec<NodeObservation> = live
            .iter()
            .map(|&i| {
                let n = &nodes[i];
                match n.report {
                    Some((ceiling, consumption, active)) => NodeObservation {
                        ceiling,
                        consumption,
                        active,
                    },
                    None => NodeObservation {
                        ceiling: n.granted.max(n.floor),
                        consumption: Watts::ZERO,
                        active: true,
                    },
                }
            })
            .collect();

        let mut ceilings = self.policy.allocate(self.cfg.budget, &observations);
        // Conservation guard: an overloaded fleet (floors exceeding the
        // budget) would otherwise be granted more than the budget. Scale
        // down proportionally rather than break the global invariant.
        let total: f64 = ceilings.iter().map(|w| w.value()).sum();
        if total > self.cfg.budget.value() {
            let scale = self.cfg.budget.value() / total;
            for w in &mut ceilings {
                *w = *w * scale;
            }
        }

        // Push grants; a failed send is left to heartbeat timeout.
        let mut granted = Vec::with_capacity(live.len());
        let mut total_granted = 0.0;
        for (&i, ceiling) in live.iter().zip(ceilings) {
            let n = &mut nodes[i];
            // Watts above the node's announced silicon limit are unusable
            // there; keep them in the pool instead of granting them.
            let ceiling = ceiling.min(n.node_max);
            let old = n.granted;
            let kind = if ceiling >= old {
                GrantKind::Raise
            } else {
                GrantKind::Shrink
            };
            if (ceiling - old).abs() > Watts(1e-9) {
                let frame = Frame::BudgetGrant {
                    epoch: self.epoch,
                    ceiling,
                    kind,
                };
                let sent = frame
                    .write_to(&mut n.stream)
                    .and_then(|()| Ok(n.stream.flush()?));
                match sent {
                    Ok(()) => self.fleet.tel.counter("grants_sent_total").inc(),
                    Err(_) => self.fleet.tel.counter("grant_send_failures_total").inc(),
                }
                let reason = match kind {
                    GrantKind::Raise => Reason::BudgetGrant,
                    GrantKind::Shrink => Reason::BudgetShrink,
                };
                self.record(i, old.value(), ceiling.value(), reason);
                n.granted = ceiling;
            }
            granted.push((n.name.clone(), n.granted.value()));
            total_granted += n.granted.value();
        }
        let live_count = live.len();
        drop(nodes);

        let record = EpochRecord {
            epoch: self.epoch,
            at_ms: now.duration_since(self.started).as_millis() as u64,
            granted,
            total_granted,
            live: live_count,
            reclaimed,
            reclaimed_watts,
        };
        self.epochs.push(record.clone());
        record
    }

    fn record(&self, node: usize, old: f64, new: f64, reason: Reason) {
        self.fleet.tel.record_decision(DecisionEvent {
            tick: self.epoch,
            at_us: self.started.elapsed().as_micros() as u64,
            socket: node as u16,
            phase: 0,
            oi_class: None,
            flops_ratio: None,
            actuator: Actuator::Budget,
            old,
            new,
            reason,
        });
    }

    /// Whether every node that ever joined has departed or died.
    fn drained(&self) -> bool {
        let nodes = self.fleet.nodes.lock();
        !nodes.is_empty() && nodes.iter().all(|n| n.state != NodeState::Live)
    }

    /// Runs allocator epochs on the calling thread until `max_epochs` is
    /// reached, the fleet drains (every agent that ever joined has left),
    /// or process shutdown is requested; then closes the fleet down and
    /// reports the outcome.
    pub fn run(mut self) -> Result<FleetOutcome> {
        loop {
            // Sleep one epoch in small slices so Ctrl-C stays responsive.
            let deadline = Instant::now() + self.cfg.epoch;
            while Instant::now() < deadline {
                if shutdown::requested() {
                    break;
                }
                std::thread::sleep(Duration::from_millis(5).min(self.cfg.epoch));
            }
            if shutdown::requested() {
                break;
            }
            self.epoch_once();
            if let Some(max) = self.cfg.max_epochs {
                if self.epoch >= max {
                    break;
                }
            }
            if self.drained() {
                break;
            }
        }
        Ok(self.finish())
    }

    /// Stops accepting, says Goodbye to live agents, joins the handler
    /// threads and produces the outcome. `epoch_once` steppers call this
    /// directly.
    pub fn finish(self) -> FleetOutcome {
        self.teardown(true)
    }

    /// Stops like a crash: connections are torn down with no Goodbye, so
    /// agents experience coordinator *loss* (and must degrade to their
    /// safe local caps) rather than a graceful detach. Test-facing.
    pub fn abort(self) -> FleetOutcome {
        self.teardown(false)
    }

    fn teardown(mut self, graceful: bool) -> FleetOutcome {
        self.stop_accept.store(true, Ordering::Relaxed);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        {
            let mut nodes = self.fleet.nodes.lock();
            for n in nodes.iter_mut() {
                if graceful && n.state == NodeState::Live {
                    let _ = Frame::Goodbye.write_to(&mut n.stream);
                    let _ = n.stream.flush();
                }
                let _ = n.stream.shutdown(Shutdown::Both);
            }
        }
        let handles: Vec<_> = std::mem::take(&mut *self.handler_handles.lock());
        for h in handles {
            let _ = h.join();
        }
        let nodes = self.fleet.nodes.lock();
        FleetOutcome {
            policy: self.policy.name().to_string(),
            budget: self.cfg.budget.value(),
            epochs: self.epochs.clone(),
            nodes: nodes
                .iter()
                .map(|n| NodeSummary {
                    name: n.name.clone(),
                    app: n.app.clone(),
                    state: n.state,
                    final_ceiling: n.granted.value(),
                })
                .collect(),
            telemetry: self.fleet.tel.report(),
        }
    }
}

/// Accepts agents until told to stop; nonblocking so the stop flag is
/// honored promptly.
fn accept_loop(
    listener: TcpListener,
    fleet: Arc<Fleet>,
    stop: Arc<AtomicBool>,
    handlers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _addr)) => {
                let fleet = Arc::clone(&fleet);
                let h = std::thread::spawn(move || handle_connection(stream, fleet));
                handlers.lock().push(h);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// Reads one agent's frames into the registry. Never panics: protocol
/// errors drop the connection and tick `wire_errors_total`.
fn handle_connection(stream: TcpStream, fleet: Arc<Fleet>) {
    if stream.set_nodelay(true).is_err() {
        return;
    }
    let mut reader = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    // First frame must be a Hello.
    let slot = match Frame::read_from(&mut reader) {
        Ok(Some(Frame::Hello {
            node,
            floor,
            node_max,
            app,
        })) => {
            // Admission validation: the same typed checks the configs use.
            if !floor.value().is_finite()
                || floor.value() <= 0.0
                || !node_max.value().is_finite()
                || floor > node_max
            {
                fleet.tel.counter("admission_rejects_total").inc();
                let _ = stream.shutdown(Shutdown::Both);
                return;
            }
            let mut nodes = fleet.nodes.lock();
            nodes.push(NodeSlot {
                name: node,
                app,
                floor,
                node_max,
                stream,
                state: NodeState::Live,
                last_seen: Instant::now(),
                report: None,
                granted: Watts::ZERO,
                reclaimed: false,
            });
            nodes.len() - 1
        }
        Ok(_) | Err(_) => {
            fleet.tel.counter("wire_errors_total").inc();
            let _ = stream.shutdown(Shutdown::Both);
            return;
        }
    };
    loop {
        match Frame::read_from(&mut reader) {
            Ok(Some(Frame::DemandReport {
                ceiling,
                consumption,
                active,
                ..
            })) => {
                let mut nodes = fleet.nodes.lock();
                let n = &mut nodes[slot];
                n.last_seen = Instant::now();
                n.report = Some((ceiling, consumption, active));
                fleet.tel.counter("reports_total").inc();
            }
            Ok(Some(Frame::Heartbeat { .. })) => {
                fleet.nodes.lock()[slot].last_seen = Instant::now();
                fleet.tel.counter("heartbeats_total").inc();
            }
            Ok(Some(Frame::Goodbye)) => {
                let mut nodes = fleet.nodes.lock();
                let n = &mut nodes[slot];
                if n.state == NodeState::Live {
                    n.state = NodeState::Departed;
                }
                break;
            }
            Ok(Some(Frame::Hello { .. })) | Ok(Some(Frame::BudgetGrant { .. })) => {
                // Out-of-order or wrong-direction frame: protocol abuse.
                fleet.tel.counter("wire_errors_total").inc();
                break;
            }
            Ok(None) => break, // clean EOF; death by heartbeat timeout
            Err(_) => {
                fleet.tel.counter("wire_errors_total").inc();
                break;
            }
        }
    }
    let _ = fleet.nodes.lock()[slot].stream.shutdown(Shutdown::Both);
}
