//! The TCP fleet coordinator: sockets, threads and wall-clock epochs
//! around the transport-independent [`FleetCore`] brain.
//!
//! One thread accepts connections; one handler thread per agent reads its
//! frames (Hello, then DemandReport/Heartbeat/Goodbye) into the core's
//! registry, where every frame passes demand vetting (see [`crate::vet`]).
//! The allocator epoch — [`Coordinator::epoch_once`] — runs on the
//! caller's thread: the core declares nodes dead when their last report or
//! heartbeat is older than the heartbeat timeout, reclaims their watts,
//! walks the quarantine ladder, runs the policy over trusted survivors,
//! and this layer pushes the resulting `BudgetGrant` frames onto the
//! sockets. [`Coordinator::run`] wraps that in a wall-clock loop; tests
//! and benchmarks call `epoch_once` directly for deterministic stepping.
//!
//! A malformed frame (bad magic, flipped CRC, unknown type, version
//! mismatch, oversized payload) never panics the coordinator: the
//! offending connection is dropped, a `wire_errors_total` counter ticks,
//! and the node — if it ever completed a Hello — dies by heartbeat
//! timeout like any other.

use crate::config::CoordinatorConfig;
use crate::core::FleetCore;
pub use crate::core::{EpochRecord, NodeState};
use crate::wire::Frame;
use dufp_telemetry::{Telemetry, TelemetryReport};
use dufp_types::{shutdown, Result};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::io::Write as _;
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Per-node summary in the outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NodeSummary {
    /// Node name from its Hello.
    pub name: String,
    /// Application queue it announced.
    pub app: String,
    /// Final lifecycle state.
    pub state: NodeState,
    /// Last granted ceiling.
    pub final_ceiling: f64,
    /// Final trust-ladder rung (`trusted`/`suspect`/`quarantined`/
    /// `evicted`).
    #[serde(default)]
    pub trust: String,
}

/// What a coordinator run produced.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetOutcome {
    /// Allocation policy used.
    pub policy: String,
    /// Global budget served.
    pub budget: f64,
    /// Every allocator epoch, in order.
    pub epochs: Vec<EpochRecord>,
    /// Every node that ever completed a Hello.
    pub nodes: Vec<NodeSummary>,
    /// Decision trace + metrics (grant/shrink/reclaim/vetting events).
    pub telemetry: TelemetryReport,
}

/// Brain plus the per-slot write halves, behind one lock.
struct CoordState {
    core: FleetCore,
    /// Write halves, parallel to the core's slots (`None` once torn down).
    streams: Vec<Option<TcpStream>>,
}

/// Registry shared between the connection handlers and the epoch loop.
struct Shared {
    state: Mutex<CoordState>,
    tel: Telemetry,
    started: Instant,
}

impl Shared {
    fn now_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }
}

/// The fleet coordinator. See the module docs for the thread layout.
pub struct Coordinator {
    cfg: CoordinatorConfig,
    listener: TcpListener,
    shared: Arc<Shared>,
    epoch: u64,
    epochs: Vec<EpochRecord>,
    stop_accept: Arc<AtomicBool>,
    accept_handle: Option<std::thread::JoinHandle<()>>,
    handler_handles: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

impl Coordinator {
    /// Validates `cfg`, binds the listen address and starts accepting
    /// agents. The allocator does not run until [`Coordinator::run`] or
    /// [`Coordinator::epoch_once`].
    pub fn bind(cfg: CoordinatorConfig) -> Result<Self> {
        cfg.validate()?;
        let listener = TcpListener::bind(&cfg.listen)?;
        listener.set_nonblocking(true)?;
        let tel = Telemetry::enabled();
        let shared = Arc::new(Shared {
            state: Mutex::new(CoordState {
                core: FleetCore::new(&cfg, tel.clone()),
                streams: Vec::new(),
            }),
            tel,
            started: Instant::now(),
        });
        let stop_accept = Arc::new(AtomicBool::new(false));
        let handler_handles = Arc::new(Mutex::new(Vec::new()));
        let accept_handle = {
            let listener = listener.try_clone()?;
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&stop_accept);
            let handlers = Arc::clone(&handler_handles);
            std::thread::spawn(move || accept_loop(listener, shared, stop, handlers))
        };
        Ok(Coordinator {
            cfg,
            listener,
            shared,
            epoch: 0,
            epochs: Vec::new(),
            stop_accept,
            accept_handle: Some(accept_handle),
            handler_handles,
        })
    }

    /// The bound listen address (resolves `:0` to the picked port).
    pub fn local_addr(&self) -> Result<std::net::SocketAddr> {
        Ok(self.listener.local_addr()?)
    }

    /// Nodes currently registered (any state).
    pub fn node_count(&self) -> usize {
        self.shared.state.lock().core.node_count()
    }

    /// One allocator epoch: the core detects dead nodes, reclaims their
    /// watts, walks the trust ladder and allocates; this layer pushes the
    /// grant frames and tears down disconnected sockets. Deterministic
    /// given the registry state — tests step it directly.
    pub fn epoch_once(&mut self) -> EpochRecord {
        let now_ms = self.shared.now_ms();
        let mut st = self.shared.state.lock();
        let step = st.core.epoch_once(now_ms);
        self.epoch = step.record.epoch;
        // Push grants; a failed send is left to heartbeat timeout.
        for (slot, frame) in &step.grants {
            if let Some(stream) = st.streams.get_mut(*slot).and_then(Option::as_mut) {
                let sent = frame.write_to(stream).and_then(|()| Ok(stream.flush()?));
                match sent {
                    Ok(()) => self.shared.tel.counter("grants_sent_total").inc(),
                    Err(_) => self.shared.tel.counter("grant_send_failures_total").inc(),
                }
            }
        }
        for &slot in &step.disconnects {
            if let Some(stream) = st.streams.get_mut(slot).and_then(Option::take) {
                let _ = stream.shutdown(Shutdown::Both);
            }
        }
        drop(st);
        self.epochs.push(step.record.clone());
        step.record
    }

    /// Whether every node that ever joined has departed or died.
    fn drained(&self) -> bool {
        self.shared.state.lock().core.drained()
    }

    /// Runs allocator epochs on the calling thread until `max_epochs` is
    /// reached, the fleet drains (every agent that ever joined has left),
    /// or process shutdown is requested; then closes the fleet down and
    /// reports the outcome.
    pub fn run(mut self) -> Result<FleetOutcome> {
        loop {
            // Sleep one epoch in small slices so Ctrl-C stays responsive.
            let deadline = Instant::now() + self.cfg.epoch;
            while Instant::now() < deadline {
                if shutdown::requested() {
                    break;
                }
                std::thread::sleep(Duration::from_millis(5).min(self.cfg.epoch));
            }
            if shutdown::requested() {
                break;
            }
            self.epoch_once();
            if let Some(max) = self.cfg.max_epochs {
                if self.epoch >= max {
                    break;
                }
            }
            if self.drained() {
                break;
            }
        }
        Ok(self.finish())
    }

    /// Stops accepting, says Goodbye to live agents, joins the handler
    /// threads and produces the outcome. `epoch_once` steppers call this
    /// directly.
    pub fn finish(self) -> FleetOutcome {
        self.teardown(true)
    }

    /// Stops like a crash: connections are torn down with no Goodbye, so
    /// agents experience coordinator *loss* (and must degrade to their
    /// safe local caps) rather than a graceful detach. Test-facing.
    pub fn abort(self) -> FleetOutcome {
        self.teardown(false)
    }

    fn teardown(mut self, graceful: bool) -> FleetOutcome {
        self.stop_accept.store(true, Ordering::Relaxed);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        {
            let mut st = self.shared.state.lock();
            let views = st.core.views();
            for (view, stream) in views.iter().zip(st.streams.iter_mut()) {
                if let Some(s) = stream.as_mut() {
                    if graceful && view.state == NodeState::Live {
                        let _ = Frame::Goodbye.write_to(s);
                        let _ = s.flush();
                    }
                }
                if let Some(s) = stream.take() {
                    let _ = s.shutdown(Shutdown::Both);
                }
            }
        }
        let handles: Vec<_> = std::mem::take(&mut *self.handler_handles.lock());
        for h in handles {
            let _ = h.join();
        }
        let st = self.shared.state.lock();
        FleetOutcome {
            policy: st.core.policy_name().to_string(),
            budget: self.cfg.budget.value(),
            epochs: self.epochs.clone(),
            nodes: st
                .core
                .views()
                .into_iter()
                .map(|v| NodeSummary {
                    name: v.name,
                    app: v.app,
                    state: v.state,
                    final_ceiling: v.granted.value(),
                    trust: v.trust.label().to_string(),
                })
                .collect(),
            telemetry: self.shared.tel.report(),
        }
    }
}

/// Accepts agents until told to stop; nonblocking so the stop flag is
/// honored promptly.
fn accept_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    stop: Arc<AtomicBool>,
    handlers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _addr)) => {
                let shared = Arc::clone(&shared);
                let h = std::thread::spawn(move || handle_connection(stream, shared));
                handlers.lock().push(h);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// Reads one agent's frames into the core's registry. Never panics:
/// protocol errors drop the connection and tick `wire_errors_total`;
/// implausible Hellos and vetted frames are the core's business.
fn handle_connection(stream: TcpStream, shared: Arc<Shared>) {
    if stream.set_nodelay(true).is_err() {
        return;
    }
    let mut reader = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    // First frame must be a Hello that survives admission.
    let slot = match Frame::read_from(&mut reader) {
        Ok(Some(Frame::Hello {
            node,
            floor,
            node_max,
            app,
        })) => {
            let now_ms = shared.now_ms();
            let mut st = shared.state.lock();
            match st.core.admit(node, app, floor, node_max, now_ms) {
                Ok(slot) => {
                    st.streams.push(Some(stream));
                    debug_assert_eq!(st.streams.len(), st.core.node_count());
                    slot
                }
                Err(_) => {
                    // admit() already ticked admission_rejects_total.
                    drop(st);
                    let _ = reader.shutdown(Shutdown::Both);
                    return;
                }
            }
        }
        Ok(_) | Err(_) => {
            shared.tel.counter("wire_errors_total").inc();
            let _ = stream.shutdown(Shutdown::Both);
            return;
        }
    };
    loop {
        match Frame::read_from(&mut reader) {
            Ok(Some(Frame::DemandReport {
                seq,
                ceiling,
                consumption,
                active,
            })) => {
                let now_ms = shared.now_ms();
                let mut st = shared.state.lock();
                st.core
                    .on_report(slot, seq, ceiling, consumption, active, now_ms);
            }
            Ok(Some(Frame::Heartbeat { seq })) => {
                let now_ms = shared.now_ms();
                let mut st = shared.state.lock();
                st.core.on_heartbeat(slot, seq, now_ms);
            }
            Ok(Some(Frame::Goodbye)) => {
                shared.state.lock().core.on_goodbye(slot);
                break;
            }
            Ok(Some(Frame::Hello { .. })) | Ok(Some(Frame::BudgetGrant { .. })) => {
                // Out-of-order or wrong-direction frame: protocol abuse.
                shared.tel.counter("wire_errors_total").inc();
                break;
            }
            Ok(None) => break, // clean EOF; death by heartbeat timeout
            Err(_) => {
                shared.tel.counter("wire_errors_total").inc();
                break;
            }
        }
    }
    let _ = reader.shutdown(Shutdown::Both);
}
