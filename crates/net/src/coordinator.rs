//! The TCP fleet coordinator: sockets, threads and wall-clock epochs
//! around the transport-independent [`FleetCore`] brain.
//!
//! One thread accepts connections; one handler thread per agent reads its
//! frames (Hello, then DemandReport/Heartbeat/Goodbye) into the core's
//! registry, where every frame passes demand vetting (see [`crate::vet`]).
//! The allocator epoch — [`Coordinator::epoch_once`] — runs on the
//! caller's thread: the core declares nodes dead when their last report or
//! heartbeat is older than the heartbeat timeout, reclaims their watts,
//! walks the quarantine ladder, runs the policy over trusted survivors,
//! and this layer pushes the resulting `BudgetGrant` frames onto the
//! sockets. [`Coordinator::run`] wraps that in a wall-clock loop; tests
//! and benchmarks call `epoch_once` directly for deterministic stepping.
//!
//! A malformed frame (bad magic, flipped CRC, unknown type, version
//! mismatch, oversized payload) never panics the coordinator: the
//! offending connection is dropped, a `wire_errors_total` counter ticks,
//! and the node — if it ever completed a Hello — dies by heartbeat
//! timeout like any other.
//!
//! # High availability (DESIGN.md §15)
//!
//! With [`CoordinatorConfig::journal_dir`] set, every core input event is
//! journaled before it is applied, and [`Coordinator::bind`] on a
//! directory with history *recovers*: checkpoint+replay rebuilds the
//! fleet byte-identically, the coordination term is bumped past the dead
//! incarnation's, and stale slots stay pinned (their watts reserved)
//! through the hold-down window. [`run_standby`] wraps that in a
//! warm-standby loop — probe the primary, promote on sustained silence.
//! A finishing coordinator with a configured successor says
//! [`Frame::Handover`] instead of Goodbye, so agents re-home immediately
//! instead of waiting out the disconnect grace.

use crate::config::CoordinatorConfig;
use crate::core::FleetCore;
pub use crate::core::{EpochRecord, NodeState};
use crate::fleet_journal::{journal_present, recover, FleetJournal};
use crate::wire::Frame;
use dufp_telemetry::{Actuator, DecisionEvent, Reason, Telemetry, TelemetryReport};
use dufp_types::{shutdown, Error, Result};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::io::Write as _;
use std::net::{Shutdown, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Consecutive failed probes of the primary before a warm standby
/// promotes itself. Probes run every half heartbeat timeout, so with the
/// defaults (timeout = 1.5 epochs) a kill is detected within ~2.25 epochs
/// and the first post-takeover grants land within the 3-epoch acceptance
/// window.
pub const STANDBY_PROBE_FAILURES: u32 = 3;

/// Per-node summary in the outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NodeSummary {
    /// Node name from its Hello.
    pub name: String,
    /// Application queue it announced.
    pub app: String,
    /// Final lifecycle state.
    pub state: NodeState,
    /// Last granted ceiling.
    pub final_ceiling: f64,
    /// Final trust-ladder rung (`trusted`/`suspect`/`quarantined`/
    /// `evicted`).
    #[serde(default)]
    pub trust: String,
}

/// What a coordinator run produced.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetOutcome {
    /// Allocation policy used.
    pub policy: String,
    /// Global budget served.
    pub budget: f64,
    /// Every allocator epoch, in order.
    pub epochs: Vec<EpochRecord>,
    /// Every node that ever completed a Hello.
    pub nodes: Vec<NodeSummary>,
    /// Coordination term this incarnation finished at (1 for a cold start
    /// that was never superseded).
    #[serde(default)]
    pub term: u64,
    /// Journal events replayed at startup (0 for a cold start).
    #[serde(default)]
    pub recovered_events: u64,
    /// True when the run ended because a higher term fenced this
    /// coordinator (a successor took over while it still ran).
    #[serde(default)]
    pub fenced: bool,
    /// Decision trace + metrics (grant/shrink/reclaim/vetting events).
    pub telemetry: TelemetryReport,
}

/// What a finishing coordinator tells its live agents.
enum Farewell {
    /// Clean detach: agents stop chasing this coordinator.
    Goodbye,
    /// Graceful handover: agents reconnect to `successor` immediately and
    /// accept nothing below `term`.
    Handover { successor: String, term: u64 },
    /// Nothing — crash-like teardown (fenced, or [`Coordinator::abort`]).
    Silence,
}

/// Brain plus the per-slot write halves, behind one lock.
struct CoordState {
    core: FleetCore,
    /// Write halves, parallel to the core's slots (`None` once torn down).
    streams: Vec<Option<TcpStream>>,
}

/// Registry shared between the connection handlers and the epoch loop.
struct Shared {
    state: Mutex<CoordState>,
    tel: Telemetry,
    started: Instant,
    /// Virtual-clock offset: a recovered coordinator continues the dead
    /// incarnation's clock instead of restarting at zero, so journaled
    /// timestamps stay monotonic across incarnations.
    base_ms: u64,
}

impl Shared {
    fn now_ms(&self) -> u64 {
        self.base_ms + self.started.elapsed().as_millis() as u64
    }
}

/// The fleet coordinator. See the module docs for the thread layout.
pub struct Coordinator {
    cfg: CoordinatorConfig,
    listener: TcpListener,
    shared: Arc<Shared>,
    epoch: u64,
    epochs: Vec<EpochRecord>,
    recovered_events: u64,
    stop_accept: Arc<AtomicBool>,
    accept_handle: Option<std::thread::JoinHandle<()>>,
    handler_handles: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

impl Coordinator {
    /// Validates `cfg`, binds the listen address and starts accepting
    /// agents. The allocator does not run until [`Coordinator::run`] or
    /// [`Coordinator::epoch_once`].
    ///
    /// With a journal directory configured this is also the recovery path:
    /// existing history is replayed (checkpoint + event tail), the term is
    /// bumped past the dead incarnation's, and journaling resumes where it
    /// left off.
    pub fn bind(cfg: CoordinatorConfig) -> Result<Self> {
        cfg.validate()?;
        let tel = Telemetry::enabled();
        let mut base_ms = 0u64;
        let mut recovered_events = 0u64;
        let mut core = match &cfg.journal_dir {
            Some(dir) if journal_present(dir) => {
                let rec = recover(dir, &cfg, tel.clone())?;
                let mut core = rec.core;
                core.attach_journal(FleetJournal::resume(dir, rec.journal_head)?);
                core.promote(); // new incarnation: fence everything older
                base_ms = rec.last_now_ms + 1;
                recovered_events = rec.events_replayed;
                tel.counter("journal_events_replayed_total")
                    .add(rec.events_replayed);
                if rec.torn_tail_dropped {
                    tel.counter("journal_torn_tails_total").inc();
                }
                core
            }
            Some(dir) => {
                let mut core = FleetCore::new(&cfg, tel.clone());
                core.attach_journal(FleetJournal::create(dir)?);
                core
            }
            None => FleetCore::new(&cfg, tel.clone()),
        };
        if cfg.successor.is_some() || cfg.standby_of.is_some() {
            // Someone may take over: a long stall must self-fence.
            core.enable_pause_fencing(2 * cfg.heartbeat_timeout.as_millis() as u64);
        }
        let epoch = core.epoch();
        let listener = TcpListener::bind(&cfg.listen)?;
        listener.set_nonblocking(true)?;
        let shared = Arc::new(Shared {
            state: Mutex::new(CoordState {
                core,
                streams: Vec::new(),
            }),
            tel,
            started: Instant::now(),
            base_ms,
        });
        // Recovered slots have no socket yet; keep streams parallel.
        {
            let mut st = shared.state.lock();
            let n = st.core.node_count();
            st.streams.resize_with(n, || None);
        }
        let stop_accept = Arc::new(AtomicBool::new(false));
        let handler_handles = Arc::new(Mutex::new(Vec::new()));
        let accept_handle = {
            let listener = listener.try_clone()?;
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&stop_accept);
            let handlers = Arc::clone(&handler_handles);
            std::thread::spawn(move || accept_loop(listener, shared, stop, handlers))
        };
        Ok(Coordinator {
            cfg,
            listener,
            shared,
            epoch,
            epochs: Vec::new(),
            recovered_events,
            stop_accept,
            accept_handle: Some(accept_handle),
            handler_handles,
        })
    }

    /// The bound listen address (resolves `:0` to the picked port).
    pub fn local_addr(&self) -> Result<std::net::SocketAddr> {
        Ok(self.listener.local_addr()?)
    }

    /// Nodes currently registered (any state).
    pub fn node_count(&self) -> usize {
        self.shared.state.lock().core.node_count()
    }

    /// The coordination term this incarnation serves at.
    pub fn term(&self) -> u64 {
        self.shared.state.lock().core.term()
    }

    /// Whether a higher term has fenced this coordinator.
    pub fn fenced(&self) -> bool {
        self.shared.state.lock().core.fenced()
    }

    /// One allocator epoch: the core detects dead nodes, reclaims their
    /// watts, walks the trust ladder and allocates; this layer pushes the
    /// grant frames and tears down disconnected sockets. Deterministic
    /// given the registry state — tests step it directly.
    pub fn epoch_once(&mut self) -> EpochRecord {
        let now_ms = self.shared.now_ms();
        let mut st = self.shared.state.lock();
        let step = st.core.epoch_once(now_ms);
        self.epoch = step.record.epoch;
        // Push grants; a failed send is left to heartbeat timeout.
        for (slot, frame) in &step.grants {
            if let Some(stream) = st.streams.get_mut(*slot).and_then(Option::as_mut) {
                let sent = frame.write_to(stream).and_then(|()| Ok(stream.flush()?));
                match sent {
                    Ok(()) => self.shared.tel.counter("grants_sent_total").inc(),
                    Err(_) => self.shared.tel.counter("grant_send_failures_total").inc(),
                }
            }
        }
        for &slot in &step.disconnects {
            if let Some(stream) = st.streams.get_mut(slot).and_then(Option::take) {
                let _ = stream.shutdown(Shutdown::Both);
            }
        }
        drop(st);
        self.epochs.push(step.record.clone());
        step.record
    }

    /// Whether every node that ever joined has departed or died.
    fn drained(&self) -> bool {
        self.shared.state.lock().core.drained()
    }

    /// Runs allocator epochs on the calling thread until `max_epochs` is
    /// reached, the fleet drains (every agent that ever joined has left),
    /// a higher term fences this coordinator, or process shutdown is
    /// requested; then closes the fleet down and reports the outcome.
    pub fn run(mut self) -> Result<FleetOutcome> {
        loop {
            // Sleep one epoch in small slices so Ctrl-C stays responsive.
            let deadline = Instant::now() + self.cfg.epoch;
            while Instant::now() < deadline {
                if shutdown::requested() {
                    break;
                }
                std::thread::sleep(Duration::from_millis(5).min(self.cfg.epoch));
            }
            if shutdown::requested() {
                break;
            }
            self.epoch_once();
            if self.fenced() {
                // A successor owns the fleet; serving on would split the
                // brain. Tear down crash-style so agents re-home to it.
                break;
            }
            if let Some(max) = self.cfg.max_epochs {
                if self.epoch >= max {
                    break;
                }
            }
            if self.drained() {
                break;
            }
        }
        Ok(self.finish())
    }

    /// Stops accepting, bids live agents farewell (a [`Frame::Handover`]
    /// naming the successor when one is configured, else Goodbye — or
    /// silence if fenced), joins the handler threads and produces the
    /// outcome. `epoch_once` steppers call this directly.
    pub fn finish(self) -> FleetOutcome {
        let farewell = {
            let st = self.shared.state.lock();
            if st.core.fenced() {
                // Superseded: any farewell would race the successor's
                // grants. Die the way a crash would.
                Farewell::Silence
            } else {
                match self.cfg.successor.clone() {
                    Some(successor) => Farewell::Handover {
                        successor,
                        // The successor recovers this journal (term T) and
                        // promotes to exactly T + 1.
                        term: st.core.term() + 1,
                    },
                    None => Farewell::Goodbye,
                }
            }
        };
        self.teardown(farewell)
    }

    /// Stops like a crash: connections are torn down with no Goodbye, so
    /// agents experience coordinator *loss* (and must degrade to their
    /// safe local caps) rather than a graceful detach. Test-facing.
    pub fn abort(self) -> FleetOutcome {
        self.teardown(Farewell::Silence)
    }

    fn teardown(mut self, farewell: Farewell) -> FleetOutcome {
        self.stop_accept.store(true, Ordering::Relaxed);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        {
            let mut st = self.shared.state.lock();
            let views = st.core.views();
            for (view, stream) in views.iter().zip(st.streams.iter_mut()) {
                if let Some(s) = stream.as_mut() {
                    if view.state == NodeState::Live {
                        let frame = match &farewell {
                            Farewell::Goodbye => Some(Frame::Goodbye),
                            Farewell::Handover { successor, term } => Some(Frame::Handover {
                                successor: successor.clone(),
                                term: *term,
                            }),
                            Farewell::Silence => None,
                        };
                        if let Some(f) = frame {
                            let _ = f.write_to(s);
                            let _ = s.flush();
                        }
                    }
                }
                if let Some(s) = stream.take() {
                    let _ = s.shutdown(Shutdown::Both);
                }
            }
            if matches!(farewell, Farewell::Handover { .. }) {
                self.shared.tel.counter("handovers_sent_total").inc();
            }
        }
        let handles: Vec<_> = std::mem::take(&mut *self.handler_handles.lock());
        for h in handles {
            let _ = h.join();
        }
        let st = self.shared.state.lock();
        FleetOutcome {
            policy: st.core.policy_name().to_string(),
            budget: self.cfg.budget.value(),
            epochs: self.epochs.clone(),
            nodes: st
                .core
                .views()
                .into_iter()
                .map(|v| NodeSummary {
                    name: v.name,
                    app: v.app,
                    state: v.state,
                    final_ceiling: v.granted.value(),
                    trust: v.trust.label().to_string(),
                })
                .collect(),
            term: st.core.term(),
            recovered_events: self.recovered_events,
            fenced: st.core.fenced(),
            telemetry: self.shared.tel.report(),
        }
    }
}

/// Runs a warm standby: probe the primary every half heartbeat timeout
/// and, after [`STANDBY_PROBE_FAILURES`] consecutive failures, take over —
/// replay the shared journal, bump the term, bind `cfg.listen` and serve
/// ([`Coordinator::run`]). Requires `cfg.standby_of` and
/// `cfg.journal_dir`. Returns the promoted incarnation's outcome, or an
/// error if shutdown was requested before the primary ever died.
pub fn run_standby(cfg: CoordinatorConfig) -> Result<FleetOutcome> {
    cfg.validate()?;
    let primary = cfg
        .standby_of
        .clone()
        .ok_or_else(|| Error::invalid("standby_of", "run_standby needs a primary address"))?;
    let probe_period = cfg.heartbeat_timeout / 2;
    let mut failures: u32 = 0;
    loop {
        if shutdown::requested() {
            return Err(Error::Precondition(
                "standby shut down before the primary failed".into(),
            ));
        }
        if probe(&primary, probe_period) {
            failures = 0;
        } else {
            failures += 1;
            if failures >= STANDBY_PROBE_FAILURES {
                break;
            }
        }
        // Sleep in small slices so Ctrl-C stays responsive.
        let deadline = Instant::now() + probe_period;
        while Instant::now() < deadline && !shutdown::requested() {
            std::thread::sleep(Duration::from_millis(5).min(probe_period));
        }
    }
    let coord = Coordinator::bind(cfg)?;
    coord.shared.tel.counter("standby_promotions_total").inc();
    coord.shared.tel.record_decision(DecisionEvent {
        tick: 0,
        at_us: 0,
        socket: 0,
        phase: 0,
        oi_class: None,
        flops_ratio: None,
        actuator: Actuator::Budget,
        old: 0.0,
        new: coord.term() as f64,
        reason: Reason::StandbyPromoted,
    });
    coord.run()
}

/// One liveness probe: can we open a TCP connection to `addr` within
/// `timeout`? The connection is closed immediately — the primary sees a
/// clean pre-Hello EOF, which its handler ignores.
fn probe(addr: &str, timeout: Duration) -> bool {
    let Ok(mut addrs) = addr.to_socket_addrs() else {
        return false;
    };
    let Some(sock) = addrs.next() else {
        return false;
    };
    match TcpStream::connect_timeout(&sock, timeout.max(Duration::from_millis(10))) {
        Ok(s) => {
            let _ = s.shutdown(Shutdown::Both);
            true
        }
        Err(_) => false,
    }
}

/// Accepts agents until told to stop; nonblocking so the stop flag is
/// honored promptly.
fn accept_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    stop: Arc<AtomicBool>,
    handlers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _addr)) => {
                let shared = Arc::clone(&shared);
                let h = std::thread::spawn(move || handle_connection(stream, shared));
                handlers.lock().push(h);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// Reads one agent's frames into the core's registry. Never panics:
/// protocol errors drop the connection and tick `wire_errors_total`;
/// implausible Hellos and vetted frames are the core's business.
fn handle_connection(stream: TcpStream, shared: Arc<Shared>) {
    if stream.set_nodelay(true).is_err() {
        return;
    }
    let mut reader = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    // First frame must be a Hello that survives admission.
    let slot = match Frame::read_from(&mut reader) {
        Ok(Some(Frame::Hello {
            node,
            floor,
            node_max,
            app,
            term,
        })) => {
            let now_ms = shared.now_ms();
            let mut st = shared.state.lock();
            // An agent announcing a higher term proves a successor took
            // over; observing it fences this core, and `admit` below then
            // refuses with Error::Fenced.
            let _ = st.core.observe_term(term);
            match st.core.admit(node, app, floor, node_max, now_ms) {
                Ok(slot) => {
                    // A re-admission after failover may reuse a released
                    // slot; keep streams parallel to the core's table.
                    if st.streams.len() <= slot {
                        st.streams.resize_with(slot + 1, || None);
                    }
                    st.streams[slot] = Some(stream);
                    debug_assert_eq!(st.streams.len(), st.core.node_count());
                    slot
                }
                Err(_) => {
                    // admit() already ticked admission_rejects_total.
                    drop(st);
                    let _ = reader.shutdown(Shutdown::Both);
                    return;
                }
            }
        }
        Ok(None) => {
            // Clean EOF before any frame: a standby liveness probe (or a
            // port scan). Not a protocol error.
            let _ = stream.shutdown(Shutdown::Both);
            return;
        }
        Ok(_) | Err(_) => {
            shared.tel.counter("wire_errors_total").inc();
            let _ = stream.shutdown(Shutdown::Both);
            return;
        }
    };
    loop {
        match Frame::read_from(&mut reader) {
            Ok(Some(Frame::DemandReport {
                seq,
                ceiling,
                consumption,
                active,
            })) => {
                let now_ms = shared.now_ms();
                let mut st = shared.state.lock();
                if !st.core.fenced() {
                    st.core
                        .on_report(slot, seq, ceiling, consumption, active, now_ms);
                }
            }
            Ok(Some(Frame::Heartbeat { seq, term })) => {
                let now_ms = shared.now_ms();
                let mut st = shared.state.lock();
                if st.core.observe_term(term).is_ok() {
                    st.core.on_heartbeat(slot, seq, now_ms);
                }
            }
            Ok(Some(Frame::Goodbye)) => {
                shared.state.lock().core.on_goodbye(slot);
                break;
            }
            Ok(Some(Frame::Hello { .. }))
            | Ok(Some(Frame::BudgetGrant { .. }))
            | Ok(Some(Frame::Handover { .. })) => {
                // Out-of-order or wrong-direction frame: protocol abuse.
                shared.tel.counter("wire_errors_total").inc();
                break;
            }
            Ok(None) => break, // clean EOF; death by heartbeat timeout
            Err(_) => {
                shared.tel.counter("wire_errors_total").inc();
                break;
            }
        }
    }
    let _ = reader.shutdown(Shutdown::Both);
}
