//! The durable fleet journal: coordinator high availability by
//! checkpoint + replay.
//!
//! [`crate::FleetCore`] is transport-free and deterministic on its virtual
//! clock, so the whole coordinator brain is a fold over its *input events*:
//! admissions, ingested (pre-vet) report and heartbeat frames, goodbyes,
//! epoch ticks and term transitions. This module gives those inputs a
//! durable form — [`FleetEvent`] — and writes them through the same
//! crash-safe segmented log the experiment runner uses
//! ([`dufp_journal::JournalWriter`]), with periodic [`CoreSnapshot`]
//! checkpoints so recovery replays a bounded tail instead of the whole
//! history.
//!
//! Recovery ([`recover`]) rebuilds a byte-identical core: load the newest
//! checkpoint at or below the journal head, then re-apply the tail events
//! in order. Because *inputs* are journaled (not decisions), every vetting
//! verdict, trust-ladder transition and allocation replays exactly — a
//! quarantined node cannot launder its strikes through a coordinator
//! failover. A takeover coordinator must then bump the coordination term
//! ([`crate::FleetCore::promote`]) before granting; the bump itself is
//! journaled ([`FleetEvent::TermBump`]) so the *next* heir replays it too.
//!
//! The journal directory has exactly one writer at a time: the acting
//! primary. A standby only reads it, and only after deciding the primary
//! is dead. A resurrected stale primary must never append — that is what
//! pause self-fencing and term fencing (DESIGN.md §15) are for.

use crate::config::CoordinatorConfig;
use crate::core::{CoreSnapshot, FleetCore};
use dufp_journal::{
    latest_checkpoint_before, read_records, segment_paths, truncate_records, write_checkpoint,
    FsyncPolicy, JournalWriter,
};
use dufp_telemetry::Telemetry;
use dufp_types::{Error, Result, Watts};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// Checkpoint cadence: a [`CoreSnapshot`] is written every this many
/// journal events. Small enough that takeover replays are short, large
/// enough that checkpoint writes stay off the per-frame hot path.
pub const DEFAULT_FLEET_CHECKPOINT_EVERY: u64 = 64;

/// One journaled coordinator input. The variants mirror the mutating
/// entry points of [`FleetCore`]; applying them in order to a fresh core
/// (or to a checkpoint) reproduces the primary's state bit for bit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FleetEvent {
    /// A successful admission (`FleetCore::admit`). Failed admissions are
    /// not journaled — they do not mutate the registry.
    Admit {
        /// Node name from its Hello.
        name: String,
        /// Application queue it announced.
        app: String,
        /// The node's floor, in watts.
        floor_w: f64,
        /// The node's silicon limit, in watts.
        node_max_w: f64,
        /// Virtual-clock admission time.
        now_ms: u64,
    },
    /// An ingested demand report (`FleetCore::on_report`), journaled
    /// *before* vetting: rejected frames still move sequence cursors and
    /// strike flags, so replay must see them too.
    Report {
        /// Registry slot the frame arrived on.
        slot: usize,
        /// The agent's report sequence number.
        seq: u64,
        /// Ceiling the agent claims to enforce, in watts.
        ceiling_w: f64,
        /// Observed consumption, in watts.
        consumption_w: f64,
        /// Whether the node still has work.
        active: bool,
        /// Virtual-clock arrival time.
        now_ms: u64,
    },
    /// An ingested heartbeat (`FleetCore::on_heartbeat`).
    Heartbeat {
        /// Registry slot the frame arrived on.
        slot: usize,
        /// Beacon sequence number.
        seq: u64,
        /// Virtual-clock arrival time.
        now_ms: u64,
    },
    /// A clean departure (`FleetCore::on_goodbye`).
    Goodbye {
        /// Registry slot that departed.
        slot: usize,
    },
    /// An allocator epoch tick (`FleetCore::epoch_once`).
    Epoch {
        /// Virtual-clock epoch time.
        now_ms: u64,
    },
    /// The core fenced itself — a peer announced a higher term, or the
    /// pause detector concluded a standby must have taken over.
    Fence {
        /// The term the core considers itself fenced by.
        term: u64,
    },
    /// The core took over as primary at this term
    /// (`FleetCore::promote`).
    TermBump {
        /// The new (bumped) coordination term.
        term: u64,
    },
}

impl FleetEvent {
    /// Serializes the event for a journal record.
    pub fn encode(&self) -> Result<Vec<u8>> {
        serde_json::to_vec(self)
            .map_err(|e| Error::Corruption(format!("fleet event encode failed: {e}")))
    }

    /// Deserializes a journal record back into an event.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        serde_json::from_slice(bytes)
            .map_err(|e| Error::Corruption(format!("fleet event decode failed: {e}")))
    }

    /// Re-applies this event to a core during replay. The core must not
    /// have a journal attached (replay must not re-journal itself).
    pub fn apply(&self, core: &mut FleetCore) {
        match self {
            FleetEvent::Admit {
                name,
                app,
                floor_w,
                node_max_w,
                now_ms,
            } => {
                // Journaled admissions passed validation when first
                // applied; a failure here (e.g. a name blacklisted by an
                // *earlier* replayed eviction that the original run also
                // enforced) is deterministic and intentional.
                let _ = core.admit(
                    name.clone(),
                    app.clone(),
                    Watts(*floor_w),
                    Watts(*node_max_w),
                    *now_ms,
                );
            }
            FleetEvent::Report {
                slot,
                seq,
                ceiling_w,
                consumption_w,
                active,
                now_ms,
            } => {
                core.on_report(
                    *slot,
                    *seq,
                    Watts(*ceiling_w),
                    Watts(*consumption_w),
                    *active,
                    *now_ms,
                );
            }
            FleetEvent::Heartbeat { slot, seq, now_ms } => {
                core.on_heartbeat(*slot, *seq, *now_ms);
            }
            FleetEvent::Goodbye { slot } => core.on_goodbye(*slot),
            FleetEvent::Epoch { now_ms } => {
                core.epoch_once(*now_ms);
            }
            FleetEvent::Fence { term } => core.force_fence(*term),
            FleetEvent::TermBump { term } => core.promote_to(*term),
        }
    }

    /// The event's virtual-clock timestamp, when it carries one.
    pub fn now_ms(&self) -> Option<u64> {
        match self {
            FleetEvent::Admit { now_ms, .. }
            | FleetEvent::Report { now_ms, .. }
            | FleetEvent::Heartbeat { now_ms, .. }
            | FleetEvent::Epoch { now_ms } => Some(*now_ms),
            FleetEvent::Goodbye { .. } | FleetEvent::Fence { .. } | FleetEvent::TermBump { .. } => {
                None
            }
        }
    }
}

/// The write side: an append-only event log plus checkpoint cadence.
/// Owned by the acting primary's [`FleetCore`]
/// (see [`FleetCore::attach_journal`]).
pub struct FleetJournal {
    writer: JournalWriter,
    dir: PathBuf,
    checkpoint_every: u64,
    since_checkpoint: u64,
}

impl FleetJournal {
    /// Creates a fresh journal in `dir` (which may not exist yet).
    /// Refuses a directory that already holds segments — recover and
    /// [`FleetJournal::resume`] instead.
    pub fn create(dir: &Path) -> Result<Self> {
        let writer = JournalWriter::create(dir, FsyncPolicy::EveryN(8))?;
        Ok(FleetJournal {
            writer,
            dir: dir.to_path_buf(),
            checkpoint_every: DEFAULT_FLEET_CHECKPOINT_EVERY,
            since_checkpoint: 0,
        })
    }

    /// Continues appending to an existing journal after recovery.
    /// `existing_records` is the intact record count [`recover`] reported.
    pub fn resume(dir: &Path, existing_records: u64) -> Result<Self> {
        let writer = JournalWriter::open(dir, FsyncPolicy::EveryN(8), existing_records)?;
        Ok(FleetJournal {
            writer,
            dir: dir.to_path_buf(),
            checkpoint_every: DEFAULT_FLEET_CHECKPOINT_EVERY,
            since_checkpoint: 0,
        })
    }

    /// Overrides the checkpoint cadence (events between snapshots).
    pub fn with_checkpoint_every(mut self, every: u64) -> Self {
        self.checkpoint_every = every.max(1);
        self
    }

    /// Records written so far (including recovered history).
    pub fn head(&self) -> u64 {
        self.writer.records_written()
    }

    /// Appends one event.
    pub fn record(&mut self, ev: &FleetEvent) -> Result<()> {
        self.writer.append(&ev.encode()?)?;
        self.since_checkpoint += 1;
        Ok(())
    }

    /// Whether the cadence calls for a checkpoint now.
    pub fn due_for_checkpoint(&self) -> bool {
        self.since_checkpoint >= self.checkpoint_every
    }

    /// Durably writes a checkpoint of the caller's current core snapshot,
    /// sealed at the current journal head. Syncs the log first so the
    /// checkpoint never claims records the disk does not have.
    pub fn checkpoint(&mut self, snapshot_bytes: &[u8]) -> Result<()> {
        self.writer.sync()?;
        write_checkpoint(&self.dir, self.head(), snapshot_bytes)?;
        self.since_checkpoint = 0;
        Ok(())
    }
}

/// Whether `dir` holds any journal segments (i.e. there is history to
/// recover). A missing directory is simply "no".
pub fn journal_present(dir: &Path) -> bool {
    segment_paths(dir).map(|s| !s.is_empty()).unwrap_or(false)
}

/// A recovered coordinator brain.
pub struct Recovered {
    /// The rebuilt core — byte-identical to the primary that wrote the
    /// journal, *before* any term bump. No journal attached yet.
    pub core: FleetCore,
    /// Intact journal records on disk (pass to [`FleetJournal::resume`]).
    pub journal_head: u64,
    /// Events re-applied after the checkpoint (replay tail length).
    pub events_replayed: u64,
    /// Highest virtual-clock timestamp seen; a takeover must continue the
    /// clock past this point.
    pub last_now_ms: u64,
    /// True when a torn tail was found and sealed off.
    pub torn_tail_dropped: bool,
}

/// Rebuilds a [`FleetCore`] from the journal in `dir`: newest checkpoint
/// at or below the head, plus the event tail. `cfg` must match the
/// configuration the journaling coordinator ran with — the snapshot
/// carries fleet state, not policy tunables.
pub fn recover(dir: &Path, cfg: &CoordinatorConfig, tel: Telemetry) -> Result<Recovered> {
    let outcome = read_records(dir)?;
    let head = outcome.records.len() as u64;
    if outcome.truncated {
        // Seal the torn tail so resumed appends start at a clean boundary.
        truncate_records(dir, head)?;
    }
    let mut last_now_ms = 0u64;
    let (start, mut core) = match latest_checkpoint_before(dir, head)? {
        Some((seq, bytes)) => {
            let snap: CoreSnapshot = serde_json::from_slice(&bytes)
                .map_err(|e| Error::Corruption(format!("fleet checkpoint decode failed: {e}")))?;
            last_now_ms = snap.last_epoch_ms.unwrap_or(0);
            (seq, FleetCore::from_snapshot(cfg, snap, tel))
        }
        None => (0, FleetCore::new(cfg, tel)),
    };
    let mut events_replayed = 0u64;
    for rec in &outcome.records[start as usize..] {
        let ev = FleetEvent::decode(rec)?;
        if let Some(ms) = ev.now_ms() {
            last_now_ms = last_now_ms.max(ms);
        }
        ev.apply(&mut core);
        events_replayed += 1;
    }
    Ok(Recovered {
        core,
        journal_head: head,
        events_replayed,
        last_now_ms,
        torn_tail_dropped: outcome.truncated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dufp_journal::TestDir;
    use std::time::Duration;

    fn cfg() -> CoordinatorConfig {
        CoordinatorConfig::new("virtual", Watts(300.0)).with_epoch(Duration::from_millis(1000))
    }

    /// Drives a journaled core through a small fleet history and returns
    /// it alongside its journal directory.
    fn journaled_run(dir: &Path, epochs: u64) -> FleetCore {
        let mut core = FleetCore::new(&cfg(), Telemetry::enabled());
        core.attach_journal(FleetJournal::create(dir).unwrap().with_checkpoint_every(7));
        let a = core
            .admit("a".into(), "EP".into(), Watts(65.0), Watts(125.0), 0)
            .unwrap();
        let b = core
            .admit("b".into(), "CG".into(), Watts(65.0), Watts(125.0), 0)
            .unwrap();
        for e in 1..=epochs {
            core.on_report(a, e, Watts(90.0), Watts(85.0), true, e * 1000 - 500);
            // b misbehaves: NaN demand walks the trust ladder.
            core.on_report(b, e, Watts(f64::NAN), Watts(-2.0), true, e * 1000 - 500);
            core.on_heartbeat(a, e, e * 1000 - 400);
            core.epoch_once(e * 1000);
        }
        core
    }

    #[test]
    fn recovery_is_byte_identical_including_trust_state() {
        let dir = TestDir::new("fleet-recover");
        let core = journaled_run(dir.path(), 9);
        let rec = recover(dir.path(), &cfg(), Telemetry::enabled()).unwrap();
        assert_eq!(
            core.snapshot_bytes().unwrap(),
            rec.core.snapshot_bytes().unwrap(),
            "replayed core must match the journaling core byte for byte"
        );
        assert_eq!(rec.last_now_ms, 9000);
        assert!(!rec.torn_tail_dropped);
        // The checkpoint shortened the replay tail.
        assert!(
            rec.events_replayed < rec.journal_head,
            "replayed {} of {}",
            rec.events_replayed,
            rec.journal_head
        );
    }

    #[test]
    fn promote_bumps_term_and_survives_a_second_failover() {
        let dir = TestDir::new("fleet-promote");
        let first = journaled_run(dir.path(), 5);
        assert_eq!(first.term(), 1);
        drop(first); // primary dies

        let rec = recover(dir.path(), &cfg(), Telemetry::enabled()).unwrap();
        let mut heir = rec.core;
        heir.attach_journal(FleetJournal::resume(dir.path(), rec.journal_head).unwrap());
        heir.promote();
        assert_eq!(heir.term(), 2);
        heir.epoch_once(7000);
        drop(heir); // heir dies too

        let rec2 = recover(dir.path(), &cfg(), Telemetry::enabled()).unwrap();
        assert_eq!(
            rec2.core.term(),
            2,
            "the term bump itself must be journaled"
        );
        assert_eq!(rec2.core.epoch(), 6);
    }

    #[test]
    fn torn_tail_is_sealed_and_recovery_still_works() {
        let dir = TestDir::new("fleet-torn");
        let core = journaled_run(dir.path(), 4);
        let before = core.snapshot_bytes().unwrap();
        drop(core);
        // Tear the last record by appending garbage to the newest segment.
        let segs = segment_paths(dir.path()).unwrap();
        let last = &segs.last().unwrap().1;
        let mut bytes = std::fs::read(last).unwrap();
        bytes.extend_from_slice(b"torn");
        std::fs::write(last, bytes).unwrap();

        let rec = recover(dir.path(), &cfg(), Telemetry::enabled()).unwrap();
        assert!(rec.torn_tail_dropped);
        // All intact records survived, so state still matches.
        assert_eq!(before, rec.core.snapshot_bytes().unwrap());
        // And the sealed journal accepts further appends.
        let mut j = FleetJournal::resume(dir.path(), rec.journal_head).unwrap();
        j.record(&FleetEvent::Epoch { now_ms: 5000 }).unwrap();
    }

    #[test]
    fn events_round_trip_through_encode_decode() {
        let evs = [
            FleetEvent::Admit {
                name: "n0".into(),
                app: "EP".into(),
                floor_w: 65.0,
                node_max_w: 125.0,
                now_ms: 42,
            },
            FleetEvent::Report {
                slot: 3,
                seq: 17,
                ceiling_w: 105.0,
                consumption_w: 98.5,
                active: true,
                now_ms: 950,
            },
            FleetEvent::Heartbeat {
                slot: 1,
                seq: 9,
                now_ms: 1001,
            },
            FleetEvent::Goodbye { slot: 2 },
            FleetEvent::Epoch { now_ms: 2000 },
            FleetEvent::Fence { term: 4 },
            FleetEvent::TermBump { term: 5 },
        ];
        for ev in evs {
            let bytes = ev.encode().unwrap();
            assert_eq!(FleetEvent::decode(&bytes).unwrap(), ev, "{ev:?}");
        }
        assert!(FleetEvent::decode(b"not json").is_err());
    }
}
