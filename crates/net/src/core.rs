//! The transport-independent fleet brain.
//!
//! [`FleetCore`] is everything the coordinator does *between* sockets:
//! admission, frame vetting ([`crate::vet`]), failure detection, watt
//! reclamation, the allocator epoch and the conservation guard. It runs
//! on a caller-supplied virtual clock (`now_ms`), so the same hardened
//! logic drives both the wall-clock TCP [`crate::Coordinator`] and the
//! deterministic in-process chaos fleet ([`crate::chaos`]) — a byzantine
//! defense proven under the chaos harness is, by construction, the one
//! the real wire runs.
//!
//! Invariants enforced here (DESIGN.md §12, §14):
//!
//! * **Conservation** — `Σ granted ≤ budget` at every epoch, via a
//!   floor-preserving scale-down: when the policy oversubscribes, only
//!   the above-floor portions shrink, so honest nodes keep their floors
//!   unless the floors alone exceed the budget.
//! * **Quarantine ladder** — misbehaving nodes walk `Suspect →
//!   Quarantined` (capped at their floor, demand ignored) `→ Evicted`
//!   (watts reclaimed, name blacklisted for the rest of the run).
//! * **Replay/veto/rate defense** — see [`crate::vet`]; every defense
//!   emits a typed telemetry Reason and a counter.

use crate::config::{CoordinatorConfig, PolicyKind};
use crate::fleet_journal::{FleetEvent, FleetJournal};
use crate::vet::{FrameVerdict, NodeVet, Trust, VetConfig};
use crate::wire::{Frame, GrantKind};
use dufp_cluster::allocator::{AllocatorPolicy, DemandBased, NodeObservation, StaticSplit};
use dufp_telemetry::{Actuator, DecisionEvent, Reason, Telemetry};
use dufp_types::{Error, Result, Watts};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Epochs a freshly promoted coordinator keeps replayed-but-unattached
/// nodes *pinned*: their last granted watts stay reserved (off the top of
/// the budget, like quarantine floors) and they are exempt from failure
/// detection, so the budget the dead primary already handed out cannot be
/// double-spent before the agents holding it re-attach or fall back to
/// their safe caps. After the hold, ordinary heartbeat-timeout reclaim
/// resumes. Two epochs matches the agents' disconnect grace window.
pub const HANDOVER_HOLD_EPOCHS: u64 = 2;

/// Where a node is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeState {
    /// Connected and reporting.
    Live,
    /// Sent Goodbye; its watts were (or will be) reclaimed.
    Departed,
    /// Missed heartbeats past the timeout; watts reclaimed.
    Dead,
    /// Thrown out by the quarantine ladder; watts reclaimed and its name
    /// refused readmission for the rest of the run.
    Evicted,
}

/// One allocator epoch, as recorded in the outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EpochRecord {
    /// Epoch number (1-based).
    pub epoch: u64,
    /// Milliseconds since the coordinator started serving.
    pub at_ms: u64,
    /// Ceilings granted this epoch, one per live node: `(name, watts)`.
    pub granted: Vec<(String, f64)>,
    /// Sum of all live grants (must never exceed the budget).
    pub total_granted: f64,
    /// Live nodes at the end of the epoch.
    pub live: usize,
    /// Nodes declared dead or departed *this* epoch.
    pub reclaimed: Vec<String>,
    /// Watts returned to the pool by this epoch's reclaims.
    pub reclaimed_watts: f64,
    /// Live nodes currently held in quarantine (capped at their floors).
    #[serde(default)]
    pub quarantined: Vec<String>,
    /// Nodes evicted by the trust ladder *this* epoch.
    #[serde(default)]
    pub evicted: Vec<String>,
}

/// One node in the core registry.
struct CoreNode {
    name: String,
    app: String,
    floor: Watts,
    node_max: Watts,
    state: NodeState,
    last_seen_ms: u64,
    /// Latest accepted demand report: (ceiling the agent enforces,
    /// consumption, still has work).
    report: Option<(Watts, Watts, bool)>,
    /// Last ceiling granted by the allocator (ZERO before the first
    /// grant — the agent self-enforces its safe cap until then).
    granted: Watts,
    /// Whether the reclaim for a non-Live node already ran.
    reclaimed: bool,
    vet: NodeVet,
    /// The coordination term under which this node last spoke to us.
    /// After a takeover, slots replayed from the journal still carry the
    /// old term — they are "stale" until the agent re-attaches (which
    /// creates a fresh slot and releases this one).
    attached_term: u64,
}

/// What one core epoch asks the transport layer to do.
#[derive(Debug)]
pub struct EpochStep {
    /// The epoch's outcome record.
    pub record: EpochRecord,
    /// Grant frames to deliver, as `(slot, frame)` pairs.
    pub grants: Vec<(usize, Frame)>,
    /// Slots whose connections should be torn down (died or evicted this
    /// epoch).
    pub disconnects: Vec<usize>,
}

/// Snapshot of one node for outcome summaries.
#[derive(Debug, Clone)]
pub struct CoreNodeView {
    /// Node name from its Hello.
    pub name: String,
    /// Application queue it announced.
    pub app: String,
    /// Lifecycle state.
    pub state: NodeState,
    /// Trust ladder rung.
    pub trust: Trust,
    /// Last granted ceiling.
    pub granted: Watts,
}

/// Serialized form of one registry slot (private fields; the snapshot is
/// an opaque recovery artifact, not an API).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct NodeSnap {
    name: String,
    app: String,
    floor_w: f64,
    node_max_w: f64,
    state: NodeState,
    last_seen_ms: u64,
    report: Option<(f64, f64, bool)>,
    granted_w: f64,
    reclaimed: bool,
    vet: NodeVet,
    attached_term: u64,
}

/// A complete, deterministic serialization of the core's mutable state —
/// the checkpoint payload for the fleet journal. Two cores that ingested
/// the same input events produce byte-identical snapshots (the blacklist
/// is emitted sorted), which is how the crash-equivalence tests prove a
/// replayed standby matches its dead primary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoreSnapshot {
    /// Epochs run so far.
    pub epoch: u64,
    /// Coordination term (fencing token).
    pub term: u64,
    /// The higher term this core is fenced by, if any.
    pub fenced_by: Option<u64>,
    /// Last epoch (inclusive) of the post-takeover hold-down window.
    pub hold_until_epoch: u64,
    /// Virtual-clock time of the most recent epoch tick.
    pub last_epoch_ms: Option<u64>,
    blacklist: Vec<String>,
    nodes: Vec<NodeSnap>,
}

/// The transport-independent coordinator brain. See the module docs.
pub struct FleetCore {
    budget: Watts,
    heartbeat_timeout_ms: u64,
    vet_cfg: VetConfig,
    policy: Box<dyn AllocatorPolicy>,
    policy_name: &'static str,
    nodes: Vec<CoreNode>,
    blacklist: HashSet<String>,
    epoch: u64,
    tel: Telemetry,
    /// Monotonic coordination term; grants carry it and agents apply
    /// grants in `(term, epoch)` lexicographic order.
    term: u64,
    /// `Some(t)` once a higher term `t` was observed (or presumed, via
    /// pause detection): this core stops granting permanently.
    fenced_by: Option<u64>,
    /// Last epoch (inclusive) of the post-takeover hold-down window.
    hold_until_epoch: u64,
    /// Virtual-clock time of the most recent epoch tick.
    last_epoch_ms: Option<u64>,
    /// When set, an epoch arriving more than this many ms after the
    /// previous one self-fences the core: it was paused long enough for a
    /// standby to have taken over (enable only when one is configured).
    pause_fence_ms: Option<u64>,
    /// Durable input-event log; `None` runs the core unjournaled.
    journal: Option<FleetJournal>,
}

impl FleetCore {
    /// Builds a core from a validated coordinator configuration. The
    /// `listen` field is ignored — transport is the caller's business.
    pub fn new(cfg: &CoordinatorConfig, tel: Telemetry) -> Self {
        let policy: Box<dyn AllocatorPolicy> = match cfg.policy {
            PolicyKind::StaticSplit => Box::new(StaticSplit),
            PolicyKind::DemandBased => Box::new(DemandBased {
                floor: cfg.floor,
                node_max: cfg.node_max,
                ..DemandBased::default()
            }),
        };
        FleetCore {
            budget: cfg.budget,
            heartbeat_timeout_ms: cfg.heartbeat_timeout.as_millis() as u64,
            vet_cfg: cfg.vet,
            policy_name: cfg.policy.label(),
            policy,
            nodes: Vec::new(),
            blacklist: HashSet::new(),
            epoch: 0,
            tel,
            term: 1,
            fenced_by: None,
            hold_until_epoch: 0,
            last_epoch_ms: None,
            pause_fence_ms: None,
            journal: None,
        }
    }

    /// Rebuilds a core from a recovery snapshot. `cfg` supplies the
    /// non-serialized parts (policy, budget, vetting tunables) and must
    /// match the configuration the snapshotting coordinator ran with.
    pub fn from_snapshot(cfg: &CoordinatorConfig, snap: CoreSnapshot, tel: Telemetry) -> Self {
        let mut core = FleetCore::new(cfg, tel);
        core.epoch = snap.epoch;
        core.term = snap.term;
        core.fenced_by = snap.fenced_by;
        core.hold_until_epoch = snap.hold_until_epoch;
        core.last_epoch_ms = snap.last_epoch_ms;
        core.blacklist = snap.blacklist.into_iter().collect();
        core.nodes = snap
            .nodes
            .into_iter()
            .map(|s| CoreNode {
                name: s.name,
                app: s.app,
                floor: Watts(s.floor_w),
                node_max: Watts(s.node_max_w),
                state: s.state,
                last_seen_ms: s.last_seen_ms,
                report: s.report.map(|(c, k, a)| (Watts(c), Watts(k), a)),
                granted: Watts(s.granted_w),
                reclaimed: s.reclaimed,
                vet: s.vet,
                attached_term: s.attached_term,
            })
            .collect();
        core
    }

    /// A deterministic serialization of the mutable state (see
    /// [`CoreSnapshot`]).
    pub fn snapshot(&self) -> CoreSnapshot {
        let mut blacklist: Vec<String> = self.blacklist.iter().cloned().collect();
        blacklist.sort();
        CoreSnapshot {
            epoch: self.epoch,
            term: self.term,
            fenced_by: self.fenced_by,
            hold_until_epoch: self.hold_until_epoch,
            last_epoch_ms: self.last_epoch_ms,
            blacklist,
            nodes: self
                .nodes
                .iter()
                .map(|n| NodeSnap {
                    name: n.name.clone(),
                    app: n.app.clone(),
                    floor_w: n.floor.value(),
                    node_max_w: n.node_max.value(),
                    state: n.state,
                    last_seen_ms: n.last_seen_ms,
                    report: n.report.map(|(c, k, a)| (c.value(), k.value(), a)),
                    granted_w: n.granted.value(),
                    reclaimed: n.reclaimed,
                    vet: n.vet.clone(),
                    attached_term: n.attached_term,
                })
                .collect(),
        }
    }

    /// [`FleetCore::snapshot`] as canonical bytes — the checkpoint payload
    /// and the crash-equivalence comparison key.
    pub fn snapshot_bytes(&self) -> Result<Vec<u8>> {
        serde_json::to_vec(&self.snapshot())
            .map_err(|e| Error::Corruption(format!("core snapshot encode failed: {e}")))
    }

    /// Attaches the durable input-event journal. Every subsequent
    /// admission, ingested frame, epoch tick and term transition is
    /// appended before it mutates state; checkpoints follow the journal's
    /// cadence. Attach only *after* replay — a core must not re-journal
    /// its own recovery.
    pub fn attach_journal(&mut self, journal: FleetJournal) {
        self.journal = Some(journal);
    }

    /// Enables pause self-fencing (see the `pause_fence_ms` field). Call
    /// when a standby or successor is configured: a coordinator stalled
    /// past `threshold_ms` must assume it was superseded.
    pub fn enable_pause_fencing(&mut self, threshold_ms: u64) {
        self.pause_fence_ms = Some(threshold_ms);
    }

    /// The current coordination term.
    pub fn term(&self) -> u64 {
        self.term
    }

    /// Whether this core has permanently stopped granting because a
    /// higher term was observed (or presumed via pause detection).
    pub fn fenced(&self) -> bool {
        self.fenced_by.is_some()
    }

    /// Notes a term a peer announced (Hello/Heartbeat). A term above ours
    /// proves a successor took over: the core fences itself and the call
    /// — like every call while fenced — returns [`Error::Fenced`].
    pub fn observe_term(&mut self, peer_term: u64) -> Result<()> {
        if peer_term > self.term {
            self.force_fence(peer_term);
        }
        match self.fenced_by {
            Some(theirs) => Err(Error::Fenced {
                ours: self.term,
                theirs,
            }),
            None => Ok(()),
        }
    }

    /// Fences the core by `term` (idempotent; keeps the highest fencing
    /// term seen). Public so journal replay can reproduce it.
    pub fn force_fence(&mut self, term: u64) {
        if self.fenced_by.is_some_and(|t| term <= t) {
            return;
        }
        self.journal_event(&FleetEvent::Fence { term });
        self.fenced_by = Some(term);
        self.tel.counter("term_fences_total").inc();
        self.record(
            0,
            self.last_epoch_ms.unwrap_or(0),
            self.term as f64,
            term as f64,
            Reason::TermFenced,
        );
    }

    /// Takes over as primary: bumps the term past everything seen so far,
    /// clears any fence, and opens the hold-down window
    /// ([`HANDOVER_HOLD_EPOCHS`]) during which replayed-but-unattached
    /// nodes stay pinned. Must be called after journal replay and before
    /// the first grant.
    pub fn promote(&mut self) {
        let next = self.fenced_by.unwrap_or(self.term).max(self.term) + 1;
        self.promote_to(next);
    }

    /// Takes over at an explicit term. Public so journal replay can
    /// reproduce a recorded [`FleetEvent::TermBump`] exactly.
    pub fn promote_to(&mut self, term: u64) {
        let old = self.term;
        self.term = term;
        self.fenced_by = None; // clear before journaling: a fenced core's journal is closed
        self.hold_until_epoch = self.epoch + HANDOVER_HOLD_EPOCHS;
        self.journal_event(&FleetEvent::TermBump { term });
        self.tel.counter("takeovers_total").inc();
        self.record(
            0,
            self.last_epoch_ms.unwrap_or(0),
            old as f64,
            term as f64,
            Reason::TookOver,
        );
    }

    fn journal_event(&mut self, ev: &FleetEvent) {
        // A fenced core's journal stream ends at its Fence record (written
        // by `force_fence` before the flag flips): the successor owns the
        // log now, and a superseded primary must not interleave with it.
        if self.fenced_by.is_some() {
            return;
        }
        let Some(j) = self.journal.as_mut() else {
            return;
        };
        if j.record(ev).is_err() {
            // A full disk must not kill the fleet; the failure is counted
            // and the core keeps serving (recovery fidelity degrades).
            self.tel.counter("journal_errors_total").inc();
        }
    }

    /// The allocator policy's display name.
    pub fn policy_name(&self) -> &'static str {
        self.policy_name
    }

    /// The global budget being served.
    pub fn budget(&self) -> Watts {
        self.budget
    }

    /// Epochs run so far.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Nodes ever admitted (any state).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Snapshot of every node for outcome summaries.
    pub fn views(&self) -> Vec<CoreNodeView> {
        self.nodes
            .iter()
            .map(|n| CoreNodeView {
                name: n.name.clone(),
                app: n.app.clone(),
                state: n.state,
                trust: n.vet.trust(),
                granted: n.granted,
            })
            .collect()
    }

    /// The trust rung of a slot (slots are stable for a run's lifetime).
    pub fn trust(&self, slot: usize) -> Option<Trust> {
        self.nodes.get(slot).map(|n| n.vet.trust())
    }

    /// Admits a node from its Hello, returning its slot. Refuses the
    /// same typed validation the configs use — non-finite or non-positive
    /// floors, a floor above the silicon limit — plus the eviction
    /// blacklist: an evicted name never gets back in.
    pub fn admit(
        &mut self,
        name: String,
        app: String,
        floor: Watts,
        node_max: Watts,
        now_ms: u64,
    ) -> Result<usize> {
        if let Some(theirs) = self.fenced_by {
            self.tel.counter("admission_rejects_total").inc();
            return Err(Error::Fenced {
                ours: self.term,
                theirs,
            });
        }
        if !floor.value().is_finite()
            || floor.value() <= 0.0
            || !node_max.value().is_finite()
            || floor > node_max
        {
            self.tel.counter("admission_rejects_total").inc();
            return Err(Error::invalid(
                "hello",
                format!(
                    "implausible floor {} W / node_max {} W",
                    floor.value(),
                    node_max.value()
                ),
            ));
        }
        if self.blacklist.contains(&name) {
            self.tel.counter("admission_rejects_total").inc();
            return Err(Error::Precondition(format!(
                "node {name} was evicted; readmission refused"
            )));
        }
        self.journal_event(&FleetEvent::Admit {
            name: name.clone(),
            app: app.clone(),
            floor_w: floor.value(),
            node_max_w: node_max.value(),
            now_ms,
        });
        // A re-admitted name releases its stale-term predecessor: the
        // agent has provably moved to the current term, so the pinned
        // watts the old slot held can return to the pool next epoch.
        let term = self.term;
        for n in &mut self.nodes {
            if n.state == NodeState::Live && n.attached_term < term && n.name == name {
                n.state = NodeState::Departed;
            }
        }
        self.nodes.push(CoreNode {
            name,
            app,
            floor,
            node_max,
            state: NodeState::Live,
            last_seen_ms: now_ms,
            report: None,
            granted: Watts::ZERO,
            reclaimed: false,
            vet: NodeVet::new(),
            attached_term: term,
        });
        Ok(self.nodes.len() - 1)
    }

    /// Ingests a demand report. Returns what the vetting layer decided;
    /// only [`FrameVerdict::Accepted`] frames update the registry.
    pub fn on_report(
        &mut self,
        slot: usize,
        seq: u64,
        ceiling: Watts,
        consumption: Watts,
        active: bool,
        now_ms: u64,
    ) -> FrameVerdict {
        if !self.slot_is_live(slot) {
            return FrameVerdict::Vetoed;
        }
        // Journal before vetting: rejected frames still move sequence
        // cursors and strike flags, so replay must ingest them too.
        self.journal_event(&FleetEvent::Report {
            slot,
            seq,
            ceiling_w: ceiling.value(),
            consumption_w: consumption.value(),
            active,
            now_ms,
        });
        let term = self.term;
        let Some(n) = self.nodes.get_mut(slot) else {
            return FrameVerdict::Vetoed;
        };
        n.attached_term = term;
        let granted = n.granted;
        let node_max = n.node_max;
        let verdict =
            n.vet
                .check_report(&self.vet_cfg, seq, ceiling, consumption, node_max, granted);
        match verdict {
            FrameVerdict::Accepted => {
                n.last_seen_ms = now_ms;
                n.report = Some((ceiling, consumption, active));
                self.tel.counter("reports_total").inc();
            }
            FrameVerdict::Duplicate => {
                // A lossy path duplicated the frame; the node is alive.
                n.last_seen_ms = now_ms;
                self.tel.counter("duplicate_frames_total").inc();
            }
            FrameVerdict::Replay => {
                n.last_seen_ms = now_ms;
                let last = n.vet.last_report_seq();
                self.tel.counter("replays_rejected_total").inc();
                self.record(
                    slot,
                    now_ms,
                    seq as f64,
                    last as f64,
                    Reason::ReplayRejected,
                );
            }
            FrameVerdict::RateLimited => {
                // Rate limiting throttles the allocator's inputs, not the
                // liveness detector: a storming node is still visibly
                // alive, so the heartbeat clock resets even though the
                // frame's content is dropped unprocessed.
                self.nodes[slot].last_seen_ms = now_ms;
                self.tel.counter("rate_limited_total").inc();
                // One event per node per epoch, not one per dropped frame
                // — a storm must not flood the telemetry ring.
                if self.nodes[slot].vet.just_hit_report_limit(&self.vet_cfg) {
                    let max = f64::from(self.vet_cfg.max_reports_per_epoch);
                    self.record(slot, now_ms, max + 1.0, max, Reason::RateLimited);
                }
            }
            FrameVerdict::Vetoed => {
                n.last_seen_ms = now_ms;
                self.tel.counter("demand_vetoes_total").inc();
                let shown = if consumption.value().is_finite() {
                    consumption.value()
                } else {
                    0.0
                };
                self.record(slot, now_ms, shown, 0.0, Reason::DemandVetoed);
            }
        }
        verdict
    }

    /// Ingests a heartbeat.
    pub fn on_heartbeat(&mut self, slot: usize, seq: u64, now_ms: u64) -> FrameVerdict {
        if !self.slot_is_live(slot) {
            return FrameVerdict::Vetoed;
        }
        self.journal_event(&FleetEvent::Heartbeat { slot, seq, now_ms });
        let term = self.term;
        let Some(n) = self.nodes.get_mut(slot) else {
            return FrameVerdict::Vetoed;
        };
        n.attached_term = term;
        let verdict = n.vet.check_heartbeat(&self.vet_cfg, seq);
        match verdict {
            FrameVerdict::RateLimited => {
                // As in `on_report`: the storm is dropped, but the node
                // has proven it is alive.
                n.last_seen_ms = now_ms;
                self.tel.counter("rate_limited_total").inc();
            }
            FrameVerdict::Replay => {
                n.last_seen_ms = now_ms;
                self.tel.counter("replays_rejected_total").inc();
            }
            _ => {
                n.last_seen_ms = now_ms;
                self.tel.counter("heartbeats_total").inc();
            }
        }
        verdict
    }

    /// Marks a node cleanly departed.
    pub fn on_goodbye(&mut self, slot: usize) {
        if self.slot_is_live(slot) {
            self.journal_event(&FleetEvent::Goodbye { slot });
        }
        if let Some(n) = self.nodes.get_mut(slot) {
            if n.state == NodeState::Live {
                n.state = NodeState::Departed;
            }
        }
    }

    fn slot_is_live(&self, slot: usize) -> bool {
        self.nodes
            .get(slot)
            .is_some_and(|n| n.state == NodeState::Live)
    }

    /// One allocator epoch on the virtual clock: close the vetting epoch
    /// (trust transitions), detect dead nodes, reclaim watts, allocate
    /// under the conservation guard, and emit the grant frames for the
    /// transport to deliver. Deterministic given the registry state.
    pub fn epoch_once(&mut self, now_ms: u64) -> EpochStep {
        // Pause self-fencing, checked (and journaled) *before* the epoch
        // tick so replay reproduces the fence at the same point: a
        // coordinator that stalled past the threshold must assume its
        // standby promoted itself in the gap, and a fenced epoch must not
        // reallocate anything.
        if let (Some(threshold), Some(prev)) = (self.pause_fence_ms, self.last_epoch_ms) {
            if self.fenced_by.is_none() && now_ms.saturating_sub(prev) > threshold {
                let presumed = self.term + 1;
                self.force_fence(presumed);
            }
        }
        self.journal_event(&FleetEvent::Epoch { now_ms });
        self.last_epoch_ms = Some(now_ms);
        self.epoch += 1;
        if self.fenced_by.is_some() {
            let step = self.frozen_epoch(now_ms);
            self.maybe_checkpoint();
            return step;
        }
        let mut disconnects = Vec::new();
        let mut evicted_now = Vec::new();

        // Post-takeover hold-down: slots replayed from the journal whose
        // agents have not re-attached under the new term keep their watts
        // reserved and are exempt from failure detection until the window
        // closes. See [`HANDOVER_HOLD_EPOCHS`].
        let hold_active = self.epoch <= self.hold_until_epoch;
        let is_pinned = |n: &CoreNode, term: u64| {
            hold_active && n.state == NodeState::Live && n.attached_term < term
        };

        // Trust ladder transitions from the epoch's strike flags.
        for i in 0..self.nodes.len() {
            if self.nodes[i].state != NodeState::Live {
                continue;
            }
            let vet_cfg = self.vet_cfg;
            if let Some((old, new)) = self.nodes[i].vet.finalize_epoch(&vet_cfg) {
                let reason = if new == Trust::Evicted {
                    Reason::Evicted
                } else {
                    Reason::Quarantined
                };
                self.record(
                    i,
                    now_ms,
                    old.ordinal() as f64,
                    new.ordinal() as f64,
                    reason,
                );
                if new == Trust::Evicted {
                    let name = self.nodes[i].name.clone();
                    self.blacklist.insert(name.clone());
                    evicted_now.push(name);
                    self.nodes[i].state = NodeState::Evicted;
                    disconnects.push(i);
                    self.tel.counter("evictions_total").inc();
                } else if new == Trust::Quarantined {
                    self.tel.counter("quarantines_total").inc();
                }
            }
        }

        // Failure detection + reclaim.
        let mut reclaimed = Vec::new();
        let mut reclaimed_watts = 0.0;
        for i in 0..self.nodes.len() {
            let stale = {
                let n = &self.nodes[i];
                n.state == NodeState::Live
                    && !is_pinned(n, self.term)
                    && now_ms.saturating_sub(n.last_seen_ms) > self.heartbeat_timeout_ms
            };
            if stale {
                self.nodes[i].state = NodeState::Dead;
                disconnects.push(i);
            }
            let n = &self.nodes[i];
            if n.state != NodeState::Live && !n.reclaimed {
                let had = n.granted.value();
                let name = n.name.clone();
                self.nodes[i].reclaimed = true;
                self.nodes[i].granted = Watts::ZERO;
                reclaimed.push(name);
                reclaimed_watts += had;
                self.tel.counter("budget_reclaims_total").inc();
                self.record(i, now_ms, had, 0.0, Reason::BudgetReclaim);
            }
        }

        // Split the live fleet: quarantined nodes are pinned at their
        // floors and their (untrusted) demand is excluded from the policy;
        // hold-down-pinned nodes keep their replayed grants off the top.
        let mut policy_slots = Vec::new();
        let mut quarantined_slots = Vec::new();
        let mut pinned_slots = Vec::new();
        for (i, n) in self.nodes.iter().enumerate() {
            if n.state != NodeState::Live {
                continue;
            }
            if is_pinned(n, self.term) {
                pinned_slots.push(i);
            } else if n.vet.trust() >= Trust::Quarantined {
                quarantined_slots.push(i);
            } else {
                policy_slots.push(i);
            }
        }
        let quarantined_names: Vec<String> = quarantined_slots
            .iter()
            .map(|&i| self.nodes[i].name.clone())
            .collect();

        // Quarantined floors and hold-down-pinned grants come off the top
        // of the budget (scaled down if even those oversubscribe it —
        // conservation is absolute).
        let mut quar_ceilings: Vec<f64> = quarantined_slots
            .iter()
            .map(|&i| self.nodes[i].floor.value())
            .collect();
        let mut pinned_ceilings: Vec<f64> = pinned_slots
            .iter()
            .map(|&i| self.nodes[i].granted.value())
            .collect();
        let reserved: f64 = quar_ceilings.iter().chain(pinned_ceilings.iter()).sum();
        if reserved > self.budget.value() && reserved > 0.0 {
            let scale = self.budget.value() / reserved;
            for w in quar_ceilings.iter_mut().chain(pinned_ceilings.iter_mut()) {
                *w *= scale;
            }
        }
        let reserved: f64 = quar_ceilings.iter().chain(pinned_ceilings.iter()).sum();
        let remaining = (self.budget.value() - reserved).max(0.0);

        // Policy allocation over the trusted observations. A node that has
        // not reported yet is an idle consumer at its floor, so it is
        // funded (and counted against the budget) from its first epoch.
        let observations: Vec<NodeObservation> = policy_slots
            .iter()
            .map(|&i| {
                let n = &self.nodes[i];
                match n.report {
                    Some((ceiling, consumption, active)) => NodeObservation {
                        ceiling,
                        consumption,
                        active,
                    },
                    None => NodeObservation {
                        ceiling: n.granted.max(n.floor),
                        consumption: Watts::ZERO,
                        active: true,
                    },
                }
            })
            .collect();
        let mut ceilings: Vec<f64> = self
            .policy
            .allocate(Watts(remaining), &observations)
            .into_iter()
            .map(|w| w.value())
            .collect();
        let floors: Vec<f64> = policy_slots
            .iter()
            .map(|&i| self.nodes[i].floor.value())
            .collect();
        fit_into_budget(remaining, &floors, &mut ceilings);

        // Push grants; only changed ceilings produce frames.
        let mut grants = Vec::new();
        let mut granted = Vec::new();
        let mut total_granted = 0.0;
        let all_slots = policy_slots
            .iter()
            .copied()
            .zip(ceilings)
            .chain(quarantined_slots.iter().copied().zip(quar_ceilings))
            .chain(pinned_slots.iter().copied().zip(pinned_ceilings));
        let mut per_slot: Vec<(usize, f64)> = all_slots.collect();
        per_slot.sort_by_key(|&(slot, _)| slot); // stable, transport-friendly order
        for (i, ceiling) in per_slot {
            let n = &mut self.nodes[i];
            // Watts above the node's announced silicon limit are unusable
            // there; keep them in the pool instead of granting them.
            let ceiling = Watts(ceiling).min(n.node_max);
            let old = n.granted;
            let kind = if ceiling >= old {
                GrantKind::Raise
            } else {
                GrantKind::Shrink
            };
            if (ceiling - old).abs() > Watts(1e-9) {
                grants.push((
                    i,
                    Frame::BudgetGrant {
                        epoch: self.epoch,
                        ceiling,
                        kind,
                        term: self.term,
                    },
                ));
                let reason = match kind {
                    GrantKind::Raise => Reason::BudgetGrant,
                    GrantKind::Shrink => Reason::BudgetShrink,
                };
                let (o, c) = (old.value(), ceiling.value());
                n.granted = ceiling;
                self.tel.counter("grants_issued_total").inc();
                self.record(i, now_ms, o, c, reason);
            }
            let n = &self.nodes[i];
            granted.push((n.name.clone(), n.granted.value()));
            total_granted += n.granted.value();
        }

        let live = self
            .nodes
            .iter()
            .filter(|n| n.state == NodeState::Live)
            .count();
        let step = EpochStep {
            record: EpochRecord {
                epoch: self.epoch,
                at_ms: now_ms,
                granted,
                total_granted,
                live,
                reclaimed,
                reclaimed_watts,
                quarantined: quarantined_names,
                evicted: evicted_now,
            },
            grants,
            disconnects,
        };
        self.maybe_checkpoint();
        step
    }

    /// The epoch produced while fenced: a frozen view of the registry.
    /// No grants, no reclaims, no trust transitions — a fenced core must
    /// not reallocate watts a successor is already re-granting.
    fn frozen_epoch(&self, now_ms: u64) -> EpochStep {
        let mut granted = Vec::new();
        let mut total_granted = 0.0;
        let mut live = 0;
        for n in &self.nodes {
            if n.state == NodeState::Live {
                live += 1;
                granted.push((n.name.clone(), n.granted.value()));
                total_granted += n.granted.value();
            }
        }
        EpochStep {
            record: EpochRecord {
                epoch: self.epoch,
                at_ms: now_ms,
                granted,
                total_granted,
                live,
                reclaimed: Vec::new(),
                reclaimed_watts: 0.0,
                quarantined: Vec::new(),
                evicted: Vec::new(),
            },
            grants: Vec::new(),
            disconnects: Vec::new(),
        }
    }

    /// Writes a checkpoint when the journal's cadence calls for one.
    fn maybe_checkpoint(&mut self) {
        if !self
            .journal
            .as_ref()
            .is_some_and(FleetJournal::due_for_checkpoint)
        {
            return;
        }
        let bytes = match self.snapshot_bytes() {
            Ok(b) => b,
            Err(_) => {
                self.tel.counter("journal_errors_total").inc();
                return;
            }
        };
        if let Some(j) = self.journal.as_mut() {
            if j.checkpoint(&bytes).is_err() {
                self.tel.counter("journal_errors_total").inc();
            }
        }
    }

    fn record(&self, slot: usize, now_ms: u64, old: f64, new: f64, reason: Reason) {
        self.tel.record_decision(DecisionEvent {
            tick: self.epoch,
            at_us: now_ms.saturating_mul(1000),
            socket: slot as u16,
            phase: 0,
            oi_class: None,
            flops_ratio: None,
            actuator: Actuator::Budget,
            old,
            new,
            reason,
        });
    }

    /// Whether every node that ever joined has left (any non-Live state).
    pub fn drained(&self) -> bool {
        !self.nodes.is_empty() && self.nodes.iter().all(|n| n.state != NodeState::Live)
    }
}

/// Floor-preserving conservation guard: scales `want` into `budget` by
/// shrinking only the above-floor portions; falls back to a proportional
/// scale of the floors themselves only when the floors alone exceed the
/// budget. No-op when the total already fits.
fn fit_into_budget(budget: f64, floors: &[f64], want: &mut [f64]) {
    let total: f64 = want.iter().sum();
    if total <= budget {
        return;
    }
    let floor_sum: f64 = floors.iter().sum();
    if floor_sum >= budget {
        if floor_sum > 0.0 {
            let scale = budget / floor_sum;
            for (w, f) in want.iter_mut().zip(floors) {
                *w = f * scale;
            }
        }
        return;
    }
    let above: f64 = want.iter().zip(floors).map(|(w, f)| (w - f).max(0.0)).sum();
    if above <= 0.0 {
        return;
    }
    let scale = (budget - floor_sum) / above;
    for (w, f) in want.iter_mut().zip(floors) {
        *w = f + (*w - f).max(0.0) * scale;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn cfg(budget: f64) -> CoordinatorConfig {
        CoordinatorConfig::new("virtual", Watts(budget)).with_epoch(Duration::from_millis(1000))
    }

    fn core(budget: f64) -> FleetCore {
        FleetCore::new(&cfg(budget), Telemetry::enabled())
    }

    fn admit(core: &mut FleetCore, name: &str) -> usize {
        core.admit(name.into(), "EP".into(), Watts(65.0), Watts(125.0), 0)
            .unwrap()
    }

    #[test]
    fn nan_demand_cannot_poison_the_allocator() {
        // Regression: before vetting, a NaN consumption propagated into
        // DemandBased's arithmetic and produced NaN ceilings fleet-wide.
        let mut core = core(300.0);
        let a = admit(&mut core, "honest");
        let b = admit(&mut core, "liar");
        core.on_report(a, 1, Watts(90.0), Watts(85.0), true, 500);
        core.on_report(b, 1, Watts(f64::NAN), Watts(f64::NAN), true, 500);
        let step = core.epoch_once(1000);
        assert!(
            step.record.total_granted.is_finite(),
            "{}",
            step.record.total_granted
        );
        for (name, w) in &step.record.granted {
            assert!(w.is_finite() && *w >= 0.0, "{name}: {w}");
        }
        assert!(step.record.total_granted <= 300.0 + 1e-6);
    }

    #[test]
    fn byzantine_node_is_quarantined_within_two_epochs_and_floored() {
        let mut core = core(300.0);
        let honest = admit(&mut core, "honest");
        let liar = admit(&mut core, "liar");
        for epoch in 1..=2u64 {
            core.on_report(
                honest,
                epoch,
                Watts(90.0),
                Watts(88.0),
                true,
                epoch * 1000 - 500,
            );
            core.on_report(
                liar,
                epoch,
                Watts(f64::NAN),
                Watts(-1.0),
                true,
                epoch * 1000 - 500,
            );
            core.epoch_once(epoch * 1000);
        }
        assert_eq!(core.trust(liar), Some(Trust::Quarantined));
        // Next epoch the quarantined node is pinned at its floor.
        core.on_report(honest, 3, Watts(90.0), Watts(88.0), true, 2500);
        core.on_report(liar, 3, Watts(f64::NAN), Watts(999.0), true, 2500);
        let step = core.epoch_once(3000);
        assert!(step.record.quarantined.contains(&"liar".to_string()));
        let liar_grant = step
            .record
            .granted
            .iter()
            .find(|(n, _)| n == "liar")
            .map(|(_, w)| *w)
            .unwrap();
        assert!((liar_grant - 65.0).abs() < 1e-6, "{liar_grant}");
        assert!(step.record.total_granted <= 300.0 + 1e-6);
    }

    #[test]
    fn persistent_byzantine_node_is_evicted_and_blacklisted() {
        let mut core = core(300.0);
        let liar = admit(&mut core, "liar");
        let mut evicted_epoch = None;
        for epoch in 1..=10u64 {
            core.on_report(
                liar,
                epoch,
                Watts(f64::NAN),
                Watts(0.0),
                true,
                epoch * 1000 - 1,
            );
            let step = core.epoch_once(epoch * 1000);
            if step.record.evicted.contains(&"liar".to_string()) {
                evicted_epoch = Some((epoch, step));
                break;
            }
        }
        let (epoch, step) = evicted_epoch.expect("persistent byzantine must be evicted");
        assert_eq!(epoch, 6, "one strike per epoch, evict_after=6");
        assert!(step.disconnects.contains(&liar));
        // The watts it held went back to the pool...
        assert!(step.record.reclaimed.contains(&"liar".to_string()));
        // ...and readmission under the same name is refused.
        let err = core
            .admit("liar".into(), "EP".into(), Watts(65.0), Watts(125.0), 7000)
            .unwrap_err();
        assert!(err.to_string().contains("evicted"), "{err}");
    }

    #[test]
    fn conservation_holds_when_floors_oversubscribe_the_budget() {
        let mut core = core(100.0); // two nodes × 65 W floor = 130 > 100
        let a = admit(&mut core, "a");
        let b = admit(&mut core, "b");
        core.on_report(a, 1, Watts(90.0), Watts(89.0), true, 500);
        core.on_report(b, 1, Watts(90.0), Watts(89.0), true, 500);
        let step = core.epoch_once(1000);
        assert!(
            step.record.total_granted <= 100.0 + 1e-6,
            "{}",
            step.record.total_granted
        );
    }

    #[test]
    fn floor_preserving_guard_shrinks_only_above_floor_portions() {
        let floors = [65.0, 65.0, 65.0];
        let mut want = [125.0, 125.0, 65.0];
        fit_into_budget(250.0, &floors, &mut want);
        let total: f64 = want.iter().sum();
        assert!((total - 250.0).abs() < 1e-9, "{total}");
        for (w, f) in want.iter().zip(floors) {
            assert!(*w >= f - 1e-9, "{w} below floor {f}");
        }
        assert!((want[2] - 65.0).abs() < 1e-9, "floor-rider untouched");
    }

    #[test]
    fn stale_nodes_die_and_their_watts_return() {
        let mut core = core(300.0);
        let a = admit(&mut core, "a");
        let b = admit(&mut core, "b");
        core.on_report(a, 1, Watts(90.0), Watts(85.0), true, 500);
        core.on_report(b, 1, Watts(90.0), Watts(85.0), true, 500);
        core.epoch_once(1000);
        // Only `a` keeps reporting; `b` goes silent past 1.5 s.
        core.on_report(a, 2, Watts(90.0), Watts(85.0), true, 1500);
        core.epoch_once(2000);
        core.on_report(a, 3, Watts(90.0), Watts(85.0), true, 2500);
        let step = core.epoch_once(3000);
        assert!(step.record.reclaimed.contains(&"b".to_string()));
        assert!(step.record.reclaimed_watts > 0.0);
        assert_eq!(step.record.live, 1);
    }

    #[test]
    fn admission_rejects_implausible_hellos() {
        let mut core = core(300.0);
        for (floor, max) in [
            (f64::NAN, 125.0),
            (0.0, 125.0),
            (-10.0, 125.0),
            (65.0, f64::NAN),
            (130.0, 125.0),
        ] {
            assert!(
                core.admit("x".into(), "EP".into(), Watts(floor), Watts(max), 0)
                    .is_err(),
                "floor={floor} max={max}"
            );
        }
        assert_eq!(core.node_count(), 0);
    }

    #[test]
    fn observing_a_higher_term_fences_grants_and_admissions() {
        let mut core = core(300.0);
        let a = admit(&mut core, "a");
        core.on_report(a, 1, Watts(90.0), Watts(85.0), true, 500);
        core.epoch_once(1000);
        assert_eq!(core.term(), 1);
        assert!(!core.fenced());

        let err = core.observe_term(2).unwrap_err();
        assert!(
            matches!(err, Error::Fenced { ours: 1, theirs: 2 }),
            "{err:?}"
        );
        assert!(core.fenced());

        // Fenced epochs issue no frames and reclaim nothing, ever.
        let step = core.epoch_once(60_000);
        assert!(step.grants.is_empty());
        assert!(step.record.reclaimed.is_empty(), "no reclaim while fenced");
        // Fenced admission is a soft refusal, typed so transports can
        // close the listener rather than blacklist the node.
        let err = core
            .admit("b".into(), "EP".into(), Watts(65.0), Watts(125.0), 1500)
            .unwrap_err();
        assert!(matches!(err, Error::Fenced { .. }), "{err:?}");
        // Equal or lower peer terms never unfence.
        assert!(core.observe_term(1).is_err());
    }

    #[test]
    fn pause_fencing_trips_only_past_the_threshold() {
        let mut core = core(300.0);
        core.enable_pause_fencing(3000);
        admit(&mut core, "a");
        core.epoch_once(1000);
        core.epoch_once(2000);
        assert!(!core.fenced(), "normal cadence must not self-fence");
        core.epoch_once(9000); // 7 s gap > 3 s threshold
        assert!(core.fenced(), "a long stall presumes a takeover");
        assert!(core.epoch_once(10_000).grants.is_empty());
    }

    #[test]
    fn promotion_pins_stale_slots_then_reclaims_them_after_the_hold() {
        let mut core = core(300.0);
        let a = admit(&mut core, "a");
        let b = admit(&mut core, "b");
        core.on_report(a, 1, Watts(120.0), Watts(110.0), true, 500);
        core.on_report(b, 1, Watts(120.0), Watts(110.0), true, 500);
        let step = core.epoch_once(1000);
        let granted_before = step.record.total_granted;
        assert!(granted_before > 0.0);

        // Takeover: both slots are stale (attached under term 1).
        core.promote();
        assert_eq!(core.term(), 2);

        // Only `a` re-attaches; its stale slot is released on readmission.
        let a2 = core
            .admit("a".into(), "EP".into(), Watts(65.0), Watts(125.0), 1500)
            .unwrap();
        core.on_report(a2, 1, Watts(90.0), Watts(85.0), true, 1600);

        // Hold epoch 1: b's stale grant stays pinned (reserved), so the
        // pool a2 can draw from is budget - pinned, never double-spent.
        let step = core.epoch_once(2000);
        let b_held = step
            .record
            .granted
            .iter()
            .find(|(n, _)| n == "b")
            .map(|(_, w)| *w)
            .unwrap_or(0.0);
        assert!(b_held > 0.0, "stale slot must stay funded during the hold");
        assert!(step.record.total_granted <= 300.0 + 1e-6);
        assert!(
            !step.record.reclaimed.contains(&"b".to_string()),
            "pinned slots are exempt from failure detection"
        );

        // After the hold window, the silent stale slot dies and its watts
        // return to the pool.
        let mut reclaimed_b = false;
        for e in 3..=6u64 {
            core.on_report(a2, e, Watts(90.0), Watts(85.0), true, e * 1000 - 500);
            let step = core.epoch_once(e * 1000);
            assert!(step.record.total_granted <= 300.0 + 1e-6);
            reclaimed_b |= step.record.reclaimed.contains(&"b".to_string());
        }
        assert!(reclaimed_b, "stale slot must be reclaimed after the hold");
    }

    #[test]
    fn snapshots_are_deterministic_and_round_trip() {
        let build = || {
            let mut c = core(300.0);
            let a = admit(&mut c, "a");
            let b = admit(&mut c, "b");
            c.on_report(a, 1, Watts(90.0), Watts(85.0), true, 500);
            c.on_report(b, 1, Watts(f64::NAN), Watts(-1.0), true, 500);
            c.epoch_once(1000);
            c
        };
        let x = build();
        let y = build();
        assert_eq!(
            x.snapshot_bytes().unwrap(),
            y.snapshot_bytes().unwrap(),
            "same inputs, same bytes"
        );
        let restored = FleetCore::from_snapshot(&cfg(300.0), x.snapshot(), Telemetry::enabled());
        assert_eq!(
            restored.snapshot_bytes().unwrap(),
            x.snapshot_bytes().unwrap()
        );
        assert_eq!(restored.epoch(), x.epoch());
        assert_eq!(restored.term(), x.term());
    }
}
