//! The transport-independent fleet brain.
//!
//! [`FleetCore`] is everything the coordinator does *between* sockets:
//! admission, frame vetting ([`crate::vet`]), failure detection, watt
//! reclamation, the allocator epoch and the conservation guard. It runs
//! on a caller-supplied virtual clock (`now_ms`), so the same hardened
//! logic drives both the wall-clock TCP [`crate::Coordinator`] and the
//! deterministic in-process chaos fleet ([`crate::chaos`]) — a byzantine
//! defense proven under the chaos harness is, by construction, the one
//! the real wire runs.
//!
//! Invariants enforced here (DESIGN.md §12, §14):
//!
//! * **Conservation** — `Σ granted ≤ budget` at every epoch, via a
//!   floor-preserving scale-down: when the policy oversubscribes, only
//!   the above-floor portions shrink, so honest nodes keep their floors
//!   unless the floors alone exceed the budget.
//! * **Quarantine ladder** — misbehaving nodes walk `Suspect →
//!   Quarantined` (capped at their floor, demand ignored) `→ Evicted`
//!   (watts reclaimed, name blacklisted for the rest of the run).
//! * **Replay/veto/rate defense** — see [`crate::vet`]; every defense
//!   emits a typed telemetry Reason and a counter.

use crate::config::{CoordinatorConfig, PolicyKind};
use crate::vet::{FrameVerdict, NodeVet, Trust, VetConfig};
use crate::wire::{Frame, GrantKind};
use dufp_cluster::allocator::{AllocatorPolicy, DemandBased, NodeObservation, StaticSplit};
use dufp_telemetry::{Actuator, DecisionEvent, Reason, Telemetry};
use dufp_types::{Error, Result, Watts};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Where a node is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeState {
    /// Connected and reporting.
    Live,
    /// Sent Goodbye; its watts were (or will be) reclaimed.
    Departed,
    /// Missed heartbeats past the timeout; watts reclaimed.
    Dead,
    /// Thrown out by the quarantine ladder; watts reclaimed and its name
    /// refused readmission for the rest of the run.
    Evicted,
}

/// One allocator epoch, as recorded in the outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EpochRecord {
    /// Epoch number (1-based).
    pub epoch: u64,
    /// Milliseconds since the coordinator started serving.
    pub at_ms: u64,
    /// Ceilings granted this epoch, one per live node: `(name, watts)`.
    pub granted: Vec<(String, f64)>,
    /// Sum of all live grants (must never exceed the budget).
    pub total_granted: f64,
    /// Live nodes at the end of the epoch.
    pub live: usize,
    /// Nodes declared dead or departed *this* epoch.
    pub reclaimed: Vec<String>,
    /// Watts returned to the pool by this epoch's reclaims.
    pub reclaimed_watts: f64,
    /// Live nodes currently held in quarantine (capped at their floors).
    #[serde(default)]
    pub quarantined: Vec<String>,
    /// Nodes evicted by the trust ladder *this* epoch.
    #[serde(default)]
    pub evicted: Vec<String>,
}

/// One node in the core registry.
struct CoreNode {
    name: String,
    app: String,
    floor: Watts,
    node_max: Watts,
    state: NodeState,
    last_seen_ms: u64,
    /// Latest accepted demand report: (ceiling the agent enforces,
    /// consumption, still has work).
    report: Option<(Watts, Watts, bool)>,
    /// Last ceiling granted by the allocator (ZERO before the first
    /// grant — the agent self-enforces its safe cap until then).
    granted: Watts,
    /// Whether the reclaim for a non-Live node already ran.
    reclaimed: bool,
    vet: NodeVet,
}

/// What one core epoch asks the transport layer to do.
#[derive(Debug)]
pub struct EpochStep {
    /// The epoch's outcome record.
    pub record: EpochRecord,
    /// Grant frames to deliver, as `(slot, frame)` pairs.
    pub grants: Vec<(usize, Frame)>,
    /// Slots whose connections should be torn down (died or evicted this
    /// epoch).
    pub disconnects: Vec<usize>,
}

/// Snapshot of one node for outcome summaries.
#[derive(Debug, Clone)]
pub struct CoreNodeView {
    /// Node name from its Hello.
    pub name: String,
    /// Application queue it announced.
    pub app: String,
    /// Lifecycle state.
    pub state: NodeState,
    /// Trust ladder rung.
    pub trust: Trust,
    /// Last granted ceiling.
    pub granted: Watts,
}

/// The transport-independent coordinator brain. See the module docs.
pub struct FleetCore {
    budget: Watts,
    heartbeat_timeout_ms: u64,
    vet_cfg: VetConfig,
    policy: Box<dyn AllocatorPolicy>,
    policy_name: &'static str,
    nodes: Vec<CoreNode>,
    blacklist: HashSet<String>,
    epoch: u64,
    tel: Telemetry,
}

impl FleetCore {
    /// Builds a core from a validated coordinator configuration. The
    /// `listen` field is ignored — transport is the caller's business.
    pub fn new(cfg: &CoordinatorConfig, tel: Telemetry) -> Self {
        let policy: Box<dyn AllocatorPolicy> = match cfg.policy {
            PolicyKind::StaticSplit => Box::new(StaticSplit),
            PolicyKind::DemandBased => Box::new(DemandBased {
                floor: cfg.floor,
                node_max: cfg.node_max,
                ..DemandBased::default()
            }),
        };
        FleetCore {
            budget: cfg.budget,
            heartbeat_timeout_ms: cfg.heartbeat_timeout.as_millis() as u64,
            vet_cfg: cfg.vet,
            policy_name: cfg.policy.label(),
            policy,
            nodes: Vec::new(),
            blacklist: HashSet::new(),
            epoch: 0,
            tel,
        }
    }

    /// The allocator policy's display name.
    pub fn policy_name(&self) -> &'static str {
        self.policy_name
    }

    /// The global budget being served.
    pub fn budget(&self) -> Watts {
        self.budget
    }

    /// Epochs run so far.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Nodes ever admitted (any state).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Snapshot of every node for outcome summaries.
    pub fn views(&self) -> Vec<CoreNodeView> {
        self.nodes
            .iter()
            .map(|n| CoreNodeView {
                name: n.name.clone(),
                app: n.app.clone(),
                state: n.state,
                trust: n.vet.trust(),
                granted: n.granted,
            })
            .collect()
    }

    /// The trust rung of a slot (slots are stable for a run's lifetime).
    pub fn trust(&self, slot: usize) -> Option<Trust> {
        self.nodes.get(slot).map(|n| n.vet.trust())
    }

    /// Admits a node from its Hello, returning its slot. Refuses the
    /// same typed validation the configs use — non-finite or non-positive
    /// floors, a floor above the silicon limit — plus the eviction
    /// blacklist: an evicted name never gets back in.
    pub fn admit(
        &mut self,
        name: String,
        app: String,
        floor: Watts,
        node_max: Watts,
        now_ms: u64,
    ) -> Result<usize> {
        if !floor.value().is_finite()
            || floor.value() <= 0.0
            || !node_max.value().is_finite()
            || floor > node_max
        {
            self.tel.counter("admission_rejects_total").inc();
            return Err(Error::invalid(
                "hello",
                format!(
                    "implausible floor {} W / node_max {} W",
                    floor.value(),
                    node_max.value()
                ),
            ));
        }
        if self.blacklist.contains(&name) {
            self.tel.counter("admission_rejects_total").inc();
            return Err(Error::Precondition(format!(
                "node {name} was evicted; readmission refused"
            )));
        }
        self.nodes.push(CoreNode {
            name,
            app,
            floor,
            node_max,
            state: NodeState::Live,
            last_seen_ms: now_ms,
            report: None,
            granted: Watts::ZERO,
            reclaimed: false,
            vet: NodeVet::new(),
        });
        Ok(self.nodes.len() - 1)
    }

    /// Ingests a demand report. Returns what the vetting layer decided;
    /// only [`FrameVerdict::Accepted`] frames update the registry.
    pub fn on_report(
        &mut self,
        slot: usize,
        seq: u64,
        ceiling: Watts,
        consumption: Watts,
        active: bool,
        now_ms: u64,
    ) -> FrameVerdict {
        let Some(n) = self.nodes.get_mut(slot) else {
            return FrameVerdict::Vetoed;
        };
        if n.state != NodeState::Live {
            return FrameVerdict::Vetoed;
        }
        let granted = n.granted;
        let node_max = n.node_max;
        let verdict =
            n.vet
                .check_report(&self.vet_cfg, seq, ceiling, consumption, node_max, granted);
        match verdict {
            FrameVerdict::Accepted => {
                n.last_seen_ms = now_ms;
                n.report = Some((ceiling, consumption, active));
                self.tel.counter("reports_total").inc();
            }
            FrameVerdict::Duplicate => {
                // A lossy path duplicated the frame; the node is alive.
                n.last_seen_ms = now_ms;
                self.tel.counter("duplicate_frames_total").inc();
            }
            FrameVerdict::Replay => {
                n.last_seen_ms = now_ms;
                let last = n.vet.last_report_seq();
                self.tel.counter("replays_rejected_total").inc();
                self.record(
                    slot,
                    now_ms,
                    seq as f64,
                    last as f64,
                    Reason::ReplayRejected,
                );
            }
            FrameVerdict::RateLimited => {
                // Rate limiting throttles the allocator's inputs, not the
                // liveness detector: a storming node is still visibly
                // alive, so the heartbeat clock resets even though the
                // frame's content is dropped unprocessed.
                self.nodes[slot].last_seen_ms = now_ms;
                self.tel.counter("rate_limited_total").inc();
                // One event per node per epoch, not one per dropped frame
                // — a storm must not flood the telemetry ring.
                if self.nodes[slot].vet.just_hit_report_limit(&self.vet_cfg) {
                    let max = f64::from(self.vet_cfg.max_reports_per_epoch);
                    self.record(slot, now_ms, max + 1.0, max, Reason::RateLimited);
                }
            }
            FrameVerdict::Vetoed => {
                n.last_seen_ms = now_ms;
                self.tel.counter("demand_vetoes_total").inc();
                let shown = if consumption.value().is_finite() {
                    consumption.value()
                } else {
                    0.0
                };
                self.record(slot, now_ms, shown, 0.0, Reason::DemandVetoed);
            }
        }
        verdict
    }

    /// Ingests a heartbeat.
    pub fn on_heartbeat(&mut self, slot: usize, seq: u64, now_ms: u64) -> FrameVerdict {
        let Some(n) = self.nodes.get_mut(slot) else {
            return FrameVerdict::Vetoed;
        };
        if n.state != NodeState::Live {
            return FrameVerdict::Vetoed;
        }
        let verdict = n.vet.check_heartbeat(&self.vet_cfg, seq);
        match verdict {
            FrameVerdict::RateLimited => {
                // As in `on_report`: the storm is dropped, but the node
                // has proven it is alive.
                n.last_seen_ms = now_ms;
                self.tel.counter("rate_limited_total").inc();
            }
            FrameVerdict::Replay => {
                n.last_seen_ms = now_ms;
                self.tel.counter("replays_rejected_total").inc();
            }
            _ => {
                n.last_seen_ms = now_ms;
                self.tel.counter("heartbeats_total").inc();
            }
        }
        verdict
    }

    /// Marks a node cleanly departed.
    pub fn on_goodbye(&mut self, slot: usize) {
        if let Some(n) = self.nodes.get_mut(slot) {
            if n.state == NodeState::Live {
                n.state = NodeState::Departed;
            }
        }
    }

    /// One allocator epoch on the virtual clock: close the vetting epoch
    /// (trust transitions), detect dead nodes, reclaim watts, allocate
    /// under the conservation guard, and emit the grant frames for the
    /// transport to deliver. Deterministic given the registry state.
    pub fn epoch_once(&mut self, now_ms: u64) -> EpochStep {
        self.epoch += 1;
        let mut disconnects = Vec::new();
        let mut evicted_now = Vec::new();

        // Trust ladder transitions from the epoch's strike flags.
        for i in 0..self.nodes.len() {
            if self.nodes[i].state != NodeState::Live {
                continue;
            }
            let vet_cfg = self.vet_cfg;
            if let Some((old, new)) = self.nodes[i].vet.finalize_epoch(&vet_cfg) {
                let reason = if new == Trust::Evicted {
                    Reason::Evicted
                } else {
                    Reason::Quarantined
                };
                self.record(
                    i,
                    now_ms,
                    old.ordinal() as f64,
                    new.ordinal() as f64,
                    reason,
                );
                if new == Trust::Evicted {
                    let name = self.nodes[i].name.clone();
                    self.blacklist.insert(name.clone());
                    evicted_now.push(name);
                    self.nodes[i].state = NodeState::Evicted;
                    disconnects.push(i);
                    self.tel.counter("evictions_total").inc();
                } else if new == Trust::Quarantined {
                    self.tel.counter("quarantines_total").inc();
                }
            }
        }

        // Failure detection + reclaim.
        let mut reclaimed = Vec::new();
        let mut reclaimed_watts = 0.0;
        for i in 0..self.nodes.len() {
            let stale = {
                let n = &self.nodes[i];
                n.state == NodeState::Live
                    && now_ms.saturating_sub(n.last_seen_ms) > self.heartbeat_timeout_ms
            };
            if stale {
                self.nodes[i].state = NodeState::Dead;
                disconnects.push(i);
            }
            let n = &self.nodes[i];
            if n.state != NodeState::Live && !n.reclaimed {
                let had = n.granted.value();
                let name = n.name.clone();
                self.nodes[i].reclaimed = true;
                self.nodes[i].granted = Watts::ZERO;
                reclaimed.push(name);
                reclaimed_watts += had;
                self.tel.counter("budget_reclaims_total").inc();
                self.record(i, now_ms, had, 0.0, Reason::BudgetReclaim);
            }
        }

        // Split the live fleet: quarantined nodes are pinned at their
        // floors and their (untrusted) demand is excluded from the policy.
        let mut policy_slots = Vec::new();
        let mut quarantined_slots = Vec::new();
        for (i, n) in self.nodes.iter().enumerate() {
            if n.state != NodeState::Live {
                continue;
            }
            if n.vet.trust() >= Trust::Quarantined {
                quarantined_slots.push(i);
            } else {
                policy_slots.push(i);
            }
        }
        let quarantined_names: Vec<String> = quarantined_slots
            .iter()
            .map(|&i| self.nodes[i].name.clone())
            .collect();

        // Quarantined floors come off the top of the budget (scaled down
        // if even those oversubscribe it — conservation is absolute).
        let mut quar_ceilings: Vec<f64> = quarantined_slots
            .iter()
            .map(|&i| self.nodes[i].floor.value())
            .collect();
        let quar_total: f64 = quar_ceilings.iter().sum();
        if quar_total > self.budget.value() && quar_total > 0.0 {
            let scale = self.budget.value() / quar_total;
            for w in &mut quar_ceilings {
                *w *= scale;
            }
        }
        let remaining = (self.budget.value() - quar_ceilings.iter().sum::<f64>()).max(0.0);

        // Policy allocation over the trusted observations. A node that has
        // not reported yet is an idle consumer at its floor, so it is
        // funded (and counted against the budget) from its first epoch.
        let observations: Vec<NodeObservation> = policy_slots
            .iter()
            .map(|&i| {
                let n = &self.nodes[i];
                match n.report {
                    Some((ceiling, consumption, active)) => NodeObservation {
                        ceiling,
                        consumption,
                        active,
                    },
                    None => NodeObservation {
                        ceiling: n.granted.max(n.floor),
                        consumption: Watts::ZERO,
                        active: true,
                    },
                }
            })
            .collect();
        let mut ceilings: Vec<f64> = self
            .policy
            .allocate(Watts(remaining), &observations)
            .into_iter()
            .map(|w| w.value())
            .collect();
        let floors: Vec<f64> = policy_slots
            .iter()
            .map(|&i| self.nodes[i].floor.value())
            .collect();
        fit_into_budget(remaining, &floors, &mut ceilings);

        // Push grants; only changed ceilings produce frames.
        let mut grants = Vec::new();
        let mut granted = Vec::new();
        let mut total_granted = 0.0;
        let all_slots = policy_slots
            .iter()
            .copied()
            .zip(ceilings)
            .chain(quarantined_slots.iter().copied().zip(quar_ceilings));
        let mut per_slot: Vec<(usize, f64)> = all_slots.collect();
        per_slot.sort_by_key(|&(slot, _)| slot); // stable, transport-friendly order
        for (i, ceiling) in per_slot {
            let n = &mut self.nodes[i];
            // Watts above the node's announced silicon limit are unusable
            // there; keep them in the pool instead of granting them.
            let ceiling = Watts(ceiling).min(n.node_max);
            let old = n.granted;
            let kind = if ceiling >= old {
                GrantKind::Raise
            } else {
                GrantKind::Shrink
            };
            if (ceiling - old).abs() > Watts(1e-9) {
                grants.push((
                    i,
                    Frame::BudgetGrant {
                        epoch: self.epoch,
                        ceiling,
                        kind,
                    },
                ));
                let reason = match kind {
                    GrantKind::Raise => Reason::BudgetGrant,
                    GrantKind::Shrink => Reason::BudgetShrink,
                };
                let (o, c) = (old.value(), ceiling.value());
                n.granted = ceiling;
                self.tel.counter("grants_issued_total").inc();
                self.record(i, now_ms, o, c, reason);
            }
            let n = &self.nodes[i];
            granted.push((n.name.clone(), n.granted.value()));
            total_granted += n.granted.value();
        }

        let live = self
            .nodes
            .iter()
            .filter(|n| n.state == NodeState::Live)
            .count();
        EpochStep {
            record: EpochRecord {
                epoch: self.epoch,
                at_ms: now_ms,
                granted,
                total_granted,
                live,
                reclaimed,
                reclaimed_watts,
                quarantined: quarantined_names,
                evicted: evicted_now,
            },
            grants,
            disconnects,
        }
    }

    fn record(&self, slot: usize, now_ms: u64, old: f64, new: f64, reason: Reason) {
        self.tel.record_decision(DecisionEvent {
            tick: self.epoch,
            at_us: now_ms.saturating_mul(1000),
            socket: slot as u16,
            phase: 0,
            oi_class: None,
            flops_ratio: None,
            actuator: Actuator::Budget,
            old,
            new,
            reason,
        });
    }

    /// Whether every node that ever joined has left (any non-Live state).
    pub fn drained(&self) -> bool {
        !self.nodes.is_empty() && self.nodes.iter().all(|n| n.state != NodeState::Live)
    }
}

/// Floor-preserving conservation guard: scales `want` into `budget` by
/// shrinking only the above-floor portions; falls back to a proportional
/// scale of the floors themselves only when the floors alone exceed the
/// budget. No-op when the total already fits.
fn fit_into_budget(budget: f64, floors: &[f64], want: &mut [f64]) {
    let total: f64 = want.iter().sum();
    if total <= budget {
        return;
    }
    let floor_sum: f64 = floors.iter().sum();
    if floor_sum >= budget {
        if floor_sum > 0.0 {
            let scale = budget / floor_sum;
            for (w, f) in want.iter_mut().zip(floors) {
                *w = f * scale;
            }
        }
        return;
    }
    let above: f64 = want.iter().zip(floors).map(|(w, f)| (w - f).max(0.0)).sum();
    if above <= 0.0 {
        return;
    }
    let scale = (budget - floor_sum) / above;
    for (w, f) in want.iter_mut().zip(floors) {
        *w = f + (*w - f).max(0.0) * scale;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn cfg(budget: f64) -> CoordinatorConfig {
        CoordinatorConfig::new("virtual", Watts(budget)).with_epoch(Duration::from_millis(1000))
    }

    fn core(budget: f64) -> FleetCore {
        FleetCore::new(&cfg(budget), Telemetry::enabled())
    }

    fn admit(core: &mut FleetCore, name: &str) -> usize {
        core.admit(name.into(), "EP".into(), Watts(65.0), Watts(125.0), 0)
            .unwrap()
    }

    #[test]
    fn nan_demand_cannot_poison_the_allocator() {
        // Regression: before vetting, a NaN consumption propagated into
        // DemandBased's arithmetic and produced NaN ceilings fleet-wide.
        let mut core = core(300.0);
        let a = admit(&mut core, "honest");
        let b = admit(&mut core, "liar");
        core.on_report(a, 1, Watts(90.0), Watts(85.0), true, 500);
        core.on_report(b, 1, Watts(f64::NAN), Watts(f64::NAN), true, 500);
        let step = core.epoch_once(1000);
        assert!(
            step.record.total_granted.is_finite(),
            "{}",
            step.record.total_granted
        );
        for (name, w) in &step.record.granted {
            assert!(w.is_finite() && *w >= 0.0, "{name}: {w}");
        }
        assert!(step.record.total_granted <= 300.0 + 1e-6);
    }

    #[test]
    fn byzantine_node_is_quarantined_within_two_epochs_and_floored() {
        let mut core = core(300.0);
        let honest = admit(&mut core, "honest");
        let liar = admit(&mut core, "liar");
        for epoch in 1..=2u64 {
            core.on_report(
                honest,
                epoch,
                Watts(90.0),
                Watts(88.0),
                true,
                epoch * 1000 - 500,
            );
            core.on_report(
                liar,
                epoch,
                Watts(f64::NAN),
                Watts(-1.0),
                true,
                epoch * 1000 - 500,
            );
            core.epoch_once(epoch * 1000);
        }
        assert_eq!(core.trust(liar), Some(Trust::Quarantined));
        // Next epoch the quarantined node is pinned at its floor.
        core.on_report(honest, 3, Watts(90.0), Watts(88.0), true, 2500);
        core.on_report(liar, 3, Watts(f64::NAN), Watts(999.0), true, 2500);
        let step = core.epoch_once(3000);
        assert!(step.record.quarantined.contains(&"liar".to_string()));
        let liar_grant = step
            .record
            .granted
            .iter()
            .find(|(n, _)| n == "liar")
            .map(|(_, w)| *w)
            .unwrap();
        assert!((liar_grant - 65.0).abs() < 1e-6, "{liar_grant}");
        assert!(step.record.total_granted <= 300.0 + 1e-6);
    }

    #[test]
    fn persistent_byzantine_node_is_evicted_and_blacklisted() {
        let mut core = core(300.0);
        let liar = admit(&mut core, "liar");
        let mut evicted_epoch = None;
        for epoch in 1..=10u64 {
            core.on_report(
                liar,
                epoch,
                Watts(f64::NAN),
                Watts(0.0),
                true,
                epoch * 1000 - 1,
            );
            let step = core.epoch_once(epoch * 1000);
            if step.record.evicted.contains(&"liar".to_string()) {
                evicted_epoch = Some((epoch, step));
                break;
            }
        }
        let (epoch, step) = evicted_epoch.expect("persistent byzantine must be evicted");
        assert_eq!(epoch, 6, "one strike per epoch, evict_after=6");
        assert!(step.disconnects.contains(&liar));
        // The watts it held went back to the pool...
        assert!(step.record.reclaimed.contains(&"liar".to_string()));
        // ...and readmission under the same name is refused.
        let err = core
            .admit("liar".into(), "EP".into(), Watts(65.0), Watts(125.0), 7000)
            .unwrap_err();
        assert!(err.to_string().contains("evicted"), "{err}");
    }

    #[test]
    fn conservation_holds_when_floors_oversubscribe_the_budget() {
        let mut core = core(100.0); // two nodes × 65 W floor = 130 > 100
        let a = admit(&mut core, "a");
        let b = admit(&mut core, "b");
        core.on_report(a, 1, Watts(90.0), Watts(89.0), true, 500);
        core.on_report(b, 1, Watts(90.0), Watts(89.0), true, 500);
        let step = core.epoch_once(1000);
        assert!(
            step.record.total_granted <= 100.0 + 1e-6,
            "{}",
            step.record.total_granted
        );
    }

    #[test]
    fn floor_preserving_guard_shrinks_only_above_floor_portions() {
        let floors = [65.0, 65.0, 65.0];
        let mut want = [125.0, 125.0, 65.0];
        fit_into_budget(250.0, &floors, &mut want);
        let total: f64 = want.iter().sum();
        assert!((total - 250.0).abs() < 1e-9, "{total}");
        for (w, f) in want.iter().zip(floors) {
            assert!(*w >= f - 1e-9, "{w} below floor {f}");
        }
        assert!((want[2] - 65.0).abs() < 1e-9, "floor-rider untouched");
    }

    #[test]
    fn stale_nodes_die_and_their_watts_return() {
        let mut core = core(300.0);
        let a = admit(&mut core, "a");
        let b = admit(&mut core, "b");
        core.on_report(a, 1, Watts(90.0), Watts(85.0), true, 500);
        core.on_report(b, 1, Watts(90.0), Watts(85.0), true, 500);
        core.epoch_once(1000);
        // Only `a` keeps reporting; `b` goes silent past 1.5 s.
        core.on_report(a, 2, Watts(90.0), Watts(85.0), true, 1500);
        core.epoch_once(2000);
        core.on_report(a, 3, Watts(90.0), Watts(85.0), true, 2500);
        let step = core.epoch_once(3000);
        assert!(step.record.reclaimed.contains(&"b".to_string()));
        assert!(step.record.reclaimed_watts > 0.0);
        assert_eq!(step.record.live, 1);
    }

    #[test]
    fn admission_rejects_implausible_hellos() {
        let mut core = core(300.0);
        for (floor, max) in [
            (f64::NAN, 125.0),
            (0.0, 125.0),
            (-10.0, 125.0),
            (65.0, f64::NAN),
            (130.0, 125.0),
        ] {
            assert!(
                core.admit("x".into(), "EP".into(), Watts(floor), Watts(max), 0)
                    .is_err(),
                "floor={floor} max={max}"
            );
        }
        assert_eq!(core.node_count(), 0);
    }
}
