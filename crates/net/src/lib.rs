//! `dufp-net`: the networked fleet control plane.
//!
//! The in-process cluster simulation (`dufp-cluster`) proves the budget
//! allocation policies; this crate runs the same policies over a real
//! network boundary. A [`Coordinator`] owns the global power budget and
//! runs an [`dufp_cluster::allocator::AllocatorPolicy`] over live demand
//! reports; each [`Agent`] wraps a node-local simulated machine and DUFP
//! controller behind a [`dufp_cluster::budget::BudgetedCapper`] enforcing
//! the granted ceiling.
//!
//! Layering:
//!
//! ```text
//!   Coordinator ── epoch: detect dead → reclaim → allocate → grant
//!        │  ▲
//!  grants│  │demand reports / heartbeats        (wire: versioned,
//!        ▼  │                                    length-prefixed,
//!      Agent ── DUFP @200 ms under BudgetedCapper    CRC-protected)
//! ```
//!
//! Design invariants (DESIGN.md §12):
//!
//! * **Conservation** — the sum of granted ceilings never exceeds the
//!   global budget, at every epoch, even when floors oversubscribe it.
//! * **Reclamation** — a node that goes silent past the heartbeat timeout
//!   (default 1.5 allocator epochs) is declared dead and its watts return
//!   to the pool within two epochs of the failure.
//! * **Agent autonomy** — an agent outlives its coordinator: on
//!   connection loss it falls back to a safe local static cap and keeps
//!   running its jobs; on exit a [`dufp_control::SafeStateGuard`] restores
//!   platform defaults.
//! * **No trust in the wire** — every frame is CRC-checked and bounded
//!   (global and per-frame-type payload limits); a malformed frame drops
//!   the connection, never panics the process.
//! * **No trust in the agents** — every ingested frame passes demand
//!   vetting ([`vet`]): plausibility envelope, sequence monotonicity with
//!   replay rejection, per-epoch rate limits. Persistent misbehavior
//!   walks a quarantine ladder (suspect → capped at floor → evicted with
//!   watts reclaimed), so a byzantine minority cannot starve honest
//!   nodes or poison the allocator.
//! * **Determinism under chaos** — the coordinator brain ([`FleetCore`])
//!   is transport-independent and runs on a virtual clock; the [`chaos`]
//!   harness drives it through seeded adversarial scenarios
//!   ([`netfault`]) whose scorecards replay byte-identically per seed.
//! * **Coordinator high availability** (DESIGN.md §15) — the core's input
//!   events are journaled ([`fleet_journal`]) with periodic checkpoints,
//!   so a restarted or warm-standby coordinator rebuilds byte-identical
//!   state by checkpoint+replay; a monotonic coordination *term* carried
//!   in `Hello`/`BudgetGrant`/`Heartbeat` fences stale primaries, and a
//!   post-takeover hold-down keeps Σgranted ≤ budget *across* the
//!   handover window — a stale primary plus its successor can never
//!   double-spend the budget.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agent;
pub mod chaos;
pub mod config;
pub mod coordinator;
pub mod core;
pub mod fleet_journal;
pub mod netfault;
pub mod vet;
pub mod wire;

pub use agent::{Agent, AgentOutcome};
pub use chaos::{ChaosConfig, ChaosFleet, ScenarioScore, SCENARIOS};
pub use config::{AgentConfig, CoordinatorConfig, PolicyKind};
pub use coordinator::{
    run_standby, Coordinator, FleetOutcome, NodeSummary, STANDBY_PROBE_FAILURES,
};
pub use core::{
    CoreNodeView, CoreSnapshot, EpochRecord, EpochStep, FleetCore, NodeState, HANDOVER_HOLD_EPOCHS,
};
pub use fleet_journal::{
    journal_present, recover, FleetEvent, FleetJournal, Recovered, DEFAULT_FLEET_CHECKPOINT_EVERY,
};
pub use netfault::{Dir, NetFaultInjector, NetFaultOp, NetFaultPlan, NetFaultRule};
pub use vet::{FrameVerdict, NodeVet, Trust, VetConfig};
pub use wire::{Frame, FrameType, GrantKind, VERSION};
