//! `dufp-net`: the networked fleet control plane.
//!
//! The in-process cluster simulation (`dufp-cluster`) proves the budget
//! allocation policies; this crate runs the same policies over a real
//! network boundary. A [`Coordinator`] owns the global power budget and
//! runs an [`dufp_cluster::allocator::AllocatorPolicy`] over live demand
//! reports; each [`Agent`] wraps a node-local simulated machine and DUFP
//! controller behind a [`dufp_cluster::budget::BudgetedCapper`] enforcing
//! the granted ceiling.
//!
//! Layering:
//!
//! ```text
//!   Coordinator ── epoch: detect dead → reclaim → allocate → grant
//!        │  ▲
//!  grants│  │demand reports / heartbeats        (wire: versioned,
//!        ▼  │                                    length-prefixed,
//!      Agent ── DUFP @200 ms under BudgetedCapper    CRC-protected)
//! ```
//!
//! Design invariants (DESIGN.md §12):
//!
//! * **Conservation** — the sum of granted ceilings never exceeds the
//!   global budget, at every epoch, even when floors oversubscribe it.
//! * **Reclamation** — a node that goes silent past the heartbeat timeout
//!   (default 1.5 allocator epochs) is declared dead and its watts return
//!   to the pool within two epochs of the failure.
//! * **Agent autonomy** — an agent outlives its coordinator: on
//!   connection loss it falls back to a safe local static cap and keeps
//!   running its jobs; on exit a [`dufp_control::SafeStateGuard`] restores
//!   platform defaults.
//! * **No trust in the wire** — every frame is CRC-checked and bounded
//!   (global and per-frame-type payload limits); a malformed frame drops
//!   the connection, never panics the process.
//! * **No trust in the agents** — every ingested frame passes demand
//!   vetting ([`vet`]): plausibility envelope, sequence monotonicity with
//!   replay rejection, per-epoch rate limits. Persistent misbehavior
//!   walks a quarantine ladder (suspect → capped at floor → evicted with
//!   watts reclaimed), so a byzantine minority cannot starve honest
//!   nodes or poison the allocator.
//! * **Determinism under chaos** — the coordinator brain ([`FleetCore`])
//!   is transport-independent and runs on a virtual clock; the [`chaos`]
//!   harness drives it through seeded adversarial scenarios
//!   ([`netfault`]) whose scorecards replay byte-identically per seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agent;
pub mod chaos;
pub mod config;
pub mod coordinator;
pub mod core;
pub mod netfault;
pub mod vet;
pub mod wire;

pub use agent::{Agent, AgentOutcome};
pub use chaos::{ChaosConfig, ChaosFleet, ScenarioScore, SCENARIOS};
pub use config::{AgentConfig, CoordinatorConfig, PolicyKind};
pub use coordinator::{Coordinator, FleetOutcome, NodeSummary};
pub use core::{CoreNodeView, EpochRecord, EpochStep, FleetCore, NodeState};
pub use netfault::{Dir, NetFaultInjector, NetFaultOp, NetFaultPlan, NetFaultRule};
pub use vet::{FrameVerdict, NodeVet, Trust, VetConfig};
pub use wire::{Frame, FrameType, GrantKind, VERSION};
