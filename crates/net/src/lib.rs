//! `dufp-net`: the networked fleet control plane.
//!
//! The in-process cluster simulation (`dufp-cluster`) proves the budget
//! allocation policies; this crate runs the same policies over a real
//! network boundary. A [`Coordinator`] owns the global power budget and
//! runs an [`dufp_cluster::allocator::AllocatorPolicy`] over live demand
//! reports; each [`Agent`] wraps a node-local simulated machine and DUFP
//! controller behind a [`dufp_cluster::budget::BudgetedCapper`] enforcing
//! the granted ceiling.
//!
//! Layering:
//!
//! ```text
//!   Coordinator ── epoch: detect dead → reclaim → allocate → grant
//!        │  ▲
//!  grants│  │demand reports / heartbeats        (wire: versioned,
//!        ▼  │                                    length-prefixed,
//!      Agent ── DUFP @200 ms under BudgetedCapper    CRC-protected)
//! ```
//!
//! Design invariants (DESIGN.md §12):
//!
//! * **Conservation** — the sum of granted ceilings never exceeds the
//!   global budget, at every epoch, even when floors oversubscribe it.
//! * **Reclamation** — a node that goes silent past the heartbeat timeout
//!   (default 1.5 allocator epochs) is declared dead and its watts return
//!   to the pool within two epochs of the failure.
//! * **Agent autonomy** — an agent outlives its coordinator: on
//!   connection loss it falls back to a safe local static cap and keeps
//!   running its jobs; on exit a [`dufp_control::SafeStateGuard`] restores
//!   platform defaults.
//! * **No trust in the wire** — every frame is CRC-checked; a malformed
//!   frame drops the connection, never panics the process.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agent;
pub mod config;
pub mod coordinator;
pub mod wire;

pub use agent::{Agent, AgentOutcome};
pub use config::{AgentConfig, CoordinatorConfig, PolicyKind};
pub use coordinator::{Coordinator, EpochRecord, FleetOutcome, NodeState, NodeSummary};
pub use wire::{Frame, FrameType, GrantKind, VERSION};
