//! The node agent: a simulated single-socket machine running DUFP under a
//! [`BudgetedCapper`], reporting demand to the coordinator and enforcing
//! the ceilings it grants.
//!
//! The agent is built to survive the coordinator, not the other way
//! around. It connects with bounded retry/backoff; if the coordinator is
//! unreachable — at startup or mid-run — it degrades to its safe local
//! static cap ([`crate::AgentConfig::safe_cap`]), records a
//! `CoordinatorLost` decision, keeps running its job queue, and retries
//! the connection from its control loop. The hardware actuators sit
//! inside a [`SafeStateGuard`], so however the agent exits — drain, crash
//! switch, Ctrl-C — the socket's platform defaults are restored.
//!
//! A test-only crash switch ([`Agent::with_crash_switch`]) makes the agent
//! die the way SIGKILL would: the socket is torn down with no Goodbye and
//! the control loop stops mid-interval, which is exactly what the
//! coordinator's heartbeat timeout exists to detect.

use crate::config::AgentConfig;
use crate::wire::{Frame, GrantKind};
use dufp_cluster::budget::{BudgetedCapper, NodeBudget};
use dufp_control::{Actuators, ControlConfig, Controller, Dufp, HwActuators, SafeStateGuard};
use dufp_counters::{Sampler, Telemetry as CounterSource};
use dufp_rapl::MsrRapl;
use dufp_sim::{Machine, SimConfig};
use dufp_telemetry::{Actuator, DecisionEvent, Reason, Telemetry, TelemetryReport};
use dufp_types::{shutdown, Duration, Error, Result, Seconds, SocketId, Watts};
use dufp_workloads::{apps, MaterializeCtx};
use serde::{Deserialize, Serialize};
use std::io::Write as _;
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// The budget-enforcing RAPL stack under the agent's actuators.
type NodeCapper = Arc<BudgetedCapper<MsrRapl<Arc<Machine>>>>;

/// What one agent run produced.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AgentOutcome {
    /// Node name from the configuration.
    pub node: String,
    /// Job queue, joined for display.
    pub app: String,
    /// Whether the whole queue drained (false on crash, interval limit or
    /// shutdown).
    pub completed: bool,
    /// Simulated time until the queue drained, when it did.
    pub exec_time: Option<Seconds>,
    /// Average package power over the run.
    pub avg_power: Watts,
    /// The ceiling in force when the agent stopped.
    pub final_ceiling: Watts,
    /// Control intervals executed.
    pub intervals: u64,
    /// Demand reports delivered to the coordinator.
    pub reports_sent: u64,
    /// Budget grants applied from the coordinator.
    pub grants_applied: u64,
    /// Times the agent fell back to its safe local cap.
    pub degradations: u64,
    /// Whether the crash switch fired (no Goodbye was sent).
    pub crashed: bool,
    /// Decision trace + metrics for this node.
    pub telemetry: TelemetryReport,
}

/// Coordinator-link state shared with the grant-reader thread.
struct Link {
    budget: Arc<NodeBudget>,
    capper: NodeCapper,
    /// Reader saw EOF or a wire error: the coordinator is gone.
    lost: AtomicBool,
    /// Reader saw a Goodbye: the coordinator detached gracefully.
    goodbye: AtomicBool,
    grants_applied: AtomicU64,
    /// Highest grant epoch applied so far. A delayed, duplicated or
    /// replayed grant (epoch ≤ this) is ignored: ceilings only ever move
    /// on strictly newer coordinator decisions.
    last_grant_epoch: AtomicU64,
    tel: Telemetry,
}

/// The node agent. Build with [`Agent::new`], run with [`Agent::run`].
pub struct Agent {
    cfg: AgentConfig,
    crash: Option<Arc<AtomicBool>>,
    tel: Telemetry,
}

impl Agent {
    /// Validates `cfg` and prepares an agent (no I/O yet).
    pub fn new(cfg: AgentConfig) -> Result<Self> {
        cfg.validate()?;
        Ok(Agent {
            cfg,
            crash: None,
            tel: Telemetry::enabled(),
        })
    }

    /// Arms a test-only crash switch: when the flag goes true the agent
    /// tears its socket down with no Goodbye and stops mid-interval —
    /// indistinguishable, from the coordinator's side, from SIGKILL.
    pub fn with_crash_switch(mut self, switch: Arc<AtomicBool>) -> Self {
        self.crash = Some(switch);
        self
    }

    /// Replaces the telemetry collector (e.g. a disabled one for benches).
    pub fn with_telemetry(mut self, tel: Telemetry) -> Self {
        self.tel = tel;
        self
    }

    /// Runs the node to queue drain (or crash/limit/shutdown) and reports
    /// the outcome. Never panics — and never errors — on coordinator loss.
    pub fn run(self) -> Result<AgentOutcome> {
        let cfg = self.cfg;
        let tel = self.tel;
        let crash_switch = self.crash;

        // -- Node rig: the same stack crates/cluster assembles in-process.
        let sim = SimConfig::yeti_single_socket(cfg.seed);
        let arch = sim.arch.clone();
        let ctx = MaterializeCtx::from_arch(&arch);
        let machine = Arc::new(Machine::new(sim));
        let mut jobs = cfg
            .queue
            .iter()
            .map(|app| apps::by_name(app, &ctx))
            .collect::<Result<Vec<_>>>()?;
        machine.load_all(&jobs.remove(0));
        jobs.reverse(); // pop() yields the next job in order

        // Until the first grant lands the node self-enforces its safe cap.
        let budget = NodeBudget::try_new(cfg.safe_cap)?;
        let capper: NodeCapper = Arc::new(BudgetedCapper::new(
            MsrRapl::new(Arc::clone(&machine), 1, arch.cores_per_socket as usize)?,
            Arc::clone(&budget),
        ));
        let control_cfg = ControlConfig::from_arch(&arch, cfg.slowdown)?;
        let floor = control_cfg.cap_floor;
        let mut actuators = HwActuators::new(
            Arc::clone(&machine),
            Arc::clone(&capper),
            SocketId(0),
            0,
            control_cfg.clone(),
        )?;
        actuators.reset_cap()?;
        let mut guard = SafeStateGuard::new(actuators).with_telemetry(tel.for_socket(0));
        let mut controller = Dufp::new(control_cfg).with_telemetry(tel.for_socket(0));
        let mut sampler = Sampler::new();
        sampler.sample(machine.as_ref(), SocketId(0))?;

        let link = Arc::new(Link {
            budget: Arc::clone(&budget),
            capper: Arc::clone(&capper),
            lost: AtomicBool::new(false),
            goodbye: AtomicBool::new(false),
            grants_applied: AtomicU64::new(0),
            last_grant_epoch: AtomicU64::new(0),
            tel: tel.clone(),
        });

        // -- Coordinator link, with retry. Failure is not fatal: the agent
        // runs standalone at its safe cap and keeps retrying below.
        let hello = Frame::Hello {
            node: cfg.node.clone(),
            floor,
            node_max: cfg.node_max,
            app: cfg.queue.join("+"),
        };
        let mut readers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        let mut degradations: u64 = 0;
        let mut stream = connect_with_retry(&cfg)
            .and_then(|s| attach(s, &hello, &link, &mut readers))
            .ok();
        if stream.is_none() {
            degradations += 1;
            record_loss(&tel, 0, cfg.safe_cap.value(), cfg.safe_cap.value());
        }

        // -- Control loop (mirrors crates/cluster's interval loop).
        let interval = Duration::from_millis(200);
        let tick = machine.config().tick;
        let ticks_per_interval = (interval.as_micros() / tick.as_micros()).max(1);
        let report_period = cfg.report_intervals as f64 * interval.as_seconds().value();
        let mut elapsed = Seconds(0.0);
        let mut intervals: u64 = 0;
        let mut seq: u64 = 0;
        let mut reports_sent: u64 = 0;
        let mut finished_at: Option<Seconds> = None;
        let mut power_sum = 0.0;
        let mut power_samples: u64 = 0;
        let mut last_report_energy = machine.sample(SocketId(0))?.pkg_energy.value();
        let mut reconnect_attempt: u32 = 0;
        let mut next_reconnect = Instant::now();
        let mut crashed = false;

        loop {
            if shutdown::requested() {
                break;
            }
            // The crash switch dies the SIGKILL way: socket torn down, no
            // Goodbye, loop abandoned mid-flight.
            if crash_switch
                .as_ref()
                .is_some_and(|s| s.load(Ordering::Relaxed))
            {
                crashed = true;
                if let Some(s) = stream.take() {
                    let _ = s.shutdown(Shutdown::Both);
                }
                break;
            }

            // Advance the machine one monitoring interval.
            for _ in 0..ticks_per_interval {
                machine.tick();
            }
            elapsed += interval.as_seconds();
            intervals += 1;
            if elapsed.value() > 3600.0 {
                return Err(Error::Precondition("agent run exceeded 1 h".into()));
            }

            // Node-local DUFP decision; a drained machine pulls the next
            // queued job.
            if finished_at.is_none() && machine.done() {
                match jobs.pop() {
                    Some(next) => machine.load_all(&next),
                    None => finished_at = Some(elapsed),
                }
            }
            if let Some(m) = sampler.sample(machine.as_ref(), SocketId(0))? {
                power_sum += m.pkg_power.value();
                power_samples += 1;
                if finished_at.is_none() {
                    controller.on_interval(&m, &mut *guard)?;
                }
            }

            // Demand report (doubles as the heartbeat).
            if intervals.is_multiple_of(cfg.report_intervals as u64) {
                if let Some(s) = stream.as_mut() {
                    let snap = machine.sample(SocketId(0))?;
                    let consumed = snap.pkg_energy.value() - last_report_energy;
                    last_report_energy = snap.pkg_energy.value();
                    seq += 1;
                    let frame = Frame::DemandReport {
                        seq,
                        ceiling: budget.ceiling(),
                        consumption: Watts(consumed / report_period),
                        active: finished_at.is_none(),
                    };
                    match frame.write_to(s).and_then(|()| Ok(s.flush()?)) {
                        Ok(()) => reports_sent += 1,
                        Err(_) => link.lost.store(true, Ordering::Relaxed),
                    }
                }
            }

            // Coordinator loss or graceful detach: fall back to the safe
            // local cap so a stale (possibly generous) grant cannot
            // outlive its grantor.
            let detached = link.goodbye.swap(false, Ordering::Relaxed);
            if link.lost.swap(false, Ordering::Relaxed) || detached {
                if let Some(s) = stream.take() {
                    let _ = s.shutdown(Shutdown::Both);
                }
                let old = budget.ceiling();
                budget.set_ceiling(cfg.safe_cap);
                capper.enforce_ceiling(SocketId(0))?;
                degradations += 1;
                tel.counter("coordinator_losses_total").inc();
                record_loss(&tel, intervals, old.value(), cfg.safe_cap.value());
                reconnect_attempt = 0;
                next_reconnect = if detached {
                    // A Goodbye is deliberate; do not chase the coordinator.
                    Instant::now() + std::time::Duration::from_secs(86_400)
                } else {
                    Instant::now() + cfg.retry.backoff_jittered(1, cfg.seed)
                };
            }

            // Background reconnect, bounded by the retry policy.
            if stream.is_none()
                && reconnect_attempt < cfg.retry.max_retries
                && Instant::now() >= next_reconnect
            {
                reconnect_attempt += 1;
                match TcpStream::connect(&cfg.connect)
                    .map_err(Error::from)
                    .and_then(|s| attach(s, &hello, &link, &mut readers))
                {
                    Ok(s) => {
                        stream = Some(s);
                        tel.counter("reconnects_total").inc();
                    }
                    Err(_) => {
                        next_reconnect = Instant::now()
                            + cfg.retry.backoff_jittered(reconnect_attempt + 1, cfg.seed);
                    }
                }
            }

            if finished_at.is_some() {
                break;
            }
            if cfg.max_intervals.is_some_and(|max| intervals >= max) {
                break;
            }
            if !cfg.pace.is_zero() {
                std::thread::sleep(cfg.pace);
            }
        }

        // Graceful exit: tell the coordinator the node is done so its
        // watts are redistributed immediately instead of by timeout.
        if !crashed {
            if let Some(mut s) = stream.take() {
                seq += 1;
                let bye = Frame::DemandReport {
                    seq,
                    ceiling: budget.ceiling(),
                    consumption: Watts::ZERO,
                    active: false,
                };
                let _ = bye.write_to(&mut s);
                let _ = Frame::Goodbye.write_to(&mut s);
                let _ = s.flush();
                let _ = s.shutdown(Shutdown::Both);
            }
        }
        for h in readers {
            let _ = h.join();
        }
        let final_ceiling = budget.ceiling();
        drop(guard); // restore platform defaults before reporting

        Ok(AgentOutcome {
            node: cfg.node,
            app: cfg.queue.join("+"),
            completed: finished_at.is_some(),
            exec_time: finished_at,
            avg_power: Watts(power_sum / power_samples.max(1) as f64),
            final_ceiling,
            intervals,
            reports_sent,
            grants_applied: link.grants_applied.load(Ordering::Relaxed),
            degradations,
            crashed,
            telemetry: tel.report(),
        })
    }
}

/// Initial connect honoring the agent's retry policy.
fn connect_with_retry(cfg: &AgentConfig) -> Result<TcpStream> {
    let mut attempt = 0;
    loop {
        match TcpStream::connect(&cfg.connect) {
            Ok(s) => return Ok(s),
            Err(e) => {
                attempt += 1;
                if attempt > cfg.retry.max_retries {
                    return Err(e.into());
                }
                std::thread::sleep(cfg.retry.backoff_jittered(attempt, cfg.seed));
            }
        }
    }
}

/// Sends the Hello and spawns the grant-reader thread for `stream`.
fn attach(
    stream: TcpStream,
    hello: &Frame,
    link: &Arc<Link>,
    readers: &mut Vec<std::thread::JoinHandle<()>>,
) -> Result<TcpStream> {
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    hello.write_to(&mut writer)?;
    writer.flush()?;
    let reader = stream.try_clone()?;
    let link = Arc::clone(link);
    readers.push(std::thread::spawn(move || reader_loop(reader, link)));
    Ok(writer)
}

/// Applies coordinator frames until the connection dies or says Goodbye.
fn reader_loop(mut stream: TcpStream, link: Arc<Link>) {
    loop {
        match Frame::read_from(&mut stream) {
            Ok(Some(Frame::BudgetGrant {
                epoch,
                ceiling,
                kind,
            })) => {
                // Epoch monotonicity: a stale grant (delayed in flight,
                // duplicated, or replayed by a hostile middlebox) must
                // never roll the ceiling back over a newer decision.
                let prev = link.last_grant_epoch.load(Ordering::Relaxed);
                if epoch <= prev {
                    link.tel.counter("stale_grants_ignored_total").inc();
                    continue;
                }
                link.last_grant_epoch.store(epoch, Ordering::Relaxed);
                let old = link.budget.ceiling();
                link.budget.set_ceiling(ceiling);
                if link.capper.enforce_ceiling(SocketId(0)).is_err() {
                    link.tel.counter("enforce_failures_total").inc();
                }
                link.grants_applied.fetch_add(1, Ordering::Relaxed);
                link.tel.record_decision(DecisionEvent {
                    tick: epoch,
                    at_us: 0,
                    socket: 0,
                    phase: 0,
                    oi_class: None,
                    flops_ratio: None,
                    actuator: Actuator::Budget,
                    old: old.value(),
                    new: ceiling.value(),
                    reason: match kind {
                        GrantKind::Raise => Reason::BudgetGrant,
                        GrantKind::Shrink => Reason::BudgetShrink,
                    },
                });
            }
            Ok(Some(Frame::Goodbye)) => {
                link.goodbye.store(true, Ordering::Relaxed);
                break;
            }
            Ok(Some(_)) => {
                // Agent-to-coordinator frames arriving here mean a confused
                // peer; treat like loss.
                link.lost.store(true, Ordering::Relaxed);
                break;
            }
            Ok(None) | Err(_) => {
                link.lost.store(true, Ordering::Relaxed);
                break;
            }
        }
    }
}

/// Records a CoordinatorLost decision (ceiling `old` → safe cap `new`).
fn record_loss(tel: &Telemetry, tick: u64, old: f64, new: f64) {
    tel.record_decision(DecisionEvent {
        tick,
        at_us: 0,
        socket: 0,
        phase: 0,
        oi_class: None,
        flops_ratio: None,
        actuator: Actuator::Budget,
        old,
        new,
        reason: Reason::CoordinatorLost,
    });
}
