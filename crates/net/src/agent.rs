//! The node agent: a simulated single-socket machine running DUFP under a
//! [`BudgetedCapper`], reporting demand to the coordinator and enforcing
//! the ceilings it grants.
//!
//! The agent is built to survive the coordinator, not the other way
//! around. It connects with bounded retry/backoff; if the coordinator is
//! unreachable — at startup or mid-run — it degrades to its safe local
//! static cap ([`crate::AgentConfig::safe_cap`]), records a
//! `CoordinatorLost` decision, keeps running its job queue, and retries
//! the connection from its control loop. The hardware actuators sit
//! inside a [`SafeStateGuard`], so however the agent exits — drain, crash
//! switch, Ctrl-C — the socket's platform defaults are restored.
//!
//! A test-only crash switch ([`Agent::with_crash_switch`]) makes the agent
//! die the way SIGKILL would: the socket is torn down with no Goodbye and
//! the control loop stops mid-interval, which is exactly what the
//! coordinator's heartbeat timeout exists to detect.

use crate::config::AgentConfig;
use crate::wire::{Frame, GrantKind};
use dufp_cluster::budget::{BudgetedCapper, NodeBudget};
use dufp_control::{Actuators, ControlConfig, Controller, Dufp, HwActuators, SafeStateGuard};
use dufp_counters::{Sampler, Telemetry as CounterSource};
use dufp_rapl::MsrRapl;
use dufp_sim::{Machine, SimConfig};
use dufp_telemetry::{Actuator, DecisionEvent, Reason, Telemetry, TelemetryReport};
use dufp_types::{shutdown, Duration, Error, Result, Seconds, SocketId, Watts};
use dufp_workloads::{apps, MaterializeCtx};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::io::Write as _;
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// The budget-enforcing RAPL stack under the agent's actuators.
type NodeCapper = Arc<BudgetedCapper<MsrRapl<Arc<Machine>>>>;

/// What one agent run produced.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AgentOutcome {
    /// Node name from the configuration.
    pub node: String,
    /// Job queue, joined for display.
    pub app: String,
    /// Whether the whole queue drained (false on crash, interval limit or
    /// shutdown).
    pub completed: bool,
    /// Simulated time until the queue drained, when it did.
    pub exec_time: Option<Seconds>,
    /// Average package power over the run.
    pub avg_power: Watts,
    /// The ceiling in force when the agent stopped.
    pub final_ceiling: Watts,
    /// Control intervals executed.
    pub intervals: u64,
    /// Demand reports delivered to the coordinator.
    pub reports_sent: u64,
    /// Budget grants applied from the coordinator.
    pub grants_applied: u64,
    /// Times the agent fell back to its safe local cap.
    pub degradations: u64,
    /// Graceful `Handover` frames followed to a successor coordinator.
    #[serde(default)]
    pub handovers: u64,
    /// Grants discarded because they carried a coordination term below
    /// the highest this agent has seen (split-brain fencing).
    #[serde(default)]
    pub stale_term_grants: u64,
    /// Highest coordination term observed over the run.
    #[serde(default)]
    pub max_term: u64,
    /// Whether the crash switch fired (no Goodbye was sent).
    pub crashed: bool,
    /// Decision trace + metrics for this node.
    pub telemetry: TelemetryReport,
}

/// Coordinator-link state shared with the grant-reader thread.
struct Link {
    budget: Arc<NodeBudget>,
    capper: NodeCapper,
    /// Reader saw EOF or a wire error: the coordinator is gone.
    lost: AtomicBool,
    /// Reader saw a Goodbye: the coordinator detached gracefully.
    goodbye: AtomicBool,
    /// Reader saw a Handover: reconnect to this successor, skipping the
    /// disconnect degradation (the new term fences stale grants anyway).
    handover: Mutex<Option<String>>,
    grants_applied: AtomicU64,
    /// Highest `(term, epoch)` applied so far, compared lexicographically:
    /// a delayed, duplicated or replayed grant — including one from a
    /// fenced ex-primary whose epoch counter ran ahead — never rolls the
    /// ceiling back over a newer coordinator decision.
    last_applied: Mutex<(u64, u64)>,
    /// Highest coordination term seen in any frame. Grants below it are
    /// discarded: only the latest coordinator incarnation is obeyed.
    max_term: AtomicU64,
    /// Grants discarded by term fencing.
    stale_term_grants: AtomicU64,
    tel: Telemetry,
}

/// Round-robin reconnect schedule over the primary and its standbys.
///
/// Attempt `i` targets `targets[i % len]`, so a dead (or resurrected,
/// stale) primary cannot capture every retry — the rotation finds a
/// promoted standby within one lap. The attempt counter zeroes whenever a
/// session is actually *established* (a Hello handshake completed), not
/// merely whenever a loss is noticed: an agent that reconnected
/// successfully starts its next outage at the bottom of the backoff
/// ladder, not wherever the previous outage left it.
struct ReconnectPlan {
    targets: Vec<String>,
    attempt: u32,
    next_at: Instant,
    /// Cleared by a Goodbye: the detach was deliberate, stop chasing.
    chasing: bool,
}

impl ReconnectPlan {
    fn new(cfg: &AgentConfig) -> Self {
        let mut targets = vec![cfg.connect.clone()];
        for s in &cfg.standbys {
            if !targets.contains(s) {
                targets.push(s.clone());
            }
        }
        ReconnectPlan {
            targets,
            attempt: 0,
            next_at: Instant::now(),
            chasing: true,
        }
    }

    /// The address the next attempt should dial.
    fn target(&self) -> &str {
        &self.targets[self.attempt as usize % self.targets.len()]
    }

    /// Per-outage attempt budget: the policy's retry count applies to
    /// *each* candidate coordinator, not the rotation as a whole.
    fn budget(&self, retry: &dufp_control::RetryPolicy) -> u32 {
        retry.max_retries.saturating_mul(self.targets.len() as u32)
    }

    fn due(&self, retry: &dufp_control::RetryPolicy) -> bool {
        self.chasing && self.attempt < self.budget(retry) && Instant::now() >= self.next_at
    }

    fn exhausted(&self, retry: &dufp_control::RetryPolicy) -> bool {
        self.chasing && self.attempt >= self.budget(retry)
    }

    /// A Hello handshake completed: reset the ladder.
    fn on_established(&mut self) {
        self.attempt = 0;
        self.chasing = true;
    }

    /// A connection (or attach) attempt failed: climb the ladder.
    fn on_failure(&mut self, retry: &dufp_control::RetryPolicy, seed: u64) {
        self.attempt += 1;
        self.next_at = Instant::now() + retry.backoff_jittered(self.attempt, seed);
    }

    /// The link died: restart the ladder after one base backoff.
    fn on_loss(&mut self, retry: &dufp_control::RetryPolicy, seed: u64) {
        self.attempt = 0;
        self.chasing = true;
        self.next_at = Instant::now() + retry.backoff_jittered(1, seed);
    }

    /// A handover named `successor`: dial it first, immediately.
    fn prefer(&mut self, successor: String) {
        self.targets.retain(|t| t != &successor);
        self.targets.insert(0, successor);
        self.attempt = 0;
        self.chasing = true;
        self.next_at = Instant::now();
    }

    /// A deliberate Goodbye: do not chase the coordinator.
    fn halt(&mut self) {
        self.chasing = false;
    }
}

/// The node agent. Build with [`Agent::new`], run with [`Agent::run`].
pub struct Agent {
    cfg: AgentConfig,
    crash: Option<Arc<AtomicBool>>,
    tel: Telemetry,
}

impl Agent {
    /// Validates `cfg` and prepares an agent (no I/O yet).
    pub fn new(cfg: AgentConfig) -> Result<Self> {
        cfg.validate()?;
        Ok(Agent {
            cfg,
            crash: None,
            tel: Telemetry::enabled(),
        })
    }

    /// Arms a test-only crash switch: when the flag goes true the agent
    /// tears its socket down with no Goodbye and stops mid-interval —
    /// indistinguishable, from the coordinator's side, from SIGKILL.
    pub fn with_crash_switch(mut self, switch: Arc<AtomicBool>) -> Self {
        self.crash = Some(switch);
        self
    }

    /// Replaces the telemetry collector (e.g. a disabled one for benches).
    pub fn with_telemetry(mut self, tel: Telemetry) -> Self {
        self.tel = tel;
        self
    }

    /// Runs the node to queue drain (or crash/limit/shutdown) and reports
    /// the outcome. Never panics — and never errors — on coordinator loss.
    pub fn run(self) -> Result<AgentOutcome> {
        let cfg = self.cfg;
        let tel = self.tel;
        let crash_switch = self.crash;

        // -- Node rig: the same stack crates/cluster assembles in-process.
        let sim = SimConfig::yeti_single_socket(cfg.seed);
        let arch = sim.arch.clone();
        let ctx = MaterializeCtx::from_arch(&arch);
        let machine = Arc::new(Machine::new(sim));
        let mut jobs = cfg
            .queue
            .iter()
            .map(|app| apps::by_name(app, &ctx))
            .collect::<Result<Vec<_>>>()?;
        machine.load_all(&jobs.remove(0));
        jobs.reverse(); // pop() yields the next job in order

        // Until the first grant lands the node self-enforces its safe cap.
        let budget = NodeBudget::try_new(cfg.safe_cap)?;
        let capper: NodeCapper = Arc::new(BudgetedCapper::new(
            MsrRapl::new(Arc::clone(&machine), 1, arch.cores_per_socket as usize)?,
            Arc::clone(&budget),
        ));
        let control_cfg = ControlConfig::from_arch(&arch, cfg.slowdown)?;
        let floor = control_cfg.cap_floor;
        let mut actuators = HwActuators::new(
            Arc::clone(&machine),
            Arc::clone(&capper),
            SocketId(0),
            0,
            control_cfg.clone(),
        )?;
        actuators.reset_cap()?;
        let mut guard = SafeStateGuard::new(actuators).with_telemetry(tel.for_socket(0));
        let mut controller = Dufp::new(control_cfg).with_telemetry(tel.for_socket(0));
        let mut sampler = Sampler::new();
        sampler.sample(machine.as_ref(), SocketId(0))?;

        let link = Arc::new(Link {
            budget: Arc::clone(&budget),
            capper: Arc::clone(&capper),
            lost: AtomicBool::new(false),
            goodbye: AtomicBool::new(false),
            handover: Mutex::new(None),
            grants_applied: AtomicU64::new(0),
            last_applied: Mutex::new((0, 0)),
            max_term: AtomicU64::new(0),
            stale_term_grants: AtomicU64::new(0),
            tel: tel.clone(),
        });

        // -- Coordinator link, with retry. Failure is not fatal: the agent
        // runs standalone at its safe cap and keeps retrying below. The
        // Hello is rebuilt per attach so it carries the highest term seen —
        // re-announcing a successor's term to whatever answers fences a
        // resurrected stale primary on contact.
        let make_hello = |link: &Link| Frame::Hello {
            node: cfg.node.clone(),
            floor,
            node_max: cfg.node_max,
            app: cfg.queue.join("+"),
            term: link.max_term.load(Ordering::Relaxed),
        };
        let mut readers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        let mut degradations: u64 = 0;
        let mut handovers: u64 = 0;
        let mut plan = ReconnectPlan::new(&cfg);
        let mut stream = connect_with_retry(&cfg, &mut plan)
            .and_then(|s| attach(s, &make_hello(&link), &link, &mut readers))
            .ok();
        if stream.is_some() {
            plan.on_established();
        } else {
            degradations += 1;
            record_loss(&tel, 0, cfg.safe_cap.value(), cfg.safe_cap.value());
        }

        // -- Control loop (mirrors crates/cluster's interval loop).
        let interval = Duration::from_millis(200);
        let tick = machine.config().tick;
        let ticks_per_interval = (interval.as_micros() / tick.as_micros()).max(1);
        let report_period = cfg.report_intervals as f64 * interval.as_seconds().value();
        let mut elapsed = Seconds(0.0);
        let mut intervals: u64 = 0;
        let mut seq: u64 = 0;
        let mut reports_sent: u64 = 0;
        let mut finished_at: Option<Seconds> = None;
        let mut power_sum = 0.0;
        let mut power_samples: u64 = 0;
        let mut last_report_energy = machine.sample(SocketId(0))?.pkg_energy.value();
        let mut crashed = false;

        loop {
            if shutdown::requested() {
                break;
            }
            // The crash switch dies the SIGKILL way: socket torn down, no
            // Goodbye, loop abandoned mid-flight.
            if crash_switch
                .as_ref()
                .is_some_and(|s| s.load(Ordering::Relaxed))
            {
                crashed = true;
                if let Some(s) = stream.take() {
                    let _ = s.shutdown(Shutdown::Both);
                }
                break;
            }

            // Advance the machine one monitoring interval.
            for _ in 0..ticks_per_interval {
                machine.tick();
            }
            elapsed += interval.as_seconds();
            intervals += 1;
            if elapsed.value() > 3600.0 {
                return Err(Error::Precondition("agent run exceeded 1 h".into()));
            }

            // Node-local DUFP decision; a drained machine pulls the next
            // queued job.
            if finished_at.is_none() && machine.done() {
                match jobs.pop() {
                    Some(next) => machine.load_all(&next),
                    None => finished_at = Some(elapsed),
                }
            }
            if let Some(m) = sampler.sample(machine.as_ref(), SocketId(0))? {
                power_sum += m.pkg_power.value();
                power_samples += 1;
                if finished_at.is_none() {
                    controller.on_interval(&m, &mut *guard)?;
                }
            }

            // Demand report (doubles as the heartbeat).
            if intervals.is_multiple_of(cfg.report_intervals as u64) {
                if let Some(s) = stream.as_mut() {
                    let snap = machine.sample(SocketId(0))?;
                    let consumed = snap.pkg_energy.value() - last_report_energy;
                    last_report_energy = snap.pkg_energy.value();
                    seq += 1;
                    let frame = Frame::DemandReport {
                        seq,
                        ceiling: budget.ceiling(),
                        consumption: Watts(consumed / report_period),
                        active: finished_at.is_none(),
                    };
                    match frame.write_to(s).and_then(|()| Ok(s.flush()?)) {
                        Ok(()) => reports_sent += 1,
                        Err(_) => link.lost.store(true, Ordering::Relaxed),
                    }
                }
            }

            // Graceful handover: the coordinator named its successor, so
            // skip the loss degradation — the ceiling in force stays (the
            // successor's hold-down reserves it, and its higher term
            // fences any stale grant) and the reconnect rotation dials the
            // successor first. The write path may have flagged the closed
            // socket as lost in the same interval; the handover wins.
            if let Some(successor) = link.handover.lock().take() {
                link.lost.store(false, Ordering::Relaxed);
                if let Some(s) = stream.take() {
                    let _ = s.shutdown(Shutdown::Both);
                }
                handovers += 1;
                tel.counter("handovers_followed_total").inc();
                plan.prefer(successor);
            }

            // Coordinator loss or graceful detach: fall back to the safe
            // local cap so a stale (possibly generous) grant cannot
            // outlive its grantor.
            let detached = link.goodbye.swap(false, Ordering::Relaxed);
            if link.lost.swap(false, Ordering::Relaxed) || detached {
                if let Some(s) = stream.take() {
                    let _ = s.shutdown(Shutdown::Both);
                }
                let old = budget.ceiling();
                budget.set_ceiling(cfg.safe_cap);
                capper.enforce_ceiling(SocketId(0))?;
                degradations += 1;
                tel.counter("coordinator_losses_total").inc();
                record_loss(&tel, intervals, old.value(), cfg.safe_cap.value());
                if detached {
                    // A Goodbye is deliberate; do not chase the coordinator.
                    plan.halt();
                } else {
                    plan.on_loss(&cfg.retry, cfg.seed);
                }
            }

            // Background reconnect, round-robin over the primary and its
            // standbys, bounded by the retry policy (per target).
            if stream.is_none() && plan.due(&cfg.retry) {
                match TcpStream::connect(plan.target())
                    .map_err(Error::from)
                    .and_then(|s| attach(s, &make_hello(&link), &link, &mut readers))
                {
                    Ok(s) => {
                        stream = Some(s);
                        plan.on_established();
                        tel.counter("reconnects_total").inc();
                    }
                    Err(_) => plan.on_failure(&cfg.retry, cfg.seed),
                }
            } else if stream.is_none() && plan.exhausted(&cfg.retry) && handovers > 0 {
                // A followed handover kept the granted ceiling while
                // chasing the successor; if the chase dies, the grantor is
                // truly gone — degrade like any other loss.
                let old = budget.ceiling();
                if old != cfg.safe_cap {
                    budget.set_ceiling(cfg.safe_cap);
                    capper.enforce_ceiling(SocketId(0))?;
                    degradations += 1;
                    tel.counter("coordinator_losses_total").inc();
                    record_loss(&tel, intervals, old.value(), cfg.safe_cap.value());
                }
            }

            if finished_at.is_some() {
                break;
            }
            if cfg.max_intervals.is_some_and(|max| intervals >= max) {
                break;
            }
            if !cfg.pace.is_zero() {
                std::thread::sleep(cfg.pace);
            }
        }

        // Graceful exit: tell the coordinator the node is done so its
        // watts are redistributed immediately instead of by timeout.
        if !crashed {
            if let Some(mut s) = stream.take() {
                seq += 1;
                let bye = Frame::DemandReport {
                    seq,
                    ceiling: budget.ceiling(),
                    consumption: Watts::ZERO,
                    active: false,
                };
                let _ = bye.write_to(&mut s);
                let _ = Frame::Goodbye.write_to(&mut s);
                let _ = s.flush();
                let _ = s.shutdown(Shutdown::Both);
            }
        }
        for h in readers {
            let _ = h.join();
        }
        let final_ceiling = budget.ceiling();
        drop(guard); // restore platform defaults before reporting

        Ok(AgentOutcome {
            node: cfg.node,
            app: cfg.queue.join("+"),
            completed: finished_at.is_some(),
            exec_time: finished_at,
            avg_power: Watts(power_sum / power_samples.max(1) as f64),
            final_ceiling,
            intervals,
            reports_sent,
            grants_applied: link.grants_applied.load(Ordering::Relaxed),
            degradations,
            handovers,
            stale_term_grants: link.stale_term_grants.load(Ordering::Relaxed),
            max_term: link.max_term.load(Ordering::Relaxed),
            crashed,
            telemetry: tel.report(),
        })
    }
}

/// Initial connect honoring the agent's retry policy, rotating over the
/// primary and its standbys like every later reconnect.
fn connect_with_retry(cfg: &AgentConfig, plan: &mut ReconnectPlan) -> Result<TcpStream> {
    loop {
        match TcpStream::connect(plan.target()) {
            Ok(s) => return Ok(s),
            Err(e) => {
                plan.on_failure(&cfg.retry, cfg.seed);
                if plan.exhausted(&cfg.retry) {
                    return Err(e.into());
                }
                std::thread::sleep(cfg.retry.backoff_jittered(plan.attempt, cfg.seed));
            }
        }
    }
}

/// Sends the Hello and spawns the grant-reader thread for `stream`.
fn attach(
    stream: TcpStream,
    hello: &Frame,
    link: &Arc<Link>,
    readers: &mut Vec<std::thread::JoinHandle<()>>,
) -> Result<TcpStream> {
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    hello.write_to(&mut writer)?;
    writer.flush()?;
    let reader = stream.try_clone()?;
    let link = Arc::clone(link);
    readers.push(std::thread::spawn(move || reader_loop(reader, link)));
    Ok(writer)
}

/// Applies coordinator frames until the connection dies or says Goodbye.
fn reader_loop(mut stream: TcpStream, link: Arc<Link>) {
    loop {
        match Frame::read_from(&mut stream) {
            Ok(Some(Frame::BudgetGrant {
                epoch,
                ceiling,
                kind,
                term,
            })) => {
                // Term fencing first: a grant from below the highest term
                // seen is a stale ex-primary's — obeying it would let a
                // split brain double-spend the budget.
                let seen = link.max_term.fetch_max(term, Ordering::Relaxed);
                if term < seen {
                    link.stale_term_grants.fetch_add(1, Ordering::Relaxed);
                    link.tel.counter("stale_term_grants_fenced_total").inc();
                    link.tel.record_decision(DecisionEvent {
                        tick: epoch,
                        at_us: 0,
                        socket: 0,
                        phase: 0,
                        oi_class: None,
                        flops_ratio: None,
                        actuator: Actuator::Budget,
                        old: term as f64,
                        new: seen as f64,
                        reason: Reason::TermFenced,
                    });
                    continue;
                }
                // Then `(term, epoch)` monotonicity: a delayed, duplicated
                // or replayed grant — even one whose fenced sender's epoch
                // counter ran ahead of its successor's — must never roll
                // the ceiling back over a newer decision.
                {
                    let mut last = link.last_applied.lock();
                    if (term, epoch) <= *last {
                        link.tel.counter("stale_grants_ignored_total").inc();
                        continue;
                    }
                    *last = (term, epoch);
                }
                let old = link.budget.ceiling();
                link.budget.set_ceiling(ceiling);
                if link.capper.enforce_ceiling(SocketId(0)).is_err() {
                    link.tel.counter("enforce_failures_total").inc();
                }
                link.grants_applied.fetch_add(1, Ordering::Relaxed);
                link.tel.record_decision(DecisionEvent {
                    tick: epoch,
                    at_us: 0,
                    socket: 0,
                    phase: 0,
                    oi_class: None,
                    flops_ratio: None,
                    actuator: Actuator::Budget,
                    old: old.value(),
                    new: ceiling.value(),
                    reason: match kind {
                        GrantKind::Raise => Reason::BudgetGrant,
                        GrantKind::Shrink => Reason::BudgetShrink,
                    },
                });
            }
            Ok(Some(Frame::Handover { successor, term })) => {
                // The coordinator is leaving on purpose and named its
                // heir: adopt the heir's term now so nothing older is
                // obeyed, and let the control loop re-home immediately —
                // no disconnect grace, no safe-cap dip.
                link.max_term.fetch_max(term, Ordering::Relaxed);
                *link.handover.lock() = Some(successor);
                link.tel.counter("handovers_received_total").inc();
                break;
            }
            Ok(Some(Frame::Goodbye)) => {
                link.goodbye.store(true, Ordering::Relaxed);
                break;
            }
            Ok(Some(_)) => {
                // Agent-to-coordinator frames arriving here mean a confused
                // peer; treat like loss.
                link.lost.store(true, Ordering::Relaxed);
                break;
            }
            Ok(None) | Err(_) => {
                link.lost.store(true, Ordering::Relaxed);
                break;
            }
        }
    }
}

/// Records a CoordinatorLost decision (ceiling `old` → safe cap `new`).
fn record_loss(tel: &Telemetry, tick: u64, old: f64, new: f64) {
    tel.record_decision(DecisionEvent {
        tick,
        at_us: 0,
        socket: 0,
        phase: 0,
        oi_class: None,
        flops_ratio: None,
        actuator: Actuator::Budget,
        old,
        new,
        reason: Reason::CoordinatorLost,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan_over(addrs: &[&str]) -> ReconnectPlan {
        let mut cfg = AgentConfig::new(addrs[0], "n0", "EP");
        cfg.standbys = addrs[1..].iter().map(|s| s.to_string()).collect();
        ReconnectPlan::new(&cfg)
    }

    #[test]
    fn reconnect_attempts_rotate_round_robin_over_standbys() {
        let retry = dufp_control::RetryPolicy::default();
        let mut plan = plan_over(&["p:1", "s:2", "s:3"]);
        let mut dialed = Vec::new();
        while !plan.exhausted(&retry) {
            dialed.push(plan.target().to_string());
            plan.on_failure(&retry, 7);
        }
        assert_eq!(dialed.len(), (retry.max_retries * 3) as usize);
        assert_eq!(&dialed[..3], &["p:1", "s:2", "s:3"]);
        assert_eq!(&dialed[3..6], &["p:1", "s:2", "s:3"]);
    }

    #[test]
    fn backoff_ladder_resets_once_a_session_is_established() {
        let retry = dufp_control::RetryPolicy::default();
        let mut plan = plan_over(&["p:1"]);
        // An outage that exhausts the ladder...
        for _ in 0..retry.max_retries {
            plan.on_failure(&retry, 7);
        }
        assert!(plan.exhausted(&retry));
        // ...then a successful handshake: the next outage starts at the
        // bottom of the ladder (the old bug left `attempt` saturated).
        plan.on_established();
        assert_eq!(plan.attempt, 0);
        plan.on_loss(&retry, 7);
        assert!(!plan.exhausted(&retry));
        assert_eq!(plan.target(), "p:1");
    }

    #[test]
    fn handover_successor_is_dialed_first_and_goodbye_halts() {
        let retry = dufp_control::RetryPolicy::default();
        let mut plan = plan_over(&["p:1", "s:2"]);
        plan.on_failure(&retry, 7);
        plan.prefer("s:2".into());
        assert_eq!(plan.target(), "s:2");
        assert_eq!(plan.targets.len(), 2, "prefer() must not duplicate");
        plan.halt();
        assert!(!plan.due(&retry) && !plan.exhausted(&retry));
    }

    #[test]
    fn duplicate_standby_addresses_collapse() {
        let plan = plan_over(&["p:1", "p:1", "s:2"]);
        assert_eq!(plan.targets, vec!["p:1".to_string(), "s:2".to_string()]);
    }
}
