//! The deterministic adversarial fleet soak: seeded chaos scenarios over
//! an in-process fleet, scored into a resilience scorecard.
//!
//! A [`ChaosFleet`] drives the same [`FleetCore`] brain the TCP
//! coordinator runs, but over a virtual, epoch-granular transport: every
//! frame an agent or the coordinator sends is an encoded byte buffer in a
//! per-peer queue, and a seeded [`NetFaultInjector`] decides each frame's
//! fate (drop, delay, duplicate, corrupt, reorder) plus link partitions,
//! agent kills and byzantine behaviors. There is no wall clock, no
//! thread, no socket: epoch `e` *is* `now_ms = e × 1000`, the loop is
//! single-threaded, and every random draw comes from SplitMix64 streams
//! keyed on the run seed — so one seed replays the entire soak, scorecard
//! included, byte-identically.
//!
//! Each scenario run checks the fleet's hard invariants every epoch:
//!
//! * **Conservation** — `Σ granted ≤ budget`, always, under any abuse.
//! * **Honest floors** — no live, non-quarantined honest agent is ever
//!   granted less than its floor.
//! * **Quarantine latency** — a lying agent reaches the quarantine rung
//!   within two epochs of its first effective lie.
//! * **Reclaim latency** — a killed agent's watts return to the pool
//!   within two epochs.
//! * **Safe-cap fallback** — an agent partitioned or disconnected past a
//!   grace period enforces its safe local cap.
//!
//! The result is one [`ScenarioScore`] per scenario; [`run_matrix`] runs
//! the built-in [`SCENARIOS`] and ranks them. `dufp chaos` is the CLI
//! face; CI fails the build on any conservation or floor violation.

use crate::config::CoordinatorConfig;
use crate::core::{FleetCore, NodeState};
use crate::netfault::{Dir, NetFaultInjector, NetFaultOp, NetFaultPlan};
use crate::vet::Trust;
use crate::wire::Frame;
use dufp_msr::fault::{FaultInjector, FaultOp, FaultPlan};
use dufp_msr::registers::MSR_PKG_POWER_LIMIT;
use dufp_telemetry::Telemetry;
use dufp_types::{Error, Result, Watts};
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// How a chaos soak is shaped. Defaults match the CI matrix: 8 agents,
/// 40 virtual epochs, a 700 W budget over 65 W floors and 125 W silicon
/// limits, 90 W safe local caps.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Master seed: keys every random stream in the soak.
    pub seed: u64,
    /// Fleet size (agent indices are the plan's `peer=` space).
    pub agents: usize,
    /// Virtual epochs to run (one allocator epoch each).
    pub epochs: u64,
    /// Global fleet budget.
    pub budget: Watts,
    /// Per-node floor.
    pub floor: Watts,
    /// Per-node silicon limit.
    pub node_max: Watts,
    /// Safe local cap an agent enforces while disconnected.
    pub safe_cap: Watts,
    /// Extra network-fault rules merged into every scenario's plan
    /// (`--net-fault-plan`).
    pub extra_net: NetFaultPlan,
    /// Actuation-fault plan (`--fault-plan`): a `write` fault on the cap
    /// register of "cpu" *i* at clock *e* makes agent *i* fail to apply
    /// its grant at epoch *e*.
    pub msr_plan: FaultPlan,
}

impl ChaosConfig {
    /// The default CI-matrix shape under `seed`.
    pub fn new(seed: u64) -> Self {
        ChaosConfig {
            seed,
            agents: 8,
            epochs: 40,
            budget: Watts(700.0),
            floor: Watts(65.0),
            node_max: Watts(125.0),
            safe_cap: Watts(90.0),
            extra_net: NetFaultPlan::none(),
            msr_plan: FaultPlan::none(),
        }
    }

    /// Rejects shapes the soak cannot run.
    pub fn validate(&self) -> Result<()> {
        if self.agents == 0 {
            return Err(Error::invalid("agents", "empty fleet"));
        }
        if self.epochs == 0 {
            return Err(Error::invalid("epochs", "zero epochs"));
        }
        if self.agents > u16::MAX as usize {
            return Err(Error::invalid(
                "agents",
                format!("{} is absurd", self.agents),
            ));
        }
        // Budget/floor/node_max plausibility rides on the coordinator
        // config validation inside run().
        Ok(())
    }
}

/// One built-in adversarial scenario: a name and a net-fault plan over
/// the default 8-agent fleet.
#[derive(Debug, Clone, Copy)]
pub struct Scenario {
    /// Scenario name (scorecard key).
    pub name: &'static str,
    /// What it proves.
    pub summary: &'static str,
    /// The scenario's net-fault plan (the seed comes from the run).
    pub plan: &'static str,
    /// Oscillate every honest agent's demand floor↔node_max each epoch.
    pub thrash: bool,
}

/// The built-in scenario matrix `dufp chaos` and CI run.
pub const SCENARIOS: &[Scenario] = &[
    Scenario {
        name: "baseline",
        summary: "honest lossless fleet: the control case",
        plan: "",
        thrash: false,
    },
    Scenario {
        name: "byzantine-minority",
        summary: "three liars (NaN, inflated, overdrawing) among eight",
        plan: "byz-nan,peer=0;byz-inflate,peer=1;byz-overdraw,peer=2",
        thrash: false,
    },
    Scenario {
        name: "cascading-kills",
        summary: "three agents die in a stagger and stay down",
        plan: "kill,peer=0,window=8+40;kill,peer=1,window=12+40;kill,peer=2,window=16+40",
        thrash: false,
    },
    Scenario {
        name: "frame-chaos",
        summary: "lossy wire: drops, corruption, delays, duplicates",
        plan: "drop,p=0.05;corrupt,p=0.05;delay,p=0.1,n=1;dup,p=0.05",
        thrash: false,
    },
    Scenario {
        name: "partition-heal",
        summary: "two agents partitioned for six epochs, then healed",
        plan: "partition,peer=0-1,dir=both,window=10+6",
        thrash: false,
    },
    Scenario {
        name: "replay-storm",
        summary: "two replaying agents behind a duplicating, reordering wire",
        plan: "byz-replay,peer=0-1,n=5;dup,p=0.2;reorder,p=0.2",
        thrash: false,
    },
    Scenario {
        name: "thrashing-demand",
        summary: "every agent slams demand floor-to-max each epoch",
        plan: "",
        thrash: true,
    },
];

/// Looks up a built-in scenario by name.
pub fn scenario(name: &str) -> Option<&'static Scenario> {
    SCENARIOS.iter().find(|s| s.name == name)
}

/// One scenario's resilience scorecard line (serialized as JSONL).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioScore {
    /// Scenario name.
    pub scenario: String,
    /// Run seed (the whole line is a pure function of it).
    pub seed: u64,
    /// Fleet size.
    pub agents: usize,
    /// Virtual epochs run.
    pub epochs: u64,
    /// Budget served.
    pub budget_w: f64,
    /// `Σ granted ≤ budget` held at every epoch.
    pub conservation_ok: bool,
    /// Epochs where conservation broke (must be 0).
    pub conservation_violations: u64,
    /// Every live, non-quarantined honest agent kept ≥ its floor.
    pub floor_ok: bool,
    /// (agent, epoch) floor violations (must be 0).
    pub floor_violations: u64,
    /// Agents the plan ever turns byzantine.
    pub byz_total: usize,
    /// Byzantine agents that reached quarantine (or eviction).
    pub byz_quarantined: usize,
    /// Slowest lie-to-quarantine latency in epochs (None: no byzantines).
    pub max_quarantine_delay: Option<u64>,
    /// Slowest kill-to-reclaim latency in epochs (None: no kills).
    pub max_time_to_reclaim: Option<u64>,
    /// Slowest partition-heal-to-applied-grant latency in epochs
    /// (None: no partitions).
    pub max_time_to_heal: Option<u64>,
    /// Epochs where a disconnected agent exceeded its safe cap past the
    /// grace period (must be 0).
    pub safe_cap_violations: u64,
    /// Frames the chaos transport discarded (drops + partition losses).
    pub frames_dropped: u64,
    /// Frames the chaos transport bit-flipped.
    pub frames_corrupted: u64,
    /// Frames rejected at decode (CRC/bound failures; corruption caught).
    pub wire_errors: u64,
    /// Nodes the trust ladder evicted.
    pub evictions: u64,
    /// 0–100 ranking score (see [`ScenarioScore::score_of`]).
    pub score: f64,
}

impl ScenarioScore {
    /// The ranking formula: start at 100; conservation breaks cost 50
    /// each, floor breaks 25, an unquarantined byzantine 10, a safe-cap
    /// violation 5, and slow reclaim (> 2 epochs) or slow heal (> 3
    /// epochs) 5 each; clamped at 0.
    pub fn score_of(&self) -> f64 {
        let mut score = 100.0;
        score -= 50.0 * self.conservation_violations as f64;
        score -= 25.0 * self.floor_violations as f64;
        score -= 10.0 * (self.byz_total.saturating_sub(self.byz_quarantined)) as f64;
        score -= 5.0 * self.safe_cap_violations as f64;
        if self.max_time_to_reclaim.is_some_and(|t| t > 2) {
            score -= 5.0;
        }
        if self.max_time_to_heal.is_some_and(|t| t > 3) {
            score -= 5.0;
        }
        score.max(0.0)
    }
}

/// A queued frame: the epoch it becomes deliverable, and its bytes.
type Queued = (u64, Vec<u8>);

/// Epochs an agent tolerates without a live coordinator link before it
/// falls back to the safe local cap.
const DISCONNECT_GRACE_EPOCHS: u64 = 2;

/// One simulated agent in the chaos fleet.
struct SimAgent {
    idx: usize,
    name: String,
    rng: u64,
    /// Wandering honest demand in watts.
    demand: f64,
    /// The ceiling the agent currently enforces.
    ceiling: f64,
    /// Last grant applied (coordinator epoch, watts); replay-rejected
    /// grants (epoch ≤ last) never reach the capper.
    last_grant_epoch: u64,
    granted: Option<f64>,
    report_seq: u64,
    heartbeat_seq: u64,
    alive: bool,
    /// Coordinator slot, once a Hello was accepted.
    slot: Option<usize>,
    /// Admission permanently refused (evicted name).
    rejected: bool,
    /// First epoch of the current no-link stretch (partition or closed
    /// socket), if any.
    disconnected_since: Option<u64>,
    /// Pending kill start, for the reclaim-latency metric.
    killed_at: Option<u64>,
    /// Epoch the last partition ended, until the next applied grant.
    heal_started: Option<u64>,
    /// First epoch this agent actually sent distorted traffic.
    first_lie: Option<u64>,
    up: Vec<Queued>,
    down: Vec<Queued>,
}

impl SimAgent {
    fn new(idx: usize, cfg: &ChaosConfig) -> Self {
        let mut rng = cfg
            .seed
            .wrapping_add((idx as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let span = cfg.node_max.value() - cfg.floor.value();
        let demand = cfg.floor.value() + next_uniform(&mut rng) * span;
        SimAgent {
            idx,
            name: format!("n{idx}"),
            rng,
            demand,
            ceiling: cfg.safe_cap.value(),
            last_grant_epoch: 0,
            granted: None,
            report_seq: 0,
            heartbeat_seq: 0,
            alive: true,
            slot: None,
            rejected: false,
            disconnected_since: None,
            killed_at: None,
            heal_started: None,
            first_lie: None,
            up: Vec::new(),
            down: Vec::new(),
        }
    }

    /// Process-death reset: queues flushed, sequence counters restart.
    fn die(&mut self, epoch: u64) {
        self.alive = false;
        if self.killed_at.is_none() {
            self.killed_at = Some(epoch);
        }
        self.slot = None;
        self.up.clear();
        self.down.clear();
    }

    fn restart(&mut self, cfg: &ChaosConfig) {
        self.alive = true;
        self.report_seq = 0;
        self.heartbeat_seq = 0;
        self.last_grant_epoch = 0;
        self.granted = None;
        self.ceiling = cfg.safe_cap.value();
        self.disconnected_since = None;
    }
}

/// Aggregated chaos-transport tallies.
#[derive(Debug, Default)]
struct Tallies {
    frames_dropped: u64,
    frames_corrupted: u64,
    wire_errors: u64,
    conservation_violations: u64,
    floor_violations: u64,
    safe_cap_violations: u64,
}

/// The deterministic in-process chaos fleet. Build one per scenario run;
/// [`ChaosFleet::run`] consumes it and returns the scorecard line.
pub struct ChaosFleet {
    cfg: ChaosConfig,
    scenario_name: String,
    thrash: bool,
    core: FleetCore,
    net: NetFaultInjector,
    msr: FaultInjector,
    agents: Vec<SimAgent>,
    /// Maps coordinator slots back to agent indices.
    slot_owner: Vec<usize>,
    tallies: Tallies,
    first_quarantined: Vec<Option<u64>>,
    max_reclaim: Option<u64>,
    max_heal: Option<u64>,
    max_quarantine_delay: Option<u64>,
}

impl ChaosFleet {
    /// Assembles a fleet for one built-in scenario under `cfg`.
    pub fn new(cfg: ChaosConfig, scenario: &Scenario) -> Result<Self> {
        let plan = NetFaultPlan::parse(scenario.plan)?;
        Self::from_plan(cfg, scenario.name, plan, scenario.thrash)
    }

    /// Assembles a fleet for an arbitrary (e.g. user-supplied) fault plan.
    /// The plan and the config's extra rules are merged; the plan seed is
    /// the run seed (scenario plans never carry their own).
    pub fn from_plan(
        cfg: ChaosConfig,
        name: impl Into<String>,
        mut plan: NetFaultPlan,
        thrash: bool,
    ) -> Result<Self> {
        cfg.validate()?;
        plan.seed = cfg.seed;
        plan.rules.extend(cfg.extra_net.rules.iter().copied());
        let mut coord_cfg =
            CoordinatorConfig::new("chaos:virtual", cfg.budget).with_epoch(Duration::from_secs(1));
        coord_cfg.floor = cfg.floor;
        coord_cfg.node_max = cfg.node_max;
        coord_cfg.validate()?;
        let mut msr_plan = cfg.msr_plan.clone();
        msr_plan.seed = msr_plan.seed.wrapping_add(cfg.seed);
        let agents = (0..cfg.agents).map(|i| SimAgent::new(i, &cfg)).collect();
        Ok(ChaosFleet {
            core: FleetCore::new(&coord_cfg, Telemetry::enabled()),
            net: NetFaultInjector::new(plan),
            msr: FaultInjector::new(msr_plan),
            agents,
            slot_owner: Vec::new(),
            tallies: Tallies::default(),
            first_quarantined: vec![None; cfg.agents],
            max_reclaim: None,
            max_heal: None,
            max_quarantine_delay: None,
            scenario_name: name.into(),
            thrash,
            cfg,
        })
    }

    /// Runs the soak to completion and scores it.
    pub fn run(mut self) -> ScenarioScore {
        for epoch in 1..=self.cfg.epochs {
            self.step(epoch);
        }
        self.score()
    }

    /// One virtual epoch: kills/restarts, agent sends, frame delivery,
    /// the core's allocator epoch, grant fan-out, invariant checks.
    fn step(&mut self, epoch: u64) {
        // Topology: kills and restarts.
        for i in 0..self.agents.len() {
            let killed = self.net.killed(i, epoch);
            if killed && self.agents[i].alive {
                self.agents[i].die(epoch);
            } else if !killed && !self.agents[i].alive {
                let cfg = self.cfg.clone();
                self.agents[i].restart(&cfg);
            }
        }

        // Agents act: notice link state, apply queued grants, report.
        for i in 0..self.agents.len() {
            self.agent_step(i, epoch);
        }

        // Deliver up-frames to the coordinator, in agent order. Frames
        // arrive "mid-epoch" so a frame sent in epoch e beats the epoch-e
        // allocator close, matching the TCP plane's report-then-allocate
        // cadence.
        let ingest_ms = epoch * 1000 - 500;
        for i in 0..self.agents.len() {
            let due: Vec<Vec<u8>> = drain_due(&mut self.agents[i].up, epoch);
            for bytes in due {
                self.ingest(i, &bytes, ingest_ms, epoch);
            }
        }

        // The allocator epoch.
        let step = self.core.epoch_once(epoch * 1000);

        // Coordinator-side disconnects close the agent's link.
        for &slot in &step.disconnects {
            if let Some(&owner) = self.slot_owner.get(slot) {
                if self.agents[owner].slot == Some(slot) {
                    self.agents[owner].slot = None;
                }
            }
        }

        // Grant fan-out through the chaotic down-links.
        for (slot, frame) in &step.grants {
            let Some(&owner) = self.slot_owner.get(*slot) else {
                continue;
            };
            if self.agents[owner].slot != Some(*slot) {
                continue; // link already closed
            }
            self.send_down(owner, frame, epoch);
        }

        // Invariants and latency metrics for this epoch.
        self.check_epoch(&step.record, epoch);
    }

    /// One agent's actions for `epoch`.
    fn agent_step(&mut self, i: usize, epoch: u64) {
        if !self.agents[i].alive {
            return;
        }
        let up_cut = self.net.partitioned(i, Dir::Up, epoch);
        let down_cut = self.net.partitioned(i, Dir::Down, epoch);
        let partitioned = up_cut || down_cut;

        // Link-state bookkeeping: a partition (stand-in for TCP timeouts)
        // or a closed socket starts the disconnect clock; a healthy link
        // clears it. Healing a partition starts the heal-latency clock.
        {
            let a = &mut self.agents[i];
            let linkless = partitioned || a.slot.is_none();
            match (linkless, a.disconnected_since) {
                (true, None) => a.disconnected_since = Some(epoch),
                (false, Some(_)) => a.disconnected_since = None,
                _ => {}
            }
            if !partitioned
                && a.heal_started.is_none()
                && epoch > 1
                && (self.net.partitioned(i, Dir::Up, epoch - 1)
                    || self.net.partitioned(i, Dir::Down, epoch - 1))
            {
                a.heal_started = Some(epoch);
            }
        }

        // Apply deliverable grants (epoch-monotonic, unless the MSR fault
        // plan says this epoch's cap write fails).
        let due = drain_due(&mut self.agents[i].down, epoch);
        for bytes in due {
            let frame = match Frame::decode(&bytes) {
                Ok(f) => f,
                Err(_) => {
                    self.tallies.wire_errors += 1;
                    continue;
                }
            };
            match frame {
                Frame::BudgetGrant {
                    epoch: grant_epoch,
                    ceiling,
                    ..
                } => {
                    let a = &mut self.agents[i];
                    if grant_epoch <= a.last_grant_epoch {
                        continue; // stale or replayed grant
                    }
                    if self
                        .msr
                        .should_fail_at(FaultOp::Write, i, MSR_PKG_POWER_LIMIT, Some(epoch))
                    {
                        continue; // actuation failed; grant not enforced
                    }
                    a.last_grant_epoch = grant_epoch;
                    a.granted = Some(ceiling.value());
                    a.ceiling = ceiling.value();
                    if let Some(healed) = a.heal_started.take() {
                        let delay = epoch.saturating_sub(healed);
                        self.max_heal = Some(self.max_heal.unwrap_or(0).max(delay));
                    }
                }
                Frame::Goodbye => {
                    self.agents[i].slot = None;
                }
                _ => self.tallies.wire_errors += 1,
            }
        }

        // Safe-cap fallback after the grace period without a link.
        {
            let a = &mut self.agents[i];
            if let Some(since) = a.disconnected_since {
                if epoch.saturating_sub(since) >= DISCONNECT_GRACE_EPOCHS {
                    if a.ceiling > self.cfg.safe_cap.value() + 1e-9 {
                        // The fallback itself: clamp to the safe cap. An
                        // agent that failed to do so would be violating.
                        a.ceiling = self.cfg.safe_cap.value();
                    }
                    if a.ceiling > self.cfg.safe_cap.value() + 1e-9 {
                        self.tallies.safe_cap_violations += 1;
                    }
                }
            }
        }

        // Demand model: seeded wander, or floor↔max thrash.
        {
            let a = &mut self.agents[i];
            let (lo, hi) = (self.cfg.floor.value(), self.cfg.node_max.value());
            a.demand = if self.thrash {
                if epoch.is_multiple_of(2) {
                    lo
                } else {
                    hi
                }
            } else {
                (a.demand + (next_uniform(&mut a.rng) - 0.5) * 20.0).clamp(lo, hi)
            };
        }

        // Outbound traffic. A severed up-link swallows everything sent.
        let byz = self.net.byz_ops(i, epoch);
        if self.agents[i].rejected {
            return;
        }
        if self.agents[i].slot.is_none() && !up_cut {
            let hello = Frame::Hello {
                node: self.agents[i].name.clone(),
                floor: self.cfg.floor,
                node_max: self.cfg.node_max,
                app: "chaos".to_string(),
            };
            self.send_up(i, &hello, epoch, up_cut);
        }

        // The demand report (possibly distorted).
        let flapping = byz.contains(&NetFaultOp::ByzFlap);
        let silent_flap = flapping && epoch.is_multiple_of(2);
        if !silent_flap {
            self.agents[i].report_seq += 1;
            let seq = self.agents[i].report_seq;
            let honest_ceiling = self.agents[i].ceiling;
            let honest_consumption = self.agents[i].demand.min(honest_ceiling);
            let granted = self.agents[i].granted;
            let mut lied = false;
            let ten_x = self.cfg.node_max.value() * 10.0;
            let (mut c, mut k) = (honest_ceiling, honest_consumption);
            for op in &byz {
                match op {
                    NetFaultOp::ByzInflate => {
                        (c, k) = (ten_x, ten_x);
                        lied = true;
                    }
                    NetFaultOp::ByzNan => {
                        k = f64::NAN;
                        lied = true;
                    }
                    NetFaultOp::ByzNegative => {
                        k = -42.0;
                        lied = true;
                    }
                    NetFaultOp::ByzOverdraw => {
                        // Claim compliance with the grant while reporting a
                        // consumption that overdraws it — kept inside the
                        // plausibility envelope so only the overdraw rule
                        // can catch it.
                        if let Some(g) = granted {
                            c = g;
                            k = (2.0 * g).min(self.cfg.node_max.value() * 1.2);
                            lied = true;
                        }
                    }
                    _ => {}
                }
            }
            if lied && self.agents[i].first_lie.is_none() {
                self.agents[i].first_lie = Some(epoch);
            }
            let report = Frame::DemandReport {
                seq,
                ceiling: Watts(c),
                consumption: Watts(k),
                active: true,
            };
            self.send_up(i, &report, epoch, up_cut);

            // Replayed stale frames, beyond what reordering could excuse.
            if byz.contains(&NetFaultOp::ByzReplay) && seq > 1 {
                if self.agents[i].first_lie.is_none() {
                    self.agents[i].first_lie = Some(epoch);
                }
                let stale_seq = seq.saturating_sub(3);
                let n = self.net.byz_replay_count(i, epoch).max(1);
                for _ in 0..n {
                    let stale = Frame::DemandReport {
                        seq: stale_seq,
                        ceiling: Watts(honest_ceiling),
                        consumption: Watts(honest_consumption),
                        active: true,
                    };
                    self.send_up(i, &stale, epoch, up_cut);
                }
            }
        }

        // Heartbeats: one per epoch, or a storm on flapping epochs.
        let heartbeats = if flapping && !silent_flap { 40 } else { 1 };
        if !silent_flap {
            for _ in 0..heartbeats {
                self.agents[i].heartbeat_seq += 1;
                let hb = Frame::Heartbeat {
                    seq: self.agents[i].heartbeat_seq,
                };
                self.send_up(i, &hb, epoch, up_cut);
            }
        }
    }

    /// Queues one up-frame through the chaos transport.
    fn send_up(&mut self, i: usize, frame: &Frame, epoch: u64, up_cut: bool) {
        if up_cut {
            self.tallies.frames_dropped += 1;
            return;
        }
        let fate = self.net.fate(i, Dir::Up, epoch);
        if fate.drop {
            self.tallies.frames_dropped += 1;
            return;
        }
        let mut bytes = frame.encode();
        if fate.corrupt {
            corrupt(&mut bytes);
            self.tallies.frames_corrupted += 1;
        }
        let deliver = epoch + fate.delay_epochs;
        let queue = &mut self.agents[i].up;
        for _ in 0..=fate.duplicates {
            queue.push((deliver, bytes.clone()));
        }
        if fate.reorder && queue.len() >= 2 {
            let n = queue.len();
            queue.swap(n - 1, n - 2);
        }
    }

    /// Queues one down-frame (grant/Goodbye) through the chaos transport.
    fn send_down(&mut self, i: usize, frame: &Frame, epoch: u64) {
        if self.net.partitioned(i, Dir::Down, epoch) {
            self.tallies.frames_dropped += 1;
            return;
        }
        let fate = self.net.fate(i, Dir::Down, epoch);
        if fate.drop {
            self.tallies.frames_dropped += 1;
            return;
        }
        let mut bytes = frame.encode();
        if fate.corrupt {
            corrupt(&mut bytes);
            self.tallies.frames_corrupted += 1;
        }
        // A grant sent during epoch e is applicable from e+1: the TCP
        // plane's agents also see grants one reporting beat later.
        let deliver = epoch + 1 + fate.delay_epochs;
        let queue = &mut self.agents[i].down;
        for _ in 0..=fate.duplicates {
            queue.push((deliver, bytes.clone()));
        }
        if fate.reorder && queue.len() >= 2 {
            let n = queue.len();
            queue.swap(n - 1, n - 2);
        }
    }

    /// Feeds one delivered up-frame into the core.
    fn ingest(&mut self, i: usize, bytes: &[u8], now_ms: u64, epoch: u64) {
        let frame = match Frame::decode(bytes) {
            Ok(f) => f,
            Err(_) => {
                self.tallies.wire_errors += 1;
                return;
            }
        };
        match frame {
            Frame::Hello {
                node,
                floor,
                node_max,
                app,
            } => {
                if self.agents[i].slot.is_some() {
                    return; // duplicate Hello on a live link; ignore
                }
                match self.core.admit(node, app, floor, node_max, now_ms) {
                    Ok(slot) => {
                        self.agents[i].slot = Some(slot);
                        if self.slot_owner.len() <= slot {
                            self.slot_owner.resize(slot + 1, usize::MAX);
                        }
                        self.slot_owner[slot] = i;
                    }
                    Err(_) => {
                        // Blacklisted (evicted) or implausible: the
                        // connection is refused, permanently.
                        self.agents[i].rejected = true;
                    }
                }
            }
            Frame::DemandReport {
                seq,
                ceiling,
                consumption,
                active,
            } => {
                if let Some(slot) = self.agents[i].slot {
                    self.core
                        .on_report(slot, seq, ceiling, consumption, active, now_ms);
                }
            }
            Frame::Heartbeat { seq } => {
                if let Some(slot) = self.agents[i].slot {
                    self.core.on_heartbeat(slot, seq, now_ms);
                }
            }
            Frame::Goodbye => {
                if let Some(slot) = self.agents[i].slot.take() {
                    self.core.on_goodbye(slot);
                }
            }
            Frame::BudgetGrant { .. } => {
                self.tallies.wire_errors += 1; // wrong-direction frame
            }
        }
        let _ = epoch;
    }

    /// Epoch-close invariant checks and latency metrics.
    fn check_epoch(&mut self, record: &crate::core::EpochRecord, epoch: u64) {
        // Conservation: absolute, every epoch.
        if record.total_granted > self.cfg.budget.value() + 1e-6 {
            self.tallies.conservation_violations += 1;
        }

        // Honest floors: every live, non-quarantined honest agent that
        // appears in the grant table keeps at least its floor.
        for (name, watts) in &record.granted {
            if record.quarantined.contains(name) {
                continue;
            }
            let Some(agent) = self.agents.iter().find(|a| &a.name == name) else {
                continue;
            };
            if self.net.is_ever_byzantine(agent.idx) {
                continue;
            }
            if *watts < self.cfg.floor.value() - 1e-6 {
                self.tallies.floor_violations += 1;
            }
        }

        // Reclaim latency: a killed agent's name showing up in this
        // epoch's reclaims resolves its pending kill clock.
        for i in 0..self.agents.len() {
            let name = self.agents[i].name.clone();
            if let Some(killed_at) = self.agents[i].killed_at {
                if record.reclaimed.contains(&name) {
                    let delay = epoch.saturating_sub(killed_at);
                    self.max_reclaim = Some(self.max_reclaim.unwrap_or(0).max(delay));
                    self.agents[i].killed_at = None;
                }
            }

            // Quarantine latency, measured from the first effective lie.
            if self.first_quarantined[i].is_none()
                && (record.quarantined.contains(&name) || record.evicted.contains(&name))
            {
                self.first_quarantined[i] = Some(epoch);
                if let Some(lie) = self.agents[i].first_lie {
                    let delay = epoch.saturating_sub(lie) + 1;
                    self.max_quarantine_delay =
                        Some(self.max_quarantine_delay.unwrap_or(0).max(delay));
                }
            }
        }
    }

    /// Final scorecard for the completed soak.
    fn score(self) -> ScenarioScore {
        let byz_total = (0..self.cfg.agents)
            .filter(|&i| self.net.is_ever_byzantine(i))
            .count();
        let byz_quarantined = (0..self.cfg.agents)
            .filter(|&i| self.net.is_ever_byzantine(i) && self.first_quarantined[i].is_some())
            .count();
        let evictions = self
            .core
            .views()
            .iter()
            .filter(|v| v.state == NodeState::Evicted || v.trust == Trust::Evicted)
            .count() as u64;
        let mut card = ScenarioScore {
            scenario: self.scenario_name,
            seed: self.cfg.seed,
            agents: self.cfg.agents,
            epochs: self.cfg.epochs,
            budget_w: self.cfg.budget.value(),
            conservation_ok: self.tallies.conservation_violations == 0,
            conservation_violations: self.tallies.conservation_violations,
            floor_ok: self.tallies.floor_violations == 0,
            floor_violations: self.tallies.floor_violations,
            byz_total,
            byz_quarantined,
            max_quarantine_delay: self.max_quarantine_delay,
            max_time_to_reclaim: self.max_reclaim,
            max_time_to_heal: self.max_heal,
            safe_cap_violations: self.tallies.safe_cap_violations,
            frames_dropped: self.tallies.frames_dropped,
            frames_corrupted: self.tallies.frames_corrupted,
            wire_errors: self.tallies.wire_errors,
            evictions,
            score: 0.0,
        };
        card.score = card.score_of();
        card
    }
}

/// Runs one named scenario (built-in) under `cfg`.
pub fn run_scenario(cfg: &ChaosConfig, name: &str) -> Result<ScenarioScore> {
    let sc = scenario(name).ok_or_else(|| {
        Error::invalid(
            "scenario",
            format!(
                "unknown scenario {name}; known: {}",
                SCENARIOS
                    .iter()
                    .map(|s| s.name)
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
        )
    })?;
    Ok(ChaosFleet::new(cfg.clone(), sc)?.run())
}

/// Runs the full built-in matrix under `cfg` and ranks the scorecard:
/// best score first, name as the tiebreak.
pub fn run_matrix(cfg: &ChaosConfig) -> Result<Vec<ScenarioScore>> {
    let mut cards = Vec::with_capacity(SCENARIOS.len());
    for sc in SCENARIOS {
        cards.push(ChaosFleet::new(cfg.clone(), sc)?.run());
    }
    cards.sort_by(|a, b| {
        b.score
            .total_cmp(&a.score)
            .then_with(|| a.scenario.cmp(&b.scenario))
    });
    Ok(cards)
}

/// Pops every queued frame due at `epoch`, preserving queue order.
fn drain_due(queue: &mut Vec<Queued>, epoch: u64) -> Vec<Vec<u8>> {
    let mut due = Vec::new();
    let mut keep = Vec::with_capacity(queue.len());
    for (deliver, bytes) in queue.drain(..) {
        if deliver <= epoch {
            due.push(bytes);
        } else {
            keep.push((deliver, bytes));
        }
    }
    *queue = keep;
    due
}

/// Deterministic single-bit corruption; the frame CRC must catch it.
fn corrupt(bytes: &mut [u8]) {
    if let Some(last) = bytes.last_mut() {
        *last ^= 0x40;
    }
}

/// One SplitMix64 step mapped to a uniform draw in `[0, 1)`.
fn next_uniform(state: &mut u64) -> f64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_builtin_scenario_conserves_and_keeps_honest_floors() {
        let cards = run_matrix(&ChaosConfig::new(42)).unwrap();
        assert_eq!(cards.len(), SCENARIOS.len());
        for card in &cards {
            assert!(card.conservation_ok, "{}: {card:?}", card.scenario);
            assert!(card.floor_ok, "{}: {card:?}", card.scenario);
            assert_eq!(card.safe_cap_violations, 0, "{}", card.scenario);
        }
    }

    #[test]
    fn byzantine_agents_are_quarantined_within_two_epochs() {
        for name in ["byzantine-minority", "replay-storm"] {
            let card = run_scenario(&ChaosConfig::new(42), name).unwrap();
            assert!(card.byz_total > 0, "{name}");
            assert_eq!(card.byz_quarantined, card.byz_total, "{name}: {card:?}");
            assert!(
                card.max_quarantine_delay.is_some_and(|d| d <= 2),
                "{name}: {card:?}"
            );
        }
    }

    #[test]
    fn kills_reclaim_within_two_epochs_and_partitions_heal() {
        let card = run_scenario(&ChaosConfig::new(42), "cascading-kills").unwrap();
        assert!(card.max_time_to_reclaim.is_some_and(|t| t <= 2), "{card:?}");
        let card = run_scenario(&ChaosConfig::new(42), "partition-heal").unwrap();
        assert!(card.max_time_to_heal.is_some_and(|t| t <= 3), "{card:?}");
    }

    #[test]
    fn the_same_seed_replays_an_identical_scorecard() {
        let a = run_matrix(&ChaosConfig::new(7)).unwrap();
        let b = run_matrix(&ChaosConfig::new(7)).unwrap();
        assert_eq!(a, b);
        let c = run_matrix(&ChaosConfig::new(8)).unwrap();
        assert_ne!(a, c, "different seed should change some tallies");
    }

    #[test]
    fn corrupted_frames_are_caught_by_the_crc_never_ingested() {
        let card = run_scenario(&ChaosConfig::new(42), "frame-chaos").unwrap();
        assert!(card.frames_corrupted > 0, "{card:?}");
        assert!(
            card.wire_errors >= card.frames_corrupted,
            "every corruption must surface as a wire error: {card:?}"
        );
        assert!(card.conservation_ok && card.floor_ok, "{card:?}");
    }

    #[test]
    fn a_flapping_agent_is_rate_limited_but_never_quarantined() {
        let cfg = ChaosConfig::new(42);
        let sc = Scenario {
            name: "flap-test",
            summary: "",
            plan: "byz-flap,peer=0",
            thrash: false,
        };
        let fleet = ChaosFleet::new(cfg, &sc).unwrap();
        let card = fleet.run();
        // Flapping is obnoxious but honest: rate limiting absorbs the
        // storms, silence stays inside the heartbeat timeout, and the
        // trust ladder never moves.
        assert_eq!(card.byz_quarantined, 0, "{card:?}");
        assert!(card.conservation_ok && card.floor_ok, "{card:?}");
    }

    #[test]
    fn unknown_scenarios_are_a_typed_error() {
        let err = run_scenario(&ChaosConfig::new(1), "nope").unwrap_err();
        assert!(err.to_string().contains("nope"), "{err}");
    }

    #[test]
    fn msr_fault_plan_composes_agents_miss_grant_applications() {
        // Agent 0's cap writes fail for the whole run: it can never apply
        // a grant, so it keeps enforcing its safe cap. The fleet must
        // still conserve and keep floors.
        let mut cfg = ChaosConfig::new(42);
        cfg.msr_plan = dufp_msr::fault::FaultPlan::parse("write,reg=cap,cpu=0,always").unwrap();
        let sc = scenario("baseline").unwrap();
        let card = ChaosFleet::new(cfg, sc).unwrap().run();
        assert!(card.conservation_ok && card.floor_ok, "{card:?}");
    }
}
