//! The deterministic adversarial fleet soak: seeded chaos scenarios over
//! an in-process fleet, scored into a resilience scorecard.
//!
//! A [`ChaosFleet`] drives the same [`FleetCore`] brain the TCP
//! coordinator runs, but over a virtual, epoch-granular transport: every
//! frame an agent or the coordinator sends is an encoded byte buffer in a
//! per-peer queue, and a seeded [`NetFaultInjector`] decides each frame's
//! fate (drop, delay, duplicate, corrupt, reorder) plus link partitions,
//! agent kills and byzantine behaviors. There is no wall clock, no
//! thread, no socket: epoch `e` *is* `now_ms = e × 1000`, the loop is
//! single-threaded, and every random draw comes from SplitMix64 streams
//! keyed on the run seed — so one seed replays the entire soak, scorecard
//! included, byte-identically.
//!
//! Each scenario run checks the fleet's hard invariants every epoch:
//!
//! * **Conservation** — `Σ granted ≤ budget`, always, under any abuse.
//! * **Honest floors** — no live, non-quarantined honest agent is ever
//!   granted less than its floor.
//! * **Quarantine latency** — a lying agent reaches the quarantine rung
//!   within two epochs of its first effective lie.
//! * **Reclaim latency** — a killed agent's watts return to the pool
//!   within two epochs.
//! * **Safe-cap fallback** — an agent partitioned or disconnected past a
//!   grace period enforces its safe local cap.
//! * **Failover** (DESIGN.md §15) — when the plan kills the *primary
//!   coordinator* (`coord-kill`), a warm standby replays the primary's
//!   event log, must rebuild its state byte-identically, promotes to a
//!   higher term and re-grants within three epochs; agents fence every
//!   lingering stale-term grant, and a resurrected stale primary ends the
//!   run fenced, never obeyed.
//!
//! The result is one [`ScenarioScore`] per scenario; [`run_matrix`] runs
//! the built-in [`SCENARIOS`] and ranks them. `dufp chaos` is the CLI
//! face; CI fails the build on any conservation or floor violation.

use crate::config::CoordinatorConfig;
use crate::core::{EpochStep, FleetCore, NodeState};
use crate::fleet_journal::FleetEvent;
use crate::netfault::{Dir, NetFaultInjector, NetFaultOp, NetFaultPlan};
use crate::vet::Trust;
use crate::wire::Frame;
use dufp_msr::fault::{FaultInjector, FaultOp, FaultPlan};
use dufp_msr::registers::MSR_PKG_POWER_LIMIT;
use dufp_telemetry::Telemetry;
use dufp_types::{Error, Result, Watts};
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// How a chaos soak is shaped. Defaults match the CI matrix: 8 agents,
/// 40 virtual epochs, a 700 W budget over 65 W floors and 125 W silicon
/// limits, 90 W safe local caps.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Master seed: keys every random stream in the soak.
    pub seed: u64,
    /// Fleet size (agent indices are the plan's `peer=` space).
    pub agents: usize,
    /// Virtual epochs to run (one allocator epoch each).
    pub epochs: u64,
    /// Global fleet budget.
    pub budget: Watts,
    /// Per-node floor.
    pub floor: Watts,
    /// Per-node silicon limit.
    pub node_max: Watts,
    /// Safe local cap an agent enforces while disconnected.
    pub safe_cap: Watts,
    /// Extra network-fault rules merged into every scenario's plan
    /// (`--net-fault-plan`).
    pub extra_net: NetFaultPlan,
    /// Actuation-fault plan (`--fault-plan`): a `write` fault on the cap
    /// register of "cpu" *i* at clock *e* makes agent *i* fail to apply
    /// its grant at epoch *e*.
    pub msr_plan: FaultPlan,
}

impl ChaosConfig {
    /// The default CI-matrix shape under `seed`.
    pub fn new(seed: u64) -> Self {
        ChaosConfig {
            seed,
            agents: 8,
            epochs: 40,
            budget: Watts(700.0),
            floor: Watts(65.0),
            node_max: Watts(125.0),
            safe_cap: Watts(90.0),
            extra_net: NetFaultPlan::none(),
            msr_plan: FaultPlan::none(),
        }
    }

    /// Rejects shapes the soak cannot run.
    pub fn validate(&self) -> Result<()> {
        if self.agents == 0 {
            return Err(Error::invalid("agents", "empty fleet"));
        }
        if self.epochs == 0 {
            return Err(Error::invalid("epochs", "zero epochs"));
        }
        if self.agents > u16::MAX as usize {
            return Err(Error::invalid(
                "agents",
                format!("{} is absurd", self.agents),
            ));
        }
        // Budget/floor/node_max plausibility rides on the coordinator
        // config validation inside run().
        Ok(())
    }
}

/// One built-in adversarial scenario: a name and a net-fault plan over
/// the default 8-agent fleet.
#[derive(Debug, Clone, Copy)]
pub struct Scenario {
    /// Scenario name (scorecard key).
    pub name: &'static str,
    /// What it proves.
    pub summary: &'static str,
    /// The scenario's net-fault plan (the seed comes from the run).
    pub plan: &'static str,
    /// Oscillate every honest agent's demand floor↔node_max each epoch.
    pub thrash: bool,
}

/// The built-in scenario matrix `dufp chaos` and CI run.
pub const SCENARIOS: &[Scenario] = &[
    Scenario {
        name: "baseline",
        summary: "honest lossless fleet: the control case",
        plan: "",
        thrash: false,
    },
    Scenario {
        name: "byzantine-minority",
        summary: "three liars (NaN, inflated, overdrawing) among eight",
        plan: "byz-nan,peer=0;byz-inflate,peer=1;byz-overdraw,peer=2",
        thrash: false,
    },
    Scenario {
        name: "cascading-kills",
        summary: "three agents die in a stagger and stay down",
        plan: "kill,peer=0,window=8+40;kill,peer=1,window=12+40;kill,peer=2,window=16+40",
        thrash: false,
    },
    Scenario {
        name: "frame-chaos",
        summary: "lossy wire: drops, corruption, delays, duplicates",
        plan: "drop,p=0.05;corrupt,p=0.05;delay,p=0.1,n=1;dup,p=0.05",
        thrash: false,
    },
    Scenario {
        name: "partition-heal",
        summary: "two agents partitioned for six epochs, then healed",
        plan: "partition,peer=0-1,dir=both,window=10+6",
        thrash: false,
    },
    Scenario {
        name: "replay-storm",
        summary: "two replaying agents behind a duplicating, reordering wire",
        plan: "byz-replay,peer=0-1,n=5;dup,p=0.2;reorder,p=0.2",
        thrash: false,
    },
    Scenario {
        name: "thrashing-demand",
        summary: "every agent slams demand floor-to-max each epoch",
        plan: "",
        thrash: true,
    },
    Scenario {
        name: "coordinator-kill",
        summary: "primary killed mid-run over a delaying wire; standby replays and takes over",
        plan: "coord-kill,window=15+999;delay,p=0.25,n=2",
        thrash: false,
    },
    Scenario {
        name: "takeover-partition",
        summary: "takeover races a partition: two agents dark through the handover",
        plan: "coord-kill,window=15+999;partition,peer=2-3,dir=both,window=14+6",
        thrash: false,
    },
    Scenario {
        name: "stale-primary-return",
        summary: "dead primary resurrects stale after the standby promoted; must end fenced",
        plan: "coord-kill,window=12+6;delay,p=0.2,n=2",
        thrash: false,
    },
];

/// Looks up a built-in scenario by name.
pub fn scenario(name: &str) -> Option<&'static Scenario> {
    SCENARIOS.iter().find(|s| s.name == name)
}

/// One scenario's resilience scorecard line (serialized as JSONL).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioScore {
    /// Scenario name.
    pub scenario: String,
    /// Run seed (the whole line is a pure function of it).
    pub seed: u64,
    /// Fleet size.
    pub agents: usize,
    /// Virtual epochs run.
    pub epochs: u64,
    /// Budget served.
    pub budget_w: f64,
    /// `Σ granted ≤ budget` held at every epoch.
    pub conservation_ok: bool,
    /// Epochs where conservation broke (must be 0).
    pub conservation_violations: u64,
    /// Every live, non-quarantined honest agent kept ≥ its floor.
    pub floor_ok: bool,
    /// (agent, epoch) floor violations (must be 0).
    pub floor_violations: u64,
    /// Agents the plan ever turns byzantine.
    pub byz_total: usize,
    /// Byzantine agents that reached quarantine (or eviction).
    pub byz_quarantined: usize,
    /// Slowest lie-to-quarantine latency in epochs (None: no byzantines).
    pub max_quarantine_delay: Option<u64>,
    /// Slowest kill-to-reclaim latency in epochs (None: no kills).
    pub max_time_to_reclaim: Option<u64>,
    /// Slowest partition-heal-to-applied-grant latency in epochs
    /// (None: no partitions).
    pub max_time_to_heal: Option<u64>,
    /// Epochs where a disconnected agent exceeded its safe cap past the
    /// grace period (must be 0).
    pub safe_cap_violations: u64,
    /// Frames the chaos transport discarded (drops + partition losses).
    pub frames_dropped: u64,
    /// Frames the chaos transport bit-flipped.
    pub frames_corrupted: u64,
    /// Frames rejected at decode (CRC/bound failures; corruption caught).
    pub wire_errors: u64,
    /// Nodes the trust ladder evicted.
    pub evictions: u64,
    /// Epochs from the primary-coordinator kill to the first applied
    /// successor-term grant (None: the plan never kills a coordinator;
    /// the full run length when the fleet never recovered).
    #[serde(default)]
    pub takeover_epochs: Option<u64>,
    /// Stale-term grants agents refused to apply — the fence working.
    #[serde(default)]
    pub stale_grants_fenced: u64,
    /// The standby's journal replay rebuilt the dead primary's core
    /// byte-identically (None: no takeover happened).
    #[serde(default)]
    pub replay_matched: Option<bool>,
    /// A resurrected stale primary ended the run fenced; vacuously true
    /// when the plan never resurrects one.
    #[serde(default = "default_true")]
    pub fenced_ok: bool,
    /// 0–100 ranking score (see [`ScenarioScore::score_of`]).
    pub score: f64,
}

fn default_true() -> bool {
    true
}

impl ScenarioScore {
    /// The ranking formula: start at 100; conservation breaks cost 50
    /// each, floor breaks 25, an unquarantined byzantine 10, a safe-cap
    /// violation 5, and slow reclaim (> 2 epochs) or slow heal (> 3
    /// epochs) 5 each; a slow takeover (> 3 epochs) costs 10, a
    /// mismatched journal replay 25, and an unfenced resurrected primary
    /// (split brain) 50; clamped at 0.
    pub fn score_of(&self) -> f64 {
        let mut score = 100.0;
        score -= 50.0 * self.conservation_violations as f64;
        score -= 25.0 * self.floor_violations as f64;
        score -= 10.0 * (self.byz_total.saturating_sub(self.byz_quarantined)) as f64;
        score -= 5.0 * self.safe_cap_violations as f64;
        if self.max_time_to_reclaim.is_some_and(|t| t > 2) {
            score -= 5.0;
        }
        if self.max_time_to_heal.is_some_and(|t| t > 3) {
            score -= 5.0;
        }
        if self.takeover_epochs.is_some_and(|t| t > 3) {
            score -= 10.0;
        }
        if self.replay_matched == Some(false) {
            score -= 25.0;
        }
        if !self.fenced_ok {
            score -= 50.0;
        }
        score.max(0.0)
    }
}

/// A queued down-frame: the epoch it becomes deliverable, and its bytes.
type Queued = (u64, Vec<u8>);

/// A queued up-frame: deliverable epoch, destination coordinator, bytes.
/// The destination is fixed at send time — a frame in flight to a dead
/// coordinator is lost, never silently rerouted.
type QueuedUp = (u64, usize, Vec<u8>);

/// Epochs an agent tolerates without a live coordinator link before it
/// falls back to the safe local cap.
const DISCONNECT_GRACE_EPOCHS: u64 = 2;

/// One simulated agent in the chaos fleet.
struct SimAgent {
    idx: usize,
    name: String,
    rng: u64,
    /// Wandering honest demand in watts.
    demand: f64,
    /// The ceiling the agent currently enforces.
    ceiling: f64,
    /// Last grant applied, as a `(term, epoch)` pair: grants are ordered
    /// lexicographically by term then epoch, so a replayed or stale grant
    /// — even one from a higher epoch of a *superseded* term — never
    /// reaches the capper.
    last_grant: (u64, u64),
    /// Highest coordination term this agent has ever seen; grants below
    /// it are fenced (split-brain defense, DESIGN.md §15).
    max_term: u64,
    granted: Option<f64>,
    report_seq: u64,
    heartbeat_seq: u64,
    alive: bool,
    /// Which coordinator the agent's link points at, chosen at dial time.
    coord: Option<usize>,
    /// Coordinator slot, once a Hello was accepted.
    slot: Option<usize>,
    /// Admission permanently refused (evicted name).
    rejected: bool,
    /// First epoch of the current no-link stretch (partition or closed
    /// socket), if any.
    disconnected_since: Option<u64>,
    /// Pending kill start, for the reclaim-latency metric.
    killed_at: Option<u64>,
    /// Epoch the last partition ended, until the next applied grant.
    heal_started: Option<u64>,
    /// First epoch this agent actually sent distorted traffic.
    first_lie: Option<u64>,
    up: Vec<QueuedUp>,
    down: Vec<Queued>,
}

impl SimAgent {
    fn new(idx: usize, cfg: &ChaosConfig) -> Self {
        let mut rng = cfg
            .seed
            .wrapping_add((idx as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let span = cfg.node_max.value() - cfg.floor.value();
        let demand = cfg.floor.value() + next_uniform(&mut rng) * span;
        SimAgent {
            idx,
            name: format!("n{idx}"),
            rng,
            demand,
            ceiling: cfg.safe_cap.value(),
            last_grant: (0, 0),
            max_term: 0,
            granted: None,
            report_seq: 0,
            heartbeat_seq: 0,
            alive: true,
            coord: None,
            slot: None,
            rejected: false,
            disconnected_since: None,
            killed_at: None,
            heal_started: None,
            first_lie: None,
            up: Vec::new(),
            down: Vec::new(),
        }
    }

    /// Process-death reset: queues flushed, sequence counters restart.
    fn die(&mut self, epoch: u64) {
        self.alive = false;
        if self.killed_at.is_none() {
            self.killed_at = Some(epoch);
        }
        self.coord = None;
        self.slot = None;
        self.up.clear();
        self.down.clear();
    }

    fn restart(&mut self, cfg: &ChaosConfig) {
        self.alive = true;
        self.report_seq = 0;
        self.heartbeat_seq = 0;
        // A restarted process forgets the terms it has seen: the stale-
        // primary defense for fresh agents is the primary's own pause
        // self-fencing, not agent memory.
        self.last_grant = (0, 0);
        self.max_term = 0;
        self.granted = None;
        self.ceiling = cfg.safe_cap.value();
        self.disconnected_since = None;
    }
}

/// Aggregated chaos-transport tallies.
#[derive(Debug, Default)]
struct Tallies {
    frames_dropped: u64,
    frames_corrupted: u64,
    wire_errors: u64,
    conservation_violations: u64,
    floor_violations: u64,
    safe_cap_violations: u64,
    stale_grants_fenced: u64,
}

/// One coordinator in the chaos fleet: the primary (index 0) or the warm
/// standby (index 1, present only when the plan kills the primary).
struct CoordSim {
    core: FleetCore,
    /// Maps this coordinator's slots back to agent indices.
    slot_owner: Vec<usize>,
    /// Accepting connections and running epochs.
    alive: bool,
}

/// The deterministic in-process chaos fleet. Build one per scenario run;
/// [`ChaosFleet::run`] consumes it and returns the scorecard line.
pub struct ChaosFleet {
    cfg: ChaosConfig,
    coord_cfg: CoordinatorConfig,
    scenario_name: String,
    thrash: bool,
    coords: Vec<CoordSim>,
    net: NetFaultInjector,
    msr: FaultInjector,
    agents: Vec<SimAgent>,
    /// The primary's input log — the in-memory stand-in for the on-disk
    /// `dufp-journal` stream the TCP plane writes (same events, same
    /// order). The standby replays it at promotion.
    event_log: Vec<FleetEvent>,
    /// The primary's core snapshot frozen at the instant of its kill;
    /// the replay must rebuild it byte-identically.
    dead_primary_snapshot: Option<Vec<u8>>,
    kill_epoch: Option<u64>,
    /// First epoch an agent applied a successor-term grant.
    takeover_epoch: Option<u64>,
    replay_matched: Option<bool>,
    promoted: bool,
    tallies: Tallies,
    first_quarantined: Vec<Option<u64>>,
    max_reclaim: Option<u64>,
    max_heal: Option<u64>,
    max_quarantine_delay: Option<u64>,
}

impl ChaosFleet {
    /// Assembles a fleet for one built-in scenario under `cfg`.
    pub fn new(cfg: ChaosConfig, scenario: &Scenario) -> Result<Self> {
        let plan = NetFaultPlan::parse(scenario.plan)?;
        Self::from_plan(cfg, scenario.name, plan, scenario.thrash)
    }

    /// Assembles a fleet for an arbitrary (e.g. user-supplied) fault plan.
    /// The plan and the config's extra rules are merged; the plan seed is
    /// the run seed (scenario plans never carry their own).
    pub fn from_plan(
        cfg: ChaosConfig,
        name: impl Into<String>,
        mut plan: NetFaultPlan,
        thrash: bool,
    ) -> Result<Self> {
        cfg.validate()?;
        plan.seed = cfg.seed;
        plan.rules.extend(cfg.extra_net.rules.iter().copied());
        let mut coord_cfg =
            CoordinatorConfig::new("chaos:virtual", cfg.budget).with_epoch(Duration::from_secs(1));
        coord_cfg.floor = cfg.floor;
        coord_cfg.node_max = cfg.node_max;
        coord_cfg.validate()?;
        let mut msr_plan = cfg.msr_plan.clone();
        msr_plan.seed = msr_plan.seed.wrapping_add(cfg.seed);
        let agents = (0..cfg.agents).map(|i| SimAgent::new(i, &cfg)).collect();
        let net = NetFaultInjector::new(plan);
        let mut primary = FleetCore::new(&coord_cfg, Telemetry::enabled());
        let mut coords = Vec::new();
        if net.has_coord_kill() {
            // A killable primary self-fences when its virtual clock pauses
            // past 2× the heartbeat timeout — the same arming the TCP
            // coordinator gets when a standby or successor is configured.
            primary.enable_pause_fencing(2 * coord_cfg.heartbeat_timeout.as_millis() as u64);
            coords.push(CoordSim {
                core: primary,
                slot_owner: Vec::new(),
                alive: true,
            });
            coords.push(CoordSim {
                core: FleetCore::new(&coord_cfg, Telemetry::enabled()),
                slot_owner: Vec::new(),
                alive: false,
            });
        } else {
            coords.push(CoordSim {
                core: primary,
                slot_owner: Vec::new(),
                alive: true,
            });
        }
        Ok(ChaosFleet {
            coords,
            net,
            msr: FaultInjector::new(msr_plan),
            agents,
            event_log: Vec::new(),
            dead_primary_snapshot: None,
            kill_epoch: None,
            takeover_epoch: None,
            replay_matched: None,
            promoted: false,
            tallies: Tallies::default(),
            first_quarantined: vec![None; cfg.agents],
            max_reclaim: None,
            max_heal: None,
            max_quarantine_delay: None,
            scenario_name: name.into(),
            thrash,
            cfg,
            coord_cfg,
        })
    }

    /// Runs the soak to completion and scores it.
    pub fn run(mut self) -> ScenarioScore {
        for epoch in 1..=self.cfg.epochs {
            self.step(epoch);
        }
        self.score()
    }

    /// One virtual epoch: coordinator failover events, agent
    /// kills/restarts, agent sends, frame delivery, one allocator epoch
    /// per live coordinator, grant fan-out, invariant checks.
    fn step(&mut self, epoch: u64) {
        // Coordinator topology: primary kill, stale resurrection, and
        // standby promotion one epoch after the kill becomes observable.
        if self.net.coord_killed(epoch) && self.coords[0].alive {
            self.coords[0].alive = false;
            self.kill_epoch.get_or_insert(epoch);
            self.dead_primary_snapshot = self.coords[0].core.snapshot_bytes().ok();
            for a in &mut self.agents {
                if a.coord == Some(0) {
                    a.coord = None;
                    a.slot = None;
                }
            }
            // Down-queues are NOT flushed: grants already in flight from
            // the dead primary linger, and agents must fence them by term.
        } else if !self.net.coord_killed(epoch) && !self.coords[0].alive {
            // The kill window closed: the old primary resurrects with its
            // stale pre-kill state (a crashed process restarted from a
            // warm cache). Its paused virtual clock must self-fence it
            // before it grants a single watt.
            self.coords[0].alive = true;
        }
        if self.coords.len() > 1 && !self.promoted && self.kill_epoch.is_some_and(|k| epoch > k) {
            self.promote_standby();
        }

        // Topology: kills and restarts.
        for i in 0..self.agents.len() {
            let killed = self.net.killed(i, epoch);
            if killed && self.agents[i].alive {
                self.agents[i].die(epoch);
            } else if !killed && !self.agents[i].alive {
                let cfg = self.cfg.clone();
                self.agents[i].restart(&cfg);
            }
        }

        // Agents act: notice link state, apply queued grants, report.
        for i in 0..self.agents.len() {
            self.agent_step(i, epoch);
        }

        // Deliver up-frames to the coordinator, in agent order. Frames
        // arrive "mid-epoch" so a frame sent in epoch e beats the epoch-e
        // allocator close, matching the TCP plane's report-then-allocate
        // cadence.
        let ingest_ms = epoch * 1000 - 500;
        for i in 0..self.agents.len() {
            let due = drain_due_up(&mut self.agents[i].up, epoch);
            for (dest, bytes) in due {
                if self.coords[dest].alive {
                    self.ingest(i, dest, &bytes, ingest_ms, epoch);
                } else {
                    // In flight to a dead coordinator: lost with the host.
                    self.tallies.frames_dropped += 1;
                }
            }
        }

        // One allocator epoch per live coordinator. A fenced core runs a
        // frozen epoch (no grants, no reclaims); each record is checked
        // against the invariants independently, so a stale primary and
        // its successor are both held to Σ granted ≤ budget.
        let mut steps: Vec<(usize, EpochStep)> = Vec::new();
        for c in 0..self.coords.len() {
            if !self.coords[c].alive {
                continue;
            }
            if c == 0 && self.kill_epoch.is_none() {
                self.event_log.push(FleetEvent::Epoch {
                    now_ms: epoch * 1000,
                });
            }
            let step = self.coords[c].core.epoch_once(epoch * 1000);
            steps.push((c, step));
        }
        for (c, step) in &steps {
            // Coordinator-side disconnects close the agent's link.
            for &slot in &step.disconnects {
                let Some(&owner) = self.coords[*c].slot_owner.get(slot) else {
                    continue;
                };
                if owner != usize::MAX
                    && self.agents[owner].coord == Some(*c)
                    && self.agents[owner].slot == Some(slot)
                {
                    self.agents[owner].slot = None;
                    self.agents[owner].coord = None;
                }
            }

            // Grant fan-out through the chaotic down-links.
            for (slot, frame) in &step.grants {
                let Some(&owner) = self.coords[*c].slot_owner.get(*slot) else {
                    continue;
                };
                if owner == usize::MAX
                    || self.agents[owner].coord != Some(*c)
                    || self.agents[owner].slot != Some(*slot)
                {
                    continue; // link already closed
                }
                self.send_down(owner, frame, epoch);
            }

            // Invariants and latency metrics for this epoch.
            self.check_epoch(&step.record, epoch);
        }
    }

    /// Warm-standby takeover: replay the primary's journaled inputs into
    /// a fresh core (checkpoint+replay in the TCP plane), verify the
    /// rebuild is byte-identical to the primary's state at the instant of
    /// death, then bump the term and start granting. The successor's
    /// hold-down window keeps every replayed-but-unattached node's watts
    /// reserved, so Σ granted ≤ budget holds *across* the handover.
    fn promote_standby(&mut self) {
        let mut core = FleetCore::new(&self.coord_cfg, Telemetry::enabled());
        for ev in &self.event_log {
            ev.apply(&mut core);
        }
        self.replay_matched = match (&self.dead_primary_snapshot, core.snapshot_bytes()) {
            (Some(dead), Ok(rebuilt)) => Some(*dead == rebuilt),
            _ => Some(false),
        };
        core.promote();
        let owners = self.coords[0].slot_owner.clone();
        let standby = &mut self.coords[1];
        standby.core = core;
        standby.slot_owner = owners;
        standby.alive = true;
        self.promoted = true;
    }

    /// The coordinator a fresh dial reaches: the first listening (alive,
    /// unfenced) one in address order, as in the agent's standby list.
    fn listener(&self) -> Option<usize> {
        self.coords.iter().position(|c| c.alive && !c.core.fenced())
    }

    /// One agent's actions for `epoch`.
    fn agent_step(&mut self, i: usize, epoch: u64) {
        if !self.agents[i].alive {
            return;
        }
        let up_cut = self.net.partitioned(i, Dir::Up, epoch);
        let down_cut = self.net.partitioned(i, Dir::Down, epoch);
        let partitioned = up_cut || down_cut;

        // A dead or fenced coordinator's sockets are gone: the link drops
        // and the agent re-dials down its standby list.
        {
            let a = &mut self.agents[i];
            if let Some(c) = a.coord {
                if !self.coords[c].alive || self.coords[c].core.fenced() {
                    a.coord = None;
                    a.slot = None;
                }
            }
        }

        // Link-state bookkeeping: a partition (stand-in for TCP timeouts)
        // or a closed socket starts the disconnect clock; a healthy link
        // clears it. Healing a partition starts the heal-latency clock.
        {
            let a = &mut self.agents[i];
            let linkless = partitioned || a.slot.is_none();
            match (linkless, a.disconnected_since) {
                (true, None) => a.disconnected_since = Some(epoch),
                (false, Some(_)) => a.disconnected_since = None,
                _ => {}
            }
            if !partitioned
                && a.heal_started.is_none()
                && epoch > 1
                && (self.net.partitioned(i, Dir::Up, epoch - 1)
                    || self.net.partitioned(i, Dir::Down, epoch - 1))
            {
                a.heal_started = Some(epoch);
            }
        }

        // Apply deliverable grants (epoch-monotonic, unless the MSR fault
        // plan says this epoch's cap write fails).
        let due = drain_due(&mut self.agents[i].down, epoch);
        for bytes in due {
            let frame = match Frame::decode(&bytes) {
                Ok(f) => f,
                Err(_) => {
                    self.tallies.wire_errors += 1;
                    continue;
                }
            };
            match frame {
                Frame::BudgetGrant {
                    epoch: grant_epoch,
                    ceiling,
                    term,
                    ..
                } => {
                    let a = &mut self.agents[i];
                    if term < a.max_term {
                        // A superseded coordinator's grant — perhaps a
                        // delayed frame from before the takeover, perhaps
                        // a resurrected stale primary. Fence it, no
                        // matter how fresh its epoch claims to be.
                        self.tallies.stale_grants_fenced += 1;
                        continue;
                    }
                    a.max_term = term;
                    if (term, grant_epoch) <= a.last_grant {
                        continue; // stale or replayed grant
                    }
                    if self
                        .msr
                        .should_fail_at(FaultOp::Write, i, MSR_PKG_POWER_LIMIT, Some(epoch))
                    {
                        continue; // actuation failed; grant not enforced
                    }
                    a.last_grant = (term, grant_epoch);
                    a.granted = Some(ceiling.value());
                    a.ceiling = ceiling.value();
                    if term > 1 && self.takeover_epoch.is_none() {
                        self.takeover_epoch = Some(epoch);
                    }
                    if let Some(healed) = a.heal_started.take() {
                        let delay = epoch.saturating_sub(healed);
                        self.max_heal = Some(self.max_heal.unwrap_or(0).max(delay));
                    }
                }
                Frame::Goodbye => {
                    self.agents[i].slot = None;
                    self.agents[i].coord = None;
                }
                _ => self.tallies.wire_errors += 1,
            }
        }

        // Safe-cap fallback after the grace period without a link.
        {
            let a = &mut self.agents[i];
            if let Some(since) = a.disconnected_since {
                if epoch.saturating_sub(since) >= DISCONNECT_GRACE_EPOCHS {
                    if a.ceiling > self.cfg.safe_cap.value() + 1e-9 {
                        // The fallback itself: clamp to the safe cap. An
                        // agent that failed to do so would be violating.
                        a.ceiling = self.cfg.safe_cap.value();
                    }
                    // The grant is forfeited with the link: local autonomy
                    // replaces it, and the coordinator's failure detector
                    // reclaims the watts on its side.
                    a.granted = None;
                    if a.ceiling > self.cfg.safe_cap.value() + 1e-9 {
                        self.tallies.safe_cap_violations += 1;
                    }
                }
            }
        }

        // Demand model: seeded wander, or floor↔max thrash.
        {
            let a = &mut self.agents[i];
            let (lo, hi) = (self.cfg.floor.value(), self.cfg.node_max.value());
            a.demand = if self.thrash {
                if epoch.is_multiple_of(2) {
                    lo
                } else {
                    hi
                }
            } else {
                (a.demand + (next_uniform(&mut a.rng) - 0.5) * 20.0).clamp(lo, hi)
            };
        }

        // Outbound traffic. A severed up-link swallows everything sent.
        // Frames are addressed to the agent's coordinator — or, when
        // dialing fresh, to the first listening one (the agent's standby
        // list in address order).
        let byz = self.net.byz_ops(i, epoch);
        if self.agents[i].rejected {
            return;
        }
        let Some(dest) = self.agents[i].coord.or_else(|| self.listener()) else {
            return; // no coordinator listening: connection refused
        };
        if self.agents[i].slot.is_none() && !up_cut {
            self.agents[i].coord = Some(dest);
            let hello = Frame::Hello {
                node: self.agents[i].name.clone(),
                floor: self.cfg.floor,
                node_max: self.cfg.node_max,
                app: "chaos".to_string(),
                term: self.agents[i].max_term,
            };
            self.send_up(i, &hello, epoch, up_cut, dest);
        }

        // The demand report (possibly distorted).
        let flapping = byz.contains(&NetFaultOp::ByzFlap);
        let silent_flap = flapping && epoch.is_multiple_of(2);
        if !silent_flap {
            self.agents[i].report_seq += 1;
            let seq = self.agents[i].report_seq;
            let honest_ceiling = self.agents[i].ceiling;
            let honest_consumption = self.agents[i].demand.min(honest_ceiling);
            let granted = self.agents[i].granted;
            let mut lied = false;
            let ten_x = self.cfg.node_max.value() * 10.0;
            let (mut c, mut k) = (honest_ceiling, honest_consumption);
            for op in &byz {
                match op {
                    NetFaultOp::ByzInflate => {
                        (c, k) = (ten_x, ten_x);
                        lied = true;
                    }
                    NetFaultOp::ByzNan => {
                        k = f64::NAN;
                        lied = true;
                    }
                    NetFaultOp::ByzNegative => {
                        k = -42.0;
                        lied = true;
                    }
                    NetFaultOp::ByzOverdraw => {
                        // Claim compliance with the grant while reporting a
                        // consumption that overdraws it — kept inside the
                        // plausibility envelope so only the overdraw rule
                        // can catch it.
                        if let Some(g) = granted {
                            c = g;
                            k = (2.0 * g).min(self.cfg.node_max.value() * 1.2);
                            lied = true;
                        }
                    }
                    _ => {}
                }
            }
            if lied && self.agents[i].first_lie.is_none() {
                self.agents[i].first_lie = Some(epoch);
            }
            let report = Frame::DemandReport {
                seq,
                ceiling: Watts(c),
                consumption: Watts(k),
                active: true,
            };
            self.send_up(i, &report, epoch, up_cut, dest);

            // Replayed stale frames, beyond what reordering could excuse.
            if byz.contains(&NetFaultOp::ByzReplay) && seq > 1 {
                if self.agents[i].first_lie.is_none() {
                    self.agents[i].first_lie = Some(epoch);
                }
                let stale_seq = seq.saturating_sub(3);
                let n = self.net.byz_replay_count(i, epoch).max(1);
                for _ in 0..n {
                    let stale = Frame::DemandReport {
                        seq: stale_seq,
                        ceiling: Watts(honest_ceiling),
                        consumption: Watts(honest_consumption),
                        active: true,
                    };
                    self.send_up(i, &stale, epoch, up_cut, dest);
                }
            }
        }

        // Heartbeats: one per epoch, or a storm on flapping epochs.
        let heartbeats = if flapping && !silent_flap { 40 } else { 1 };
        if !silent_flap {
            for _ in 0..heartbeats {
                self.agents[i].heartbeat_seq += 1;
                let hb = Frame::Heartbeat {
                    seq: self.agents[i].heartbeat_seq,
                    term: self.agents[i].max_term,
                };
                self.send_up(i, &hb, epoch, up_cut, dest);
            }
        }
    }

    /// Queues one up-frame through the chaos transport, addressed to
    /// coordinator `dest`.
    fn send_up(&mut self, i: usize, frame: &Frame, epoch: u64, up_cut: bool, dest: usize) {
        if up_cut {
            self.tallies.frames_dropped += 1;
            return;
        }
        let fate = self.net.fate(i, Dir::Up, epoch);
        if fate.drop {
            self.tallies.frames_dropped += 1;
            return;
        }
        let mut bytes = frame.encode();
        if fate.corrupt {
            corrupt(&mut bytes);
            self.tallies.frames_corrupted += 1;
        }
        let deliver = epoch + fate.delay_epochs;
        let queue = &mut self.agents[i].up;
        for _ in 0..=fate.duplicates {
            queue.push((deliver, dest, bytes.clone()));
        }
        if fate.reorder && queue.len() >= 2 {
            let n = queue.len();
            queue.swap(n - 1, n - 2);
        }
    }

    /// Queues one down-frame (grant/Goodbye) through the chaos transport.
    fn send_down(&mut self, i: usize, frame: &Frame, epoch: u64) {
        if self.net.partitioned(i, Dir::Down, epoch) {
            self.tallies.frames_dropped += 1;
            return;
        }
        let fate = self.net.fate(i, Dir::Down, epoch);
        if fate.drop {
            self.tallies.frames_dropped += 1;
            return;
        }
        let mut bytes = frame.encode();
        if fate.corrupt {
            corrupt(&mut bytes);
            self.tallies.frames_corrupted += 1;
        }
        // A grant sent during epoch e is applicable from e+1: the TCP
        // plane's agents also see grants one reporting beat later.
        let deliver = epoch + 1 + fate.delay_epochs;
        let queue = &mut self.agents[i].down;
        for _ in 0..=fate.duplicates {
            queue.push((deliver, bytes.clone()));
        }
        if fate.reorder && queue.len() >= 2 {
            let n = queue.len();
            queue.swap(n - 1, n - 2);
        }
    }

    /// Feeds one delivered up-frame into coordinator `c`'s core. The
    /// primary's inputs are mirrored into the in-memory event journal
    /// until it dies; replaying those events re-drives the same core
    /// entry points, so even vetoed frames replay identically.
    fn ingest(&mut self, i: usize, c: usize, bytes: &[u8], now_ms: u64, epoch: u64) {
        let frame = match Frame::decode(bytes) {
            Ok(f) => f,
            Err(_) => {
                self.tallies.wire_errors += 1;
                return;
            }
        };
        let logging = c == 0 && self.kill_epoch.is_none();
        match frame {
            Frame::Hello {
                node,
                floor,
                node_max,
                app,
                term,
            } => {
                if self.agents[i].slot.is_some() && self.agents[i].coord == Some(c) {
                    return; // duplicate Hello on a live link; ignore
                }
                // The announced term fences a superseded core on contact.
                let _ = self.coords[c].core.observe_term(term);
                if logging {
                    self.event_log.push(FleetEvent::Admit {
                        name: node.clone(),
                        app: app.clone(),
                        floor_w: floor.value(),
                        node_max_w: node_max.value(),
                        now_ms,
                    });
                }
                match self.coords[c]
                    .core
                    .admit(node, app, floor, node_max, now_ms)
                {
                    Ok(slot) => {
                        self.agents[i].slot = Some(slot);
                        self.agents[i].coord = Some(c);
                        let owners = &mut self.coords[c].slot_owner;
                        if owners.len() <= slot {
                            owners.resize(slot + 1, usize::MAX);
                        }
                        owners[slot] = i;
                    }
                    Err(Error::Fenced { .. }) => {
                        // Soft refusal: this coordinator is superseded.
                        // The agent re-dials and finds the live successor
                        // next epoch — it is not blacklisted.
                        self.agents[i].coord = None;
                    }
                    Err(_) => {
                        // Blacklisted (evicted) or implausible: the
                        // connection is refused, permanently.
                        self.agents[i].rejected = true;
                        self.agents[i].coord = None;
                    }
                }
            }
            Frame::DemandReport {
                seq,
                ceiling,
                consumption,
                active,
            } => {
                if self.agents[i].coord != Some(c) {
                    return; // link moved on; frame orphaned
                }
                if let Some(slot) = self.agents[i].slot {
                    if logging {
                        self.event_log.push(FleetEvent::Report {
                            slot,
                            seq,
                            ceiling_w: ceiling.value(),
                            consumption_w: consumption.value(),
                            active,
                            now_ms,
                        });
                    }
                    self.coords[c]
                        .core
                        .on_report(slot, seq, ceiling, consumption, active, now_ms);
                }
            }
            Frame::Heartbeat { seq, term } => {
                if self.coords[c].core.observe_term(term).is_err() {
                    return; // this coordinator is fenced; frame refused
                }
                if self.agents[i].coord != Some(c) {
                    return;
                }
                if let Some(slot) = self.agents[i].slot {
                    if logging {
                        self.event_log
                            .push(FleetEvent::Heartbeat { slot, seq, now_ms });
                    }
                    self.coords[c].core.on_heartbeat(slot, seq, now_ms);
                }
            }
            Frame::Goodbye => {
                if self.agents[i].coord != Some(c) {
                    return;
                }
                if let Some(slot) = self.agents[i].slot.take() {
                    if logging {
                        self.event_log.push(FleetEvent::Goodbye { slot });
                    }
                    self.coords[c].core.on_goodbye(slot);
                }
                self.agents[i].coord = None;
            }
            Frame::BudgetGrant { .. } | Frame::Handover { .. } => {
                self.tallies.wire_errors += 1; // wrong-direction frame
            }
        }
        let _ = epoch;
    }

    /// Epoch-close invariant checks and latency metrics.
    fn check_epoch(&mut self, record: &crate::core::EpochRecord, epoch: u64) {
        // Conservation: absolute, every epoch.
        if record.total_granted > self.cfg.budget.value() + 1e-6 {
            self.tallies.conservation_violations += 1;
        }

        // Honest floors: every live, non-quarantined honest agent that
        // appears in the grant table keeps at least its floor.
        for (name, watts) in &record.granted {
            if record.quarantined.contains(name) {
                continue;
            }
            let Some(agent) = self.agents.iter().find(|a| &a.name == name) else {
                continue;
            };
            if self.net.is_ever_byzantine(agent.idx) {
                continue;
            }
            if *watts < self.cfg.floor.value() - 1e-6 {
                self.tallies.floor_violations += 1;
            }
        }

        // Reclaim latency: a killed agent's name showing up in this
        // epoch's reclaims resolves its pending kill clock.
        for i in 0..self.agents.len() {
            let name = self.agents[i].name.clone();
            if let Some(killed_at) = self.agents[i].killed_at {
                if record.reclaimed.contains(&name) {
                    let delay = epoch.saturating_sub(killed_at);
                    self.max_reclaim = Some(self.max_reclaim.unwrap_or(0).max(delay));
                    self.agents[i].killed_at = None;
                }
            }

            // Quarantine latency, measured from the first effective lie.
            if self.first_quarantined[i].is_none()
                && (record.quarantined.contains(&name) || record.evicted.contains(&name))
            {
                self.first_quarantined[i] = Some(epoch);
                if let Some(lie) = self.agents[i].first_lie {
                    let delay = epoch.saturating_sub(lie) + 1;
                    self.max_quarantine_delay =
                        Some(self.max_quarantine_delay.unwrap_or(0).max(delay));
                }
            }
        }
    }

    /// Final scorecard for the completed soak.
    fn score(self) -> ScenarioScore {
        let byz_total = (0..self.cfg.agents)
            .filter(|&i| self.net.is_ever_byzantine(i))
            .count();
        let byz_quarantined = (0..self.cfg.agents)
            .filter(|&i| self.net.is_ever_byzantine(i) && self.first_quarantined[i].is_some())
            .count();
        let authoritative = if self.promoted {
            &self.coords[1]
        } else {
            &self.coords[0]
        };
        let evictions = authoritative
            .core
            .views()
            .iter()
            .filter(|v| v.state == NodeState::Evicted || v.trust == Trust::Evicted)
            .count() as u64;
        // A takeover that never completed (no successor-term grant ever
        // applied) scores as the full run length, not as "no kill".
        let takeover_epochs = self.kill_epoch.map(|k| {
            self.takeover_epoch
                .map(|t| t.saturating_sub(k))
                .unwrap_or(self.cfg.epochs)
        });
        // A resurrected stale primary must have ended the run fenced; a
        // primary that stayed dead passes vacuously.
        let fenced_ok = if self.kill_epoch.is_some() && self.coords[0].alive {
            self.coords[0].core.fenced()
        } else {
            true
        };
        let mut card = ScenarioScore {
            scenario: self.scenario_name,
            seed: self.cfg.seed,
            agents: self.cfg.agents,
            epochs: self.cfg.epochs,
            budget_w: self.cfg.budget.value(),
            conservation_ok: self.tallies.conservation_violations == 0,
            conservation_violations: self.tallies.conservation_violations,
            floor_ok: self.tallies.floor_violations == 0,
            floor_violations: self.tallies.floor_violations,
            byz_total,
            byz_quarantined,
            max_quarantine_delay: self.max_quarantine_delay,
            max_time_to_reclaim: self.max_reclaim,
            max_time_to_heal: self.max_heal,
            safe_cap_violations: self.tallies.safe_cap_violations,
            frames_dropped: self.tallies.frames_dropped,
            frames_corrupted: self.tallies.frames_corrupted,
            wire_errors: self.tallies.wire_errors,
            evictions,
            takeover_epochs,
            stale_grants_fenced: self.tallies.stale_grants_fenced,
            replay_matched: self.replay_matched,
            fenced_ok,
            score: 0.0,
        };
        card.score = card.score_of();
        card
    }
}

/// Runs one named scenario (built-in) under `cfg`.
pub fn run_scenario(cfg: &ChaosConfig, name: &str) -> Result<ScenarioScore> {
    let sc = scenario(name).ok_or_else(|| {
        Error::invalid(
            "scenario",
            format!(
                "unknown scenario {name}; known: {}",
                SCENARIOS
                    .iter()
                    .map(|s| s.name)
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
        )
    })?;
    Ok(ChaosFleet::new(cfg.clone(), sc)?.run())
}

/// Runs the full built-in matrix under `cfg` and ranks the scorecard:
/// best score first, name as the tiebreak.
pub fn run_matrix(cfg: &ChaosConfig) -> Result<Vec<ScenarioScore>> {
    let mut cards = Vec::with_capacity(SCENARIOS.len());
    for sc in SCENARIOS {
        cards.push(ChaosFleet::new(cfg.clone(), sc)?.run());
    }
    cards.sort_by(|a, b| {
        b.score
            .total_cmp(&a.score)
            .then_with(|| a.scenario.cmp(&b.scenario))
    });
    Ok(cards)
}

/// Pops every queued up-frame due at `epoch`, preserving queue order.
fn drain_due_up(queue: &mut Vec<QueuedUp>, epoch: u64) -> Vec<(usize, Vec<u8>)> {
    let mut due = Vec::new();
    let mut keep = Vec::with_capacity(queue.len());
    for (deliver, dest, bytes) in queue.drain(..) {
        if deliver <= epoch {
            due.push((dest, bytes));
        } else {
            keep.push((deliver, dest, bytes));
        }
    }
    *queue = keep;
    due
}

/// Pops every queued frame due at `epoch`, preserving queue order.
fn drain_due(queue: &mut Vec<Queued>, epoch: u64) -> Vec<Vec<u8>> {
    let mut due = Vec::new();
    let mut keep = Vec::with_capacity(queue.len());
    for (deliver, bytes) in queue.drain(..) {
        if deliver <= epoch {
            due.push(bytes);
        } else {
            keep.push((deliver, bytes));
        }
    }
    *queue = keep;
    due
}

/// Deterministic single-bit corruption; the frame CRC must catch it.
fn corrupt(bytes: &mut [u8]) {
    if let Some(last) = bytes.last_mut() {
        *last ^= 0x40;
    }
}

/// One SplitMix64 step mapped to a uniform draw in `[0, 1)`.
fn next_uniform(state: &mut u64) -> f64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_builtin_scenario_conserves_and_keeps_honest_floors() {
        let cards = run_matrix(&ChaosConfig::new(42)).unwrap();
        assert_eq!(cards.len(), SCENARIOS.len());
        for card in &cards {
            assert!(card.conservation_ok, "{}: {card:?}", card.scenario);
            assert!(card.floor_ok, "{}: {card:?}", card.scenario);
            assert_eq!(card.safe_cap_violations, 0, "{}", card.scenario);
        }
    }

    #[test]
    fn byzantine_agents_are_quarantined_within_two_epochs() {
        for name in ["byzantine-minority", "replay-storm"] {
            let card = run_scenario(&ChaosConfig::new(42), name).unwrap();
            assert!(card.byz_total > 0, "{name}");
            assert_eq!(card.byz_quarantined, card.byz_total, "{name}: {card:?}");
            assert!(
                card.max_quarantine_delay.is_some_and(|d| d <= 2),
                "{name}: {card:?}"
            );
        }
    }

    #[test]
    fn kills_reclaim_within_two_epochs_and_partitions_heal() {
        let card = run_scenario(&ChaosConfig::new(42), "cascading-kills").unwrap();
        assert!(card.max_time_to_reclaim.is_some_and(|t| t <= 2), "{card:?}");
        let card = run_scenario(&ChaosConfig::new(42), "partition-heal").unwrap();
        assert!(card.max_time_to_heal.is_some_and(|t| t <= 3), "{card:?}");
    }

    #[test]
    fn the_same_seed_replays_an_identical_scorecard() {
        let a = run_matrix(&ChaosConfig::new(7)).unwrap();
        let b = run_matrix(&ChaosConfig::new(7)).unwrap();
        assert_eq!(a, b);
        let c = run_matrix(&ChaosConfig::new(8)).unwrap();
        assert_ne!(a, c, "different seed should change some tallies");
    }

    #[test]
    fn corrupted_frames_are_caught_by_the_crc_never_ingested() {
        let card = run_scenario(&ChaosConfig::new(42), "frame-chaos").unwrap();
        assert!(card.frames_corrupted > 0, "{card:?}");
        assert!(
            card.wire_errors >= card.frames_corrupted,
            "every corruption must surface as a wire error: {card:?}"
        );
        assert!(card.conservation_ok && card.floor_ok, "{card:?}");
    }

    #[test]
    fn a_flapping_agent_is_rate_limited_but_never_quarantined() {
        let cfg = ChaosConfig::new(42);
        let sc = Scenario {
            name: "flap-test",
            summary: "",
            plan: "byz-flap,peer=0",
            thrash: false,
        };
        let fleet = ChaosFleet::new(cfg, &sc).unwrap();
        let card = fleet.run();
        // Flapping is obnoxious but honest: rate limiting absorbs the
        // storms, silence stays inside the heartbeat timeout, and the
        // trust ladder never moves.
        assert_eq!(card.byz_quarantined, 0, "{card:?}");
        assert!(card.conservation_ok && card.floor_ok, "{card:?}");
    }

    #[test]
    fn unknown_scenarios_are_a_typed_error() {
        let err = run_scenario(&ChaosConfig::new(1), "nope").unwrap_err();
        assert!(err.to_string().contains("nope"), "{err}");
    }

    #[test]
    fn coordinator_kill_promotes_the_standby_within_three_epochs() {
        let card = run_scenario(&ChaosConfig::new(42), "coordinator-kill").unwrap();
        assert_eq!(card.replay_matched, Some(true), "{card:?}");
        assert!(card.takeover_epochs.is_some_and(|t| t <= 3), "{card:?}");
        assert!(card.conservation_ok && card.floor_ok, "{card:?}");
        assert_eq!(card.score, 100.0, "{card:?}");
    }

    #[test]
    fn takeover_under_partition_still_conserves() {
        let card = run_scenario(&ChaosConfig::new(42), "takeover-partition").unwrap();
        assert!(card.takeover_epochs.is_some_and(|t| t <= 3), "{card:?}");
        assert!(card.conservation_ok, "{card:?}");
        assert_eq!(card.safe_cap_violations, 0, "{card:?}");
    }

    #[test]
    fn a_resurrected_stale_primary_ends_the_run_fenced() {
        let card = run_scenario(&ChaosConfig::new(42), "stale-primary-return").unwrap();
        assert!(card.fenced_ok, "{card:?}");
        assert_eq!(card.replay_matched, Some(true), "{card:?}");
        assert!(card.conservation_ok && card.floor_ok, "{card:?}");
    }

    #[test]
    fn msr_fault_plan_composes_agents_miss_grant_applications() {
        // Agent 0's cap writes fail for the whole run: it can never apply
        // a grant, so it keeps enforcing its safe cap. The fleet must
        // still conserve and keep floors.
        let mut cfg = ChaosConfig::new(42);
        cfg.msr_plan = dufp_msr::fault::FaultPlan::parse("write,reg=cap,cpu=0,always").unwrap();
        let sc = scenario("baseline").unwrap();
        let card = ChaosFleet::new(cfg, sc).unwrap().run();
        assert!(card.conservation_ok && card.floor_ok, "{card:?}");
    }
}
