//! Coordinator and agent configuration, with the same typed field-naming
//! validation [`dufp_control::ControlConfig::validate`] established.

use dufp_types::{Error, Ratio, Result, Watts};
use std::path::PathBuf;
use std::time::Duration;

/// A finite `f64`, or a typed error naming the offending field.
fn finite(name: &'static str, v: f64) -> Result<()> {
    if v.is_finite() {
        Ok(())
    } else {
        Err(Error::invalid(name, format!("{v} is not finite")))
    }
}

/// A finite, strictly positive `f64`.
fn positive(name: &'static str, v: f64) -> Result<()> {
    finite(name, v)?;
    if v > 0.0 {
        Ok(())
    } else {
        Err(Error::invalid(name, format!("{v} must be positive")))
    }
}

/// Which allocation policy the coordinator runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// Even split, never changes.
    StaticSplit,
    /// Demand-based reallocation (headroom donors fund ceiling riders).
    DemandBased,
}

impl PolicyKind {
    /// Display label (matches the in-process allocator names).
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::StaticSplit => "static-split",
            PolicyKind::DemandBased => "demand-based",
        }
    }
}

/// Coordinator-side configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct CoordinatorConfig {
    /// Listen address, e.g. `127.0.0.1:7070` (`:0` picks a free port).
    pub listen: String,
    /// Global fleet power budget (package domains).
    pub budget: Watts,
    /// Allocation policy.
    pub policy: PolicyKind,
    /// Wall-clock allocator epoch length.
    pub epoch: Duration,
    /// A node whose last report or heartbeat is older than this is dead;
    /// its watts are reclaimed and redistributed at the next epoch.
    /// Defaults to 1.5 × `epoch` so a kill is detected within two epochs.
    pub heartbeat_timeout: Duration,
    /// Stop after this many allocator epochs (`None` = run until every
    /// agent that ever joined has departed, or shutdown is requested).
    pub max_epochs: Option<u64>,
    /// Floor for the demand-based policy: no live node's ceiling falls
    /// below it.
    pub floor: Watts,
    /// Per-node silicon limit for the demand-based policy.
    pub node_max: Watts,
    /// Demand-vetting and quarantine-ladder tunables (see [`crate::vet`]).
    pub vet: crate::vet::VetConfig,
    /// Journal directory for durable coordinator state (DESIGN.md §15).
    /// When set, every core input event is appended to a
    /// [`crate::fleet_journal::FleetJournal`] before it is applied, and a
    /// restart of the coordinator on the same directory recovers the fleet
    /// by checkpoint+replay instead of starting cold.
    pub journal_dir: Option<PathBuf>,
    /// Warm-standby mode: probe this primary's address and take over
    /// (replay the shared journal, bump the coordination term, bind and
    /// serve) when it stops answering. Requires `journal_dir` — a standby
    /// with no journal would promote to an empty fleet.
    pub standby_of: Option<String>,
    /// Successor address advertised in the graceful `Handover` frame when
    /// this coordinator finishes: agents reconnect there immediately
    /// instead of waiting out the disconnect grace. Also arms pause
    /// self-fencing: a primary that stalls longer than twice the heartbeat
    /// timeout fences itself rather than risk a split brain with the
    /// successor.
    pub successor: Option<String>,
}

impl CoordinatorConfig {
    /// A coordinator on `listen` owning `budget` watts, with the defaults
    /// the loopback fleet tests and the CLI use: demand-based policy,
    /// 1-second epochs, heartbeat timeout 1.5 epochs.
    pub fn new(listen: impl Into<String>, budget: Watts) -> Self {
        let epoch = Duration::from_secs(1);
        CoordinatorConfig {
            listen: listen.into(),
            budget,
            policy: PolicyKind::DemandBased,
            epoch,
            heartbeat_timeout: epoch.mul_f64(1.5),
            max_epochs: None,
            floor: Watts(65.0),
            node_max: Watts(125.0),
            vet: crate::vet::VetConfig::default(),
            journal_dir: None,
            standby_of: None,
            successor: None,
        }
    }

    /// Sets the epoch and rescales the heartbeat timeout to 1.5 epochs.
    pub fn with_epoch(mut self, epoch: Duration) -> Self {
        self.epoch = epoch;
        self.heartbeat_timeout = epoch.mul_f64(1.5);
        self
    }

    /// Rejects configurations no coordinator can serve — zero/negative/NaN
    /// budgets, a floor above the per-node ceiling, degenerate timings —
    /// with a typed [`Error::InvalidValue`] naming the offending field.
    pub fn validate(&self) -> Result<()> {
        if self.listen.is_empty() {
            return Err(Error::invalid("listen", "empty listen address"));
        }
        positive("budget", self.budget.value())?;
        positive("floor", self.floor.value())?;
        positive("node_max", self.node_max.value())?;
        if self.floor > self.node_max {
            return Err(Error::invalid(
                "floor",
                format!(
                    "{} W above node_max {} W",
                    self.floor.value(),
                    self.node_max.value()
                ),
            ));
        }
        if self.budget < self.floor {
            return Err(Error::invalid(
                "budget",
                format!(
                    "{} W cannot cover even one node's {} W floor",
                    self.budget.value(),
                    self.floor.value()
                ),
            ));
        }
        if self.epoch.is_zero() {
            return Err(Error::invalid("epoch", "zero allocator epoch"));
        }
        if self.heartbeat_timeout.is_zero() {
            return Err(Error::invalid("heartbeat_timeout", "zero timeout"));
        }
        if self.max_epochs == Some(0) {
            return Err(Error::invalid("max_epochs", "zero epochs"));
        }
        if self.standby_of.is_some() && self.journal_dir.is_none() {
            return Err(Error::invalid(
                "standby_of",
                "a standby needs journal_dir: promoting without the journal \
                 would serve an empty fleet",
            ));
        }
        if self.standby_of.as_deref() == Some("") {
            return Err(Error::invalid("standby_of", "empty primary address"));
        }
        if self.successor.as_deref() == Some("") {
            return Err(Error::invalid("successor", "empty successor address"));
        }
        self.vet.validate()?;
        Ok(())
    }
}

/// Agent-side configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct AgentConfig {
    /// Coordinator address, e.g. `127.0.0.1:7070`.
    pub connect: String,
    /// Warm-standby coordinator addresses. Reconnect attempts rotate
    /// round-robin over `[connect] + standbys`, so an agent that loses the
    /// primary finds a promoted standby without operator action.
    pub standbys: Vec<String>,
    /// Node name sent in the Hello frame.
    pub node: String,
    /// Applications to run back to back (see `dufp apps`).
    pub queue: Vec<String>,
    /// Tolerated slowdown for the node-local DUFP.
    pub slowdown: Ratio,
    /// RNG seed for the simulated node.
    pub seed: u64,
    /// The ceiling the node enforces while unconnected or degraded — the
    /// safe local static cap. Also the floor reported in Hello.
    pub safe_cap: Watts,
    /// The node's silicon PL1, reported in Hello.
    pub node_max: Watts,
    /// Send a demand report (and heartbeat) every this many control
    /// intervals.
    pub report_intervals: u32,
    /// Wall-clock pause per 200 ms control interval. The simulator runs
    /// much faster than real time; pacing keeps a demo fleet observable
    /// and spreads reports across coordinator epochs. `0` = flat out.
    pub pace: Duration,
    /// Stop after this many control intervals even if the queue has work
    /// left (`None` = run to completion). Used by benchmarks and CI.
    pub max_intervals: Option<u64>,
    /// Connection retry/backoff policy (initial connect and reconnects).
    pub retry: dufp_control::RetryPolicy,
}

impl AgentConfig {
    /// An agent for `connect` running `app`, with the defaults the fleet
    /// tests and the CLI use.
    pub fn new(
        connect: impl Into<String>,
        node: impl Into<String>,
        app: impl Into<String>,
    ) -> Self {
        AgentConfig {
            connect: connect.into(),
            standbys: Vec::new(),
            node: node.into(),
            queue: vec![app.into()],
            slowdown: Ratio::from_percent(10.0),
            seed: 42,
            safe_cap: Watts(90.0),
            node_max: Watts(125.0),
            report_intervals: 1,
            pace: Duration::ZERO,
            max_intervals: None,
            retry: dufp_control::RetryPolicy::default(),
        }
    }

    /// Rejects configurations no agent can run — empty queues,
    /// zero/negative/NaN caps, a safe cap above the silicon limit — with a
    /// typed [`Error::InvalidValue`] naming the offending field.
    pub fn validate(&self) -> Result<()> {
        if self.connect.is_empty() {
            return Err(Error::invalid("connect", "empty coordinator address"));
        }
        if self.standbys.iter().any(String::is_empty) {
            return Err(Error::invalid("standbys", "empty standby address"));
        }
        if self.node.is_empty() {
            return Err(Error::invalid("node", "empty node name"));
        }
        if self.queue.is_empty() || self.queue.iter().any(String::is_empty) {
            return Err(Error::invalid("queue", "empty application queue"));
        }
        finite("slowdown", self.slowdown.value())?;
        if !(0.0..1.0).contains(&self.slowdown.value()) {
            return Err(Error::invalid(
                "slowdown",
                format!("{} must be within [0, 1)", self.slowdown.value()),
            ));
        }
        positive("safe_cap", self.safe_cap.value())?;
        positive("node_max", self.node_max.value())?;
        if self.safe_cap > self.node_max {
            return Err(Error::invalid(
                "safe_cap",
                format!(
                    "{} W above node_max {} W",
                    self.safe_cap.value(),
                    self.node_max.value()
                ),
            ));
        }
        if self.report_intervals == 0 {
            return Err(Error::invalid("report_intervals", "zero report cadence"));
        }
        if self.max_intervals == Some(0) {
            return Err(Error::invalid("max_intervals", "zero intervals"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coordinator_defaults_validate() {
        CoordinatorConfig::new("127.0.0.1:0", Watts(400.0))
            .validate()
            .unwrap();
    }

    #[test]
    fn coordinator_rejects_bad_budgets_naming_the_field() {
        for bad in [0.0, -10.0, f64::NAN, f64::INFINITY] {
            let cfg = CoordinatorConfig::new("127.0.0.1:0", Watts(bad));
            let err = cfg.validate().unwrap_err();
            assert!(
                matches!(err, Error::InvalidValue { what: "budget", .. }),
                "{bad}: {err:?}"
            );
        }
    }

    #[test]
    fn coordinator_rejects_floor_above_node_max() {
        let mut cfg = CoordinatorConfig::new("127.0.0.1:0", Watts(400.0));
        cfg.floor = Watts(130.0);
        let err = cfg.validate().unwrap_err();
        assert!(matches!(err, Error::InvalidValue { what: "floor", .. }));
    }

    #[test]
    fn coordinator_rejects_degenerate_timings() {
        let mut cfg = CoordinatorConfig::new("127.0.0.1:0", Watts(400.0));
        cfg.epoch = Duration::ZERO;
        assert!(cfg.validate().is_err());
        let mut cfg = CoordinatorConfig::new("127.0.0.1:0", Watts(400.0));
        cfg.max_epochs = Some(0);
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn coordinator_standby_requires_a_journal() {
        let mut cfg = CoordinatorConfig::new("127.0.0.1:0", Watts(400.0));
        cfg.standby_of = Some("127.0.0.1:7070".into());
        let err = cfg.validate().unwrap_err();
        assert!(matches!(
            err,
            Error::InvalidValue {
                what: "standby_of",
                ..
            }
        ));
        cfg.journal_dir = Some(std::path::PathBuf::from("/tmp/j"));
        cfg.validate().unwrap();
    }

    #[test]
    fn agent_rejects_empty_standby_addresses() {
        let mut cfg = AgentConfig::new("127.0.0.1:7070", "n0", "EP");
        cfg.standbys = vec!["127.0.0.1:7071".into(), String::new()];
        let err = cfg.validate().unwrap_err();
        assert!(matches!(
            err,
            Error::InvalidValue {
                what: "standbys",
                ..
            }
        ));
    }

    #[test]
    fn agent_defaults_validate() {
        AgentConfig::new("127.0.0.1:7070", "n0", "EP")
            .validate()
            .unwrap();
    }

    #[test]
    fn agent_rejects_bad_caps_naming_the_field() {
        for bad in [0.0, -1.0, f64::NAN] {
            let mut cfg = AgentConfig::new("127.0.0.1:7070", "n0", "EP");
            cfg.safe_cap = Watts(bad);
            let err = cfg.validate().unwrap_err();
            assert!(
                matches!(
                    err,
                    Error::InvalidValue {
                        what: "safe_cap",
                        ..
                    }
                ),
                "{bad}: {err:?}"
            );
        }
        let mut cfg = AgentConfig::new("127.0.0.1:7070", "n0", "EP");
        cfg.safe_cap = Watts(130.0); // above the 125 W silicon limit
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn agent_rejects_empty_queue_and_cadence() {
        let mut cfg = AgentConfig::new("127.0.0.1:7070", "n0", "EP");
        cfg.queue.clear();
        assert!(cfg.validate().is_err());
        let mut cfg = AgentConfig::new("127.0.0.1:7070", "n0", "EP");
        cfg.report_intervals = 0;
        assert!(cfg.validate().is_err());
    }
}
