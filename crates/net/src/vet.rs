//! Demand-report vetting and the quarantine trust ladder.
//!
//! The coordinator cannot assume agents are honest: a compromised (or
//! merely buggy) node can report `NaN` demand that poisons the
//! proportional allocator, replay stale frames, storm heartbeats, or
//! quietly consume more than it was granted. This module holds the
//! coordinator-side defenses, applied at frame ingestion by
//! [`crate::core::FleetCore`]:
//!
//! * **Plausibility envelope** — watt values must be finite, non-negative
//!   and within `node_max × (1 + envelope_margin)` of the silicon limit
//!   the node itself announced at Hello. Anything else is vetoed before
//!   it reaches the allocator.
//! * **Sequence monotonicity** — report and heartbeat sequence numbers
//!   must strictly increase. An exact duplicate (`seq == last`) is
//!   dropped silently, because a lossy network legitimately duplicates
//!   frames; a *regression* (`seq < last`) counts as a replay, and more
//!   than [`VetConfig::replay_tolerance`] replays in one epoch — beyond
//!   what mild reordering produces — is a strike.
//! * **Rate limiting** — frames beyond the per-epoch budget are dropped
//!   without processing. Soft: being chatty is not a strike, it is just
//!   ignored, so a flapping-but-honest node cannot strike itself into
//!   quarantine.
//! * **Overdraw detection** — consuming more than both the granted
//!   ceiling *and* the ceiling the node claims to enforce (by
//!   [`VetConfig::overdraw_margin`]) means the node is ignoring grants.
//!
//! Strikes are epoch-granular: each category (veto, replay, overdraw)
//! can contribute at most one strike per epoch, and a clean epoch decays
//! one strike, so a single transient anomaly never escalates. The ladder
//! derived from the strike count is [`Trust`]: `Trusted → Suspect →
//! Quarantined` (capped at its floor) `→ Evicted` (watts reclaimed, name
//! blacklisted for the rest of the run). Defaults put a persistently
//! byzantine node in quarantine within two epochs.

use dufp_types::{Error, Result, Watts};
use serde::{Deserialize, Serialize};

/// Tunables for vetting and the quarantine ladder.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VetConfig {
    /// Watt values may exceed the node's announced `node_max` by this
    /// fraction before they are implausible (measurement noise allowance).
    pub envelope_margin: f64,
    /// Demand reports accepted per node per epoch; the rest are dropped.
    pub max_reports_per_epoch: u32,
    /// Heartbeats accepted per node per epoch; the rest are dropped.
    pub max_heartbeats_per_epoch: u32,
    /// Sequence regressions tolerated per epoch before they count as a
    /// replay strike (mild reordering is normal on a lossy path).
    pub replay_tolerance: u32,
    /// Consumption may exceed the granted/claimed ceiling by this
    /// fraction before it counts as overdraw.
    pub overdraw_margin: f64,
    /// Strikes at which a node becomes [`Trust::Suspect`].
    pub suspect_after: u32,
    /// Strikes at which a node is [`Trust::Quarantined`] (capped at its
    /// floor; its reports no longer influence allocation).
    pub quarantine_after: u32,
    /// Strikes at which a node is [`Trust::Evicted`] (disconnected, watts
    /// reclaimed, name blacklisted).
    pub evict_after: u32,
}

impl Default for VetConfig {
    fn default() -> Self {
        VetConfig {
            envelope_margin: 0.25,
            max_reports_per_epoch: 16,
            max_heartbeats_per_epoch: 32,
            replay_tolerance: 2,
            overdraw_margin: 0.15,
            suspect_after: 1,
            quarantine_after: 2,
            evict_after: 6,
        }
    }
}

impl VetConfig {
    /// Rejects ladders that cannot work — non-finite margins, zero rate
    /// budgets, thresholds out of order — naming the offending field.
    pub fn validate(&self) -> Result<()> {
        for (name, v) in [
            ("envelope_margin", self.envelope_margin),
            ("overdraw_margin", self.overdraw_margin),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(Error::invalid(name, format!("{v} must be finite and >= 0")));
            }
        }
        if self.max_reports_per_epoch == 0 {
            return Err(Error::invalid("max_reports_per_epoch", "zero rate budget"));
        }
        if self.max_heartbeats_per_epoch == 0 {
            return Err(Error::invalid(
                "max_heartbeats_per_epoch",
                "zero rate budget",
            ));
        }
        if self.suspect_after == 0 {
            return Err(Error::invalid(
                "suspect_after",
                "zero would make every node a suspect",
            ));
        }
        if self.suspect_after > self.quarantine_after || self.quarantine_after > self.evict_after {
            return Err(Error::invalid(
                "quarantine ladder",
                format!(
                    "thresholds must be ordered: suspect {} <= quarantine {} <= evict {}",
                    self.suspect_after, self.quarantine_after, self.evict_after
                ),
            ));
        }
        Ok(())
    }
}

/// How much the coordinator trusts a node. Ordinals are stable and appear
/// in [`dufp_telemetry::Reason::Quarantined`] / `Evicted` events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Trust {
    /// No recent strikes; full allocator participation.
    Trusted = 0,
    /// Struck recently; still allocated normally, but watched.
    Suspect = 1,
    /// Capped at its floor; its demand no longer influences allocation.
    Quarantined = 2,
    /// Disconnected; watts reclaimed; name blacklisted. Terminal.
    Evicted = 3,
}

impl Trust {
    /// The stable ladder ordinal (event `old`/`new` encoding).
    pub fn ordinal(self) -> u64 {
        self as u64
    }

    /// Human-readable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Trust::Trusted => "trusted",
            Trust::Suspect => "suspect",
            Trust::Quarantined => "quarantined",
            Trust::Evicted => "evicted",
        }
    }
}

/// The verdict on one ingested frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameVerdict {
    /// Frame is sane; its contents were applied.
    Accepted,
    /// Exact duplicate of the last sequence number; dropped silently
    /// (lossy networks duplicate frames — not the node's fault).
    Duplicate,
    /// Sequence number regression: a replayed or badly stale frame.
    Replay,
    /// Over the per-epoch frame budget; dropped unprocessed.
    RateLimited,
    /// Watt values outside the plausibility envelope; dropped.
    Vetoed,
}

/// Per-node vetting state: sequence cursors, per-epoch rate counters and
/// strike flags, plus the accumulated strike count and trust rung.
///
/// Serializable so a coordinator checkpoint carries the full trust ladder:
/// a takeover standby must distrust exactly the nodes the dead primary
/// distrusted, or a quarantined node could launder its strikes through a
/// failover.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct NodeVet {
    last_report_seq: Option<u64>,
    last_heartbeat_seq: Option<u64>,
    reports_this_epoch: u32,
    heartbeats_this_epoch: u32,
    replays_this_epoch: u32,
    veto_flag: bool,
    replay_flag: bool,
    overdraw_flag: bool,
    strikes: u32,
    trust_rung: u32,
}

impl NodeVet {
    /// Fresh state for a newly admitted node.
    pub fn new() -> Self {
        NodeVet::default()
    }

    /// The node's current trust rung.
    pub fn trust(&self) -> Trust {
        match self.trust_rung {
            0 => Trust::Trusted,
            1 => Trust::Suspect,
            2 => Trust::Quarantined,
            _ => Trust::Evicted,
        }
    }

    /// Accumulated strikes (decays one per clean epoch).
    pub fn strikes(&self) -> u32 {
        self.strikes
    }

    /// Highest accepted report sequence number (0 before the first), used
    /// by replay-rejection telemetry events.
    pub fn last_report_seq(&self) -> u64 {
        self.last_report_seq.unwrap_or(0)
    }

    /// Whether this epoch's rate limit was crossed for the first time by
    /// the frame just checked (so callers can emit exactly one event).
    pub fn just_hit_report_limit(&self, cfg: &VetConfig) -> bool {
        self.reports_this_epoch == cfg.max_reports_per_epoch + 1
    }

    /// Vets one demand report. `granted` is the ceiling the coordinator
    /// last pushed to this node ([`Watts::ZERO`] before the first grant).
    pub fn check_report(
        &mut self,
        cfg: &VetConfig,
        seq: u64,
        ceiling: Watts,
        consumption: Watts,
        node_max: Watts,
        granted: Watts,
    ) -> FrameVerdict {
        self.reports_this_epoch = self.reports_this_epoch.saturating_add(1);
        if self.reports_this_epoch > cfg.max_reports_per_epoch {
            return FrameVerdict::RateLimited;
        }
        if let Some(last) = self.last_report_seq {
            if seq == last {
                return FrameVerdict::Duplicate;
            }
            if seq < last {
                self.replays_this_epoch = self.replays_this_epoch.saturating_add(1);
                if self.replays_this_epoch > cfg.replay_tolerance {
                    self.replay_flag = true;
                }
                return FrameVerdict::Replay;
            }
        }
        self.last_report_seq = Some(seq);

        let (c, k) = (ceiling.value(), consumption.value());
        let envelope = node_max.value() * (1.0 + cfg.envelope_margin);
        if !c.is_finite() || !k.is_finite() || c < 0.0 || k < 0.0 || c > envelope || k > envelope {
            self.veto_flag = true;
            return FrameVerdict::Vetoed;
        }
        // Overdraw: the node consumes more than BOTH the ceiling it was
        // granted and the one it claims to enforce. Requiring both keeps
        // an honest node with an in-flight shrink grant (consuming up to
        // its old, truthfully reported ceiling) off the ladder.
        let m = 1.0 + cfg.overdraw_margin;
        if granted.value() > 0.0 && k > granted.value() * m && k > c * m {
            self.overdraw_flag = true;
        }
        FrameVerdict::Accepted
    }

    /// Vets one heartbeat.
    pub fn check_heartbeat(&mut self, cfg: &VetConfig, seq: u64) -> FrameVerdict {
        self.heartbeats_this_epoch = self.heartbeats_this_epoch.saturating_add(1);
        if self.heartbeats_this_epoch > cfg.max_heartbeats_per_epoch {
            return FrameVerdict::RateLimited;
        }
        if let Some(last) = self.last_heartbeat_seq {
            if seq == last {
                return FrameVerdict::Duplicate;
            }
            if seq < last {
                self.replays_this_epoch = self.replays_this_epoch.saturating_add(1);
                if self.replays_this_epoch > cfg.replay_tolerance {
                    self.replay_flag = true;
                }
                return FrameVerdict::Replay;
            }
        }
        self.last_heartbeat_seq = Some(seq);
        FrameVerdict::Accepted
    }

    /// Closes the epoch: converts strike flags into at most one strike per
    /// category, decays one strike on a clean epoch, resets the per-epoch
    /// counters and recomputes the trust rung. Returns `Some((old, new))`
    /// when the rung changed. Eviction is terminal: once there, the rung
    /// never moves again.
    pub fn finalize_epoch(&mut self, cfg: &VetConfig) -> Option<(Trust, Trust)> {
        let struck =
            u32::from(self.veto_flag) + u32::from(self.replay_flag) + u32::from(self.overdraw_flag);
        if struck > 0 {
            self.strikes = self.strikes.saturating_add(struck);
        } else {
            self.strikes = self.strikes.saturating_sub(1);
        }
        self.veto_flag = false;
        self.replay_flag = false;
        self.overdraw_flag = false;
        self.reports_this_epoch = 0;
        self.heartbeats_this_epoch = 0;
        self.replays_this_epoch = 0;

        let old = self.trust();
        if old == Trust::Evicted {
            return None;
        }
        let new = if self.strikes >= cfg.evict_after {
            Trust::Evicted
        } else if self.strikes >= cfg.quarantine_after {
            Trust::Quarantined
        } else if self.strikes >= cfg.suspect_after {
            Trust::Suspect
        } else {
            Trust::Trusted
        };
        self.trust_rung = new.ordinal() as u32;
        (new != old).then_some((old, new))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> VetConfig {
        VetConfig::default()
    }

    const NODE_MAX: Watts = Watts(125.0);

    #[test]
    fn defaults_validate_and_bad_ladders_do_not() {
        cfg().validate().unwrap();
        let mut bad = cfg();
        bad.quarantine_after = 9; // above evict_after
        assert!(bad.validate().is_err());
        let mut bad = cfg();
        bad.envelope_margin = f64::NAN;
        assert!(bad.validate().is_err());
        let mut bad = cfg();
        bad.max_reports_per_epoch = 0;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn nan_negative_and_absurd_watts_are_vetoed() {
        for (c, k) in [
            (f64::NAN, 90.0),
            (90.0, f64::NAN),
            (f64::INFINITY, 90.0),
            (-5.0, 90.0),
            (90.0, -5.0),
            (90.0, 1250.0), // 10× the silicon limit
        ] {
            let mut v = NodeVet::new();
            let verdict = v.check_report(&cfg(), 1, Watts(c), Watts(k), NODE_MAX, Watts(100.0));
            assert_eq!(verdict, FrameVerdict::Vetoed, "c={c} k={k}");
        }
    }

    #[test]
    fn persistent_byzantine_reports_quarantine_within_two_epochs() {
        let mut v = NodeVet::new();
        v.check_report(
            &cfg(),
            1,
            Watts(f64::NAN),
            Watts(90.0),
            NODE_MAX,
            Watts::ZERO,
        );
        assert_eq!(
            v.finalize_epoch(&cfg()),
            Some((Trust::Trusted, Trust::Suspect))
        );
        v.check_report(
            &cfg(),
            2,
            Watts(f64::NAN),
            Watts(90.0),
            NODE_MAX,
            Watts::ZERO,
        );
        assert_eq!(
            v.finalize_epoch(&cfg()),
            Some((Trust::Suspect, Trust::Quarantined))
        );
    }

    #[test]
    fn clean_epochs_decay_strikes_back_to_trusted() {
        let mut v = NodeVet::new();
        v.check_report(&cfg(), 1, Watts(-1.0), Watts(90.0), NODE_MAX, Watts::ZERO);
        v.finalize_epoch(&cfg());
        assert_eq!(v.trust(), Trust::Suspect);
        v.check_report(&cfg(), 2, Watts(90.0), Watts(80.0), NODE_MAX, Watts(90.0));
        assert_eq!(
            v.finalize_epoch(&cfg()),
            Some((Trust::Suspect, Trust::Trusted))
        );
    }

    #[test]
    fn duplicates_drop_silently_and_mild_reordering_never_strikes() {
        let mut v = NodeVet::new();
        let ok = |v: &mut NodeVet, seq| {
            v.check_report(&cfg(), seq, Watts(90.0), Watts(80.0), NODE_MAX, Watts(90.0))
        };
        assert_eq!(ok(&mut v, 5), FrameVerdict::Accepted);
        assert_eq!(ok(&mut v, 5), FrameVerdict::Duplicate, "network dup");
        assert_eq!(ok(&mut v, 4), FrameVerdict::Replay, "one reorder");
        assert_eq!(ok(&mut v, 3), FrameVerdict::Replay, "two reorders");
        assert!(v.finalize_epoch(&cfg()).is_none(), "within tolerance");
        assert_eq!(v.trust(), Trust::Trusted);
    }

    #[test]
    fn a_replay_storm_walks_the_ladder_to_eviction() {
        let mut v = NodeVet::new();
        v.check_report(&cfg(), 100, Watts(90.0), Watts(80.0), NODE_MAX, Watts(90.0));
        let mut evicted_at = None;
        for epoch in 1..=10u32 {
            for seq in 0..8 {
                v.check_report(&cfg(), seq, Watts(90.0), Watts(80.0), NODE_MAX, Watts(90.0));
            }
            if let Some((_, Trust::Evicted)) = v.finalize_epoch(&cfg()) {
                evicted_at = Some(epoch);
                break;
            }
        }
        let at = evicted_at.expect("storming replays must evict");
        assert_eq!(at, cfg().evict_after, "one strike per epoch");
        // Terminal: nothing moves the rung again.
        assert!(v.finalize_epoch(&cfg()).is_none());
        assert_eq!(v.trust(), Trust::Evicted);
    }

    #[test]
    fn rate_limit_drops_without_striking() {
        let mut v = NodeVet::new();
        let mut limited = 0;
        for seq in 1..=cfg().max_reports_per_epoch as u64 + 10 {
            let verdict =
                v.check_report(&cfg(), seq, Watts(90.0), Watts(80.0), NODE_MAX, Watts(90.0));
            if verdict == FrameVerdict::RateLimited {
                limited += 1;
            }
        }
        assert_eq!(limited, 10);
        assert!(v.finalize_epoch(&cfg()).is_none(), "chatty is not a strike");
        assert_eq!(v.trust(), Trust::Trusted);
    }

    #[test]
    fn overdraw_requires_exceeding_both_granted_and_claimed_ceiling() {
        // Honest node with an in-flight shrink: consumes near its OLD
        // ceiling (which it truthfully reports) — no strike.
        let mut v = NodeVet::new();
        v.check_report(&cfg(), 1, Watts(110.0), Watts(108.0), NODE_MAX, Watts(80.0));
        assert!(v.finalize_epoch(&cfg()).is_none());

        // Grant-ignorer claiming compliance while consuming double — strike.
        let mut v = NodeVet::new();
        v.check_report(&cfg(), 1, Watts(80.0), Watts(160.0), NODE_MAX, Watts(80.0));
        assert_eq!(
            v.finalize_epoch(&cfg()),
            Some((Trust::Trusted, Trust::Suspect))
        );
    }

    #[test]
    fn heartbeat_sequences_are_vetted_too() {
        let mut v = NodeVet::new();
        assert_eq!(v.check_heartbeat(&cfg(), 7), FrameVerdict::Accepted);
        assert_eq!(v.check_heartbeat(&cfg(), 7), FrameVerdict::Duplicate);
        assert_eq!(v.check_heartbeat(&cfg(), 3), FrameVerdict::Replay);
        let mut limited = false;
        for seq in 8..8 + cfg().max_heartbeats_per_epoch as u64 + 1 {
            limited |= v.check_heartbeat(&cfg(), seq) == FrameVerdict::RateLimited;
        }
        assert!(limited);
    }
}
