//! Declarative network-fault plans for chaos testing the fleet plane.
//!
//! [`dufp_msr::fault::FaultPlan`] chaos-tests the *actuation* path (MSR
//! reads/writes); this module applies the same grammar to the *network*
//! path: frames between the coordinator and its agents can be dropped,
//! delayed, duplicated, corrupted or reordered, links can be partitioned,
//! whole agents killed, and agents can be turned byzantine (lying demand
//! reports, replayed frames, heartbeat flapping, grant-ignoring
//! overdraw). A [`NetFaultPlan`] is a seed plus scoped [`NetFaultRule`]s;
//! schedules reuse [`FaultWhen`] verbatim, so `--net-fault-plan` composes
//! with `--fault-plan` — one seeded grammar, two failure domains.
//!
//! Command-line syntax (segments by `;`, items by `,`):
//!
//! ```text
//! seed=7;drop,p=0.05;partition,peer=0-1,dir=both,window=10+6;byz-nan,peer=0
//! ```
//!
//! Every rule starts with an op: a transport fault (`drop`, `delay`,
//! `dup`, `corrupt`, `reorder`), a topology fault (`partition`, `kill`),
//! or a byzantine behavior (`byz-inflate`, `byz-nan`, `byz-negative`,
//! `byz-replay`, `byz-flap`, `byz-overdraw`). Items scope it: `peer=N` or
//! `peer=A-B` (agent indices; default all), `dir=up|down|both` (agent →
//! coordinator is *up*; default both), `n=K` (delay length in epochs /
//! extra duplicates; default 1), and a schedule (`always`, `p=0.01`,
//! `at=EPOCH`, `window=FROM+COUNT`; default `always`), clocked on the
//! chaos epoch. Plans are fully deterministic given their seed.

use dufp_msr::fault::FaultWhen;
use dufp_types::{Error, Result};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// What a network-fault rule does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NetFaultOp {
    /// Discard matching frames.
    Drop,
    /// Hold matching frames for `n` epochs before delivery.
    Delay,
    /// Deliver matching frames `n` extra times.
    Dup,
    /// Flip one bit of the encoded frame (the CRC must catch it).
    Corrupt,
    /// Swap a matching frame with the one queued behind it.
    Reorder,
    /// Sever the link in the scoped direction(s); frames vanish.
    Partition,
    /// Kill the agent process outright (no Goodbye); it restarts — and
    /// must re-Hello — once the schedule stops matching.
    Kill,
    /// Kill the *primary coordinator* (no farewell frames); peer scoping
    /// is ignored. While the schedule matches the primary is down; a warm
    /// standby (when the chaos fleet runs one) detects the silence,
    /// replays the journal and promotes. If the schedule stops matching,
    /// the old primary resurrects *stale* — exactly the split-brain case
    /// term fencing exists for.
    CoordKill,
    /// Byzantine: report demand at ten times the silicon limit.
    ByzInflate,
    /// Byzantine: report `NaN` watts.
    ByzNan,
    /// Byzantine: report negative watts.
    ByzNegative,
    /// Byzantine: re-send a stale frame (old sequence number) per epoch.
    ByzReplay,
    /// Byzantine: storm heartbeats on odd epochs, go silent on even ones.
    ByzFlap,
    /// Byzantine: ignore grants — consume double the granted ceiling
    /// while reporting compliance.
    ByzOverdraw,
}

impl NetFaultOp {
    /// The op's plan-grammar keyword.
    pub fn keyword(self) -> &'static str {
        match self {
            NetFaultOp::Drop => "drop",
            NetFaultOp::Delay => "delay",
            NetFaultOp::Dup => "dup",
            NetFaultOp::Corrupt => "corrupt",
            NetFaultOp::Reorder => "reorder",
            NetFaultOp::Partition => "partition",
            NetFaultOp::Kill => "kill",
            NetFaultOp::CoordKill => "coord-kill",
            NetFaultOp::ByzInflate => "byz-inflate",
            NetFaultOp::ByzNan => "byz-nan",
            NetFaultOp::ByzNegative => "byz-negative",
            NetFaultOp::ByzReplay => "byz-replay",
            NetFaultOp::ByzFlap => "byz-flap",
            NetFaultOp::ByzOverdraw => "byz-overdraw",
        }
    }

    /// Whether this op describes agent (mis)behavior rather than a
    /// transport or topology fault.
    pub fn is_byzantine(self) -> bool {
        matches!(
            self,
            NetFaultOp::ByzInflate
                | NetFaultOp::ByzNan
                | NetFaultOp::ByzNegative
                | NetFaultOp::ByzReplay
                | NetFaultOp::ByzFlap
                | NetFaultOp::ByzOverdraw
        )
    }
}

/// Which direction of a link a rule scopes to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Dir {
    /// Agent → coordinator frames (reports, heartbeats, Hello, Goodbye).
    Up,
    /// Coordinator → agent frames (grants, Goodbye).
    Down,
    /// Both directions.
    Both,
}

impl Dir {
    fn covers(self, dir: Dir) -> bool {
        self == Dir::Both || self == dir
    }
}

/// One scoped network-fault rule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetFaultRule {
    /// What happens.
    pub op: NetFaultOp,
    /// Restrict to an inclusive agent-index range (`None` = every agent).
    #[serde(default)]
    pub peers: Option<(usize, usize)>,
    /// Which link direction the rule covers (meaningful for transport
    /// faults and partitions; byzantine ops and kills ignore it).
    pub dir: Dir,
    /// Op parameter: delay length in epochs, or extra duplicate count.
    pub n: u64,
    /// The schedule, clocked on the chaos epoch.
    pub when: FaultWhen,
}

impl NetFaultRule {
    fn matches(&self, peer: usize, dir: Dir) -> bool {
        let peer_ok = self.peers.is_none_or(|(lo, hi)| (lo..=hi).contains(&peer));
        peer_ok && self.dir.covers(dir)
    }
}

/// A reproducible adversarial scenario: a seed plus scoped rules.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct NetFaultPlan {
    /// Seed for the probabilistic rules: same seed, same failures.
    #[serde(default)]
    pub seed: u64,
    /// The rules; every matching rule is evaluated per frame/epoch.
    #[serde(default)]
    pub rules: Vec<NetFaultRule>,
}

impl NetFaultPlan {
    /// A plan with no rules (a perfectly honest, lossless fleet).
    pub fn none() -> Self {
        NetFaultPlan::default()
    }

    /// Whether this plan can ever inject a fault.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Parses the compact command-line syntax described in the module
    /// docs. Mirrors [`dufp_msr::fault::FaultPlan::parse`].
    pub fn parse(text: &str) -> Result<Self> {
        let mut plan = NetFaultPlan::default();
        for segment in text.split(';') {
            let segment = segment.trim();
            if segment.is_empty() {
                continue;
            }
            if let Some(seed) = segment.strip_prefix("seed=") {
                plan.seed = seed
                    .trim()
                    .parse()
                    .map_err(|_| Error::invalid("net fault plan seed", seed.to_string()))?;
                continue;
            }
            plan.rules.push(Self::parse_rule(segment)?);
        }
        Ok(plan)
    }

    fn parse_rule(segment: &str) -> Result<NetFaultRule> {
        let bad = |detail: String| Error::invalid("net fault plan rule", detail);
        let mut items = segment.split(',').map(str::trim);
        let op = match items.next() {
            Some("drop") => NetFaultOp::Drop,
            Some("delay") => NetFaultOp::Delay,
            Some("dup") => NetFaultOp::Dup,
            Some("corrupt") => NetFaultOp::Corrupt,
            Some("reorder") => NetFaultOp::Reorder,
            Some("partition") => NetFaultOp::Partition,
            Some("kill") => NetFaultOp::Kill,
            Some("coord-kill") => NetFaultOp::CoordKill,
            Some("byz-inflate") => NetFaultOp::ByzInflate,
            Some("byz-nan") => NetFaultOp::ByzNan,
            Some("byz-negative") => NetFaultOp::ByzNegative,
            Some("byz-replay") => NetFaultOp::ByzReplay,
            Some("byz-flap") => NetFaultOp::ByzFlap,
            Some("byz-overdraw") => NetFaultOp::ByzOverdraw,
            other => {
                return Err(bad(format!(
                    "rule must start with a net fault op \
                     (drop|delay|dup|corrupt|reorder|partition|kill|coord-kill|byz-*), \
                     got {other:?}"
                )))
            }
        };
        let mut rule = NetFaultRule {
            op,
            peers: None,
            dir: Dir::Both,
            n: 1,
            when: FaultWhen::Always,
        };
        for item in items {
            if let Some(range) = item.strip_prefix("peer=") {
                let (lo, hi) = match range.split_once('-') {
                    Some((lo, hi)) => (
                        lo.parse()
                            .map_err(|_| bad(format!("bad peer range {range}")))?,
                        hi.parse()
                            .map_err(|_| bad(format!("bad peer range {range}")))?,
                    ),
                    None => {
                        let peer = range
                            .parse()
                            .map_err(|_| bad(format!("bad peer {range}")))?;
                        (peer, peer)
                    }
                };
                if lo > hi {
                    return Err(bad(format!("empty peer range {range}")));
                }
                rule.peers = Some((lo, hi));
            } else if let Some(dir) = item.strip_prefix("dir=") {
                rule.dir = match dir {
                    "up" => Dir::Up,
                    "down" => Dir::Down,
                    "both" => Dir::Both,
                    other => return Err(bad(format!("dir wants up|down|both, got {other}"))),
                };
            } else if let Some(n) = item.strip_prefix("n=") {
                rule.n = n.parse().map_err(|_| bad(format!("bad n={n}")))?;
                if rule.n == 0 {
                    return Err(bad("n must be positive".into()));
                }
            } else if let Some(p) = item.strip_prefix("p=") {
                let p: f64 = p.parse().map_err(|_| bad(format!("bad probability {p}")))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(bad(format!("probability {p} outside [0, 1]")));
                }
                rule.when = FaultWhen::Probability { p };
            } else if let Some(at) = item.strip_prefix("at=") {
                rule.when = FaultWhen::At {
                    at: at.parse().map_err(|_| bad(format!("bad at={at}")))?,
                };
            } else if let Some(window) = item.strip_prefix("window=") {
                let (from, count) = window
                    .split_once('+')
                    .ok_or_else(|| bad(format!("window wants FROM+COUNT, got {window}")))?;
                let count: u64 = count
                    .parse()
                    .map_err(|_| bad(format!("bad window length {count}")))?;
                if count == 0 {
                    return Err(bad("window length must be positive".into()));
                }
                rule.when = FaultWhen::Window {
                    from: from
                        .parse()
                        .map_err(|_| bad(format!("bad window start {from}")))?,
                    count,
                };
            } else if item == "always" {
                rule.when = FaultWhen::Always;
            } else {
                return Err(bad(format!("unknown item {item}")));
            }
        }
        // Topology and byzantine schedules must be epoch-deterministic;
        // a probabilistic partition/kill/byz state would flicker per check.
        if matches!(
            rule.op,
            NetFaultOp::Partition | NetFaultOp::Kill | NetFaultOp::CoordKill
        ) || rule.op.is_byzantine()
        {
            if let FaultWhen::Probability { .. } = rule.when {
                return Err(bad(format!(
                    "{} rules need an epoch schedule (always/at/window), not p=",
                    rule.op.keyword()
                )));
            }
        }
        Ok(rule)
    }
}

/// What the transport should do with one frame.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrameFate {
    /// Discard the frame entirely.
    pub drop: bool,
    /// Hold delivery for this many epochs.
    pub delay_epochs: u64,
    /// Deliver this many extra copies.
    pub duplicates: u64,
    /// Flip one bit of the encoding (CRC must reject it downstream).
    pub corrupt: bool,
    /// Swap with the frame queued behind it.
    pub reorder: bool,
}

/// A compiled, seeded [`NetFaultPlan`] the chaos transport consults.
///
/// Probabilistic draws come from a SplitMix64 stream (same generator the
/// MSR fault injector uses), so a single-threaded chaos loop replays
/// byte-identically from the plan seed.
#[derive(Debug)]
pub struct NetFaultInjector {
    rules: Vec<NetFaultRule>,
    rng: Mutex<u64>,
}

impl NetFaultInjector {
    /// Compiles a plan.
    pub fn new(plan: NetFaultPlan) -> Self {
        NetFaultInjector {
            rules: plan.rules,
            // Offset so seed 0 still produces a scrambled stream.
            rng: Mutex::new(plan.seed ^ 0x9E37_79B9_7F4A_7C15),
        }
    }

    /// The combined transport fate of one frame on `peer`'s link in
    /// direction `dir` at `epoch`. Advances the seeded stream for
    /// probabilistic rules — call in a deterministic order.
    pub fn fate(&self, peer: usize, dir: Dir, epoch: u64) -> FrameFate {
        let mut fate = FrameFate::default();
        let mut rng = self.rng.lock();
        for rule in &self.rules {
            if !rule.matches(peer, dir) {
                continue;
            }
            let fires = match rule.op {
                NetFaultOp::Drop
                | NetFaultOp::Delay
                | NetFaultOp::Dup
                | NetFaultOp::Corrupt
                | NetFaultOp::Reorder => active(rule.when, epoch, &mut rng),
                _ => continue,
            };
            if !fires {
                continue;
            }
            match rule.op {
                NetFaultOp::Drop => fate.drop = true,
                NetFaultOp::Delay => fate.delay_epochs = fate.delay_epochs.max(rule.n),
                NetFaultOp::Dup => fate.duplicates += rule.n,
                NetFaultOp::Corrupt => fate.corrupt = true,
                NetFaultOp::Reorder => fate.reorder = true,
                _ => unreachable!("transport ops filtered above"),
            }
        }
        fate
    }

    /// Whether `peer`'s link is partitioned in `dir` at `epoch`. Pure:
    /// partition schedules are epoch-deterministic (no `p=`).
    pub fn partitioned(&self, peer: usize, dir: Dir, epoch: u64) -> bool {
        self.rules.iter().any(|r| {
            r.op == NetFaultOp::Partition && r.matches(peer, dir) && scheduled(r.when, epoch)
        })
    }

    /// Whether `peer` is killed at `epoch`. Pure.
    pub fn killed(&self, peer: usize, epoch: u64) -> bool {
        self.rules.iter().any(|r| {
            r.op == NetFaultOp::Kill && r.matches(peer, Dir::Both) && scheduled(r.when, epoch)
        })
    }

    /// Whether the primary coordinator is killed at `epoch`. Pure; peer
    /// scoping is ignored (there is one primary).
    pub fn coord_killed(&self, epoch: u64) -> bool {
        self.rules
            .iter()
            .any(|r| r.op == NetFaultOp::CoordKill && scheduled(r.when, epoch))
    }

    /// Whether this plan ever kills the primary (i.e. the chaos fleet
    /// should run a warm standby at all).
    pub fn has_coord_kill(&self) -> bool {
        self.rules.iter().any(|r| r.op == NetFaultOp::CoordKill)
    }

    /// The byzantine behaviors `peer` exhibits at `epoch`, in rule order.
    pub fn byz_ops(&self, peer: usize, epoch: u64) -> Vec<NetFaultOp> {
        self.rules
            .iter()
            .filter(|r| {
                r.op.is_byzantine() && r.matches(peer, Dir::Both) && scheduled(r.when, epoch)
            })
            .map(|r| r.op)
            .collect()
    }

    /// How many stale frames a `byz-replay` rule has `peer` re-send at
    /// `epoch` (the rule's `n`; the largest wins if several match). Zero
    /// when no replay rule is scheduled.
    pub fn byz_replay_count(&self, peer: usize, epoch: u64) -> u64 {
        self.rules
            .iter()
            .filter(|r| {
                r.op == NetFaultOp::ByzReplay
                    && r.matches(peer, Dir::Both)
                    && scheduled(r.when, epoch)
            })
            .map(|r| r.n)
            .max()
            .unwrap_or(0)
    }

    /// Whether any rule marks `peer` byzantine at any point in its life.
    pub fn is_ever_byzantine(&self, peer: usize) -> bool {
        self.rules
            .iter()
            .any(|r| r.op.is_byzantine() && r.matches(peer, Dir::Both))
    }
}

/// Epoch-deterministic schedule check (partition/kill/byz rules, which the
/// parser guarantees are never probabilistic).
fn scheduled(when: FaultWhen, epoch: u64) -> bool {
    match when {
        FaultWhen::Always => true,
        FaultWhen::Probability { .. } => false,
        FaultWhen::At { at } => epoch == at,
        FaultWhen::Window { from, count } => epoch >= from && epoch - from < count,
    }
}

/// Schedule check with the seeded stream for `p=` rules.
fn active(when: FaultWhen, epoch: u64, rng: &mut u64) -> bool {
    match when {
        FaultWhen::Probability { p } => next_uniform(rng) < p,
        other => scheduled(other, epoch),
    }
}

/// One SplitMix64 step mapped to a uniform draw in `[0, 1)` (same
/// generator as `dufp_msr::fault`).
fn next_uniform(state: &mut u64) -> f64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_a_full_scenario() {
        let plan = NetFaultPlan::parse(
            "seed=7;drop,p=0.05,dir=up;partition,peer=0-1,dir=both,window=10+6;\
             byz-nan,peer=0;delay,n=2,p=0.1;kill,peer=3,window=8+4",
        )
        .unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.rules.len(), 5);
        assert_eq!(plan.rules[0].op, NetFaultOp::Drop);
        assert_eq!(plan.rules[0].dir, Dir::Up);
        assert_eq!(plan.rules[1].op, NetFaultOp::Partition);
        assert_eq!(plan.rules[1].peers, Some((0, 1)));
        assert_eq!(plan.rules[2].op, NetFaultOp::ByzNan);
        assert_eq!(plan.rules[3].n, 2);
        assert_eq!(plan.rules[4].when, FaultWhen::Window { from: 8, count: 4 });
        // And through serde, for --net-fault-plan FILE.json.
        let json = serde_json::to_string(&plan).unwrap();
        let back: NetFaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
    }

    #[test]
    fn parse_rejects_malformed_plans() {
        for bad in [
            "frob,peer=0",
            "drop,dir=sideways",
            "drop,p=1.5",
            "drop,peer=5-2",
            "delay,n=0",
            "dup,window=3",
            "dup,window=3+0",
            "seed=abc",
            "drop,wat=1",
            "partition,p=0.5", // topology faults must not flicker
            "kill,p=0.1",
            "coord-kill,p=0.2",
            "byz-nan,p=0.9",
        ] {
            assert!(NetFaultPlan::parse(bad).is_err(), "{bad} should not parse");
        }
    }

    #[test]
    fn partition_windows_are_pure_and_scoped() {
        let inj = NetFaultInjector::new(
            NetFaultPlan::parse("partition,peer=1,dir=down,window=5+3").unwrap(),
        );
        assert!(!inj.partitioned(1, Dir::Down, 4));
        assert!(inj.partitioned(1, Dir::Down, 5));
        assert!(inj.partitioned(1, Dir::Down, 7));
        assert!(!inj.partitioned(1, Dir::Down, 8));
        assert!(!inj.partitioned(1, Dir::Up, 6), "up direction unscoped");
        assert!(!inj.partitioned(0, Dir::Down, 6), "peer 0 unscoped");
        // A dir=both check is covered by a dir=down rule only for down.
        assert!(!inj.killed(1, 6));
    }

    #[test]
    fn kills_and_byz_ops_follow_their_windows() {
        let inj = NetFaultInjector::new(
            NetFaultPlan::parse("kill,peer=2,window=8+4;byz-inflate,peer=0;byz-replay,peer=0,at=3")
                .unwrap(),
        );
        assert!(inj.killed(2, 8));
        assert!(inj.killed(2, 11));
        assert!(!inj.killed(2, 12));
        assert!(!inj.killed(0, 9));
        assert_eq!(inj.byz_ops(0, 1), vec![NetFaultOp::ByzInflate]);
        assert_eq!(
            inj.byz_ops(0, 3),
            vec![NetFaultOp::ByzInflate, NetFaultOp::ByzReplay]
        );
        assert!(inj.byz_ops(1, 3).is_empty());
        assert!(inj.is_ever_byzantine(0));
        assert!(!inj.is_ever_byzantine(2), "a kill is not byzantine");
    }

    #[test]
    fn coord_kill_windows_are_pure_and_peerless() {
        let inj = NetFaultInjector::new(
            NetFaultPlan::parse("coord-kill,window=15+4;drop,p=0.1").unwrap(),
        );
        assert!(!inj.coord_killed(14));
        assert!(inj.coord_killed(15));
        assert!(inj.coord_killed(18));
        assert!(!inj.coord_killed(19), "schedule over: stale resurrection");
        assert!(inj.has_coord_kill());
        let honest = NetFaultInjector::new(NetFaultPlan::parse("drop,p=0.1").unwrap());
        assert!(!honest.has_coord_kill());
        // A coordinator kill is neither an agent kill nor byzantine.
        assert!(!inj.killed(0, 16));
        assert!(!inj.is_ever_byzantine(0));
    }

    #[test]
    fn probabilistic_fates_are_deterministic_per_seed() {
        let fates = |seed: u64| -> Vec<FrameFate> {
            let plan =
                NetFaultPlan::parse(&format!("seed={seed};drop,p=0.3;corrupt,p=0.1")).unwrap();
            let inj = NetFaultInjector::new(plan);
            (0..200).map(|e| inj.fate(0, Dir::Up, e)).collect()
        };
        let a = fates(9);
        assert_eq!(a, fates(9), "same seed, same fates");
        assert_ne!(a, fates(10), "different seed, different fates");
        let drops = a.iter().filter(|f| f.drop).count();
        assert!((30..=90).contains(&drops), "drop rate plausible: {drops}");
    }

    #[test]
    fn fate_combines_matching_transport_rules() {
        let inj = NetFaultInjector::new(
            NetFaultPlan::parse("delay,n=2,window=1+2;dup,n=3,window=1+1;reorder,at=1").unwrap(),
        );
        let fate = inj.fate(0, Dir::Up, 1);
        assert_eq!(
            fate,
            FrameFate {
                drop: false,
                delay_epochs: 2,
                duplicates: 3,
                corrupt: false,
                reorder: true,
            }
        );
        assert_eq!(inj.fate(0, Dir::Up, 3), FrameFate::default());
    }
}
