//! Criterion benchmarks: the supporting pipelines around the controllers —
//! workload materialization, trace segmentation (capture), budget
//! allocation and trace analysis.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dufp_cluster::{AllocatorPolicy, DemandBased};
use dufp_sim::{Machine, SimConfig};
use dufp_types::{ArchSpec, BytesPerSec, FlopsPerSec, Seconds, SocketId, Watts};
use dufp_workloads::capture::{segment, CounterSample, SegmentConfig};
use dufp_workloads::{apps, MaterializeCtx};

fn bench_materialization(c: &mut Criterion) {
    let ctx = MaterializeCtx::from_arch(&ArchSpec::yeti());
    c.bench_function("materialize_all_ten_apps", |b| {
        b.iter(|| apps::all(black_box(&ctx)).unwrap())
    });
}

fn bench_segmentation(c: &mut Criterion) {
    let ctx = MaterializeCtx::from_arch(&ArchSpec::yeti());
    // A 200-second trace at 200 ms sampling with phase structure.
    let trace: Vec<CounterSample> = (0..1000)
        .map(|i| {
            let phase = (i / 25) % 2;
            CounterSample {
                interval: Seconds(0.2),
                flops: FlopsPerSec::from_gflops(if phase == 0 { 30.0 } else { 400.0 }),
                bandwidth: BytesPerSec::from_gib(if phase == 0 { 100.0 } else { 40.0 }),
                power: Watts(if phase == 0 { 105.0 } else { 120.0 }),
            }
        })
        .collect();
    c.bench_function("segment_1000_samples", |b| {
        b.iter(|| segment(black_box(&trace), &ctx, &SegmentConfig::default()).unwrap())
    });
}

fn bench_allocation(c: &mut Criterion) {
    use dufp_cluster::allocator::NodeObservation;
    let nodes: Vec<NodeObservation> = (0..64)
        .map(|i| NodeObservation {
            ceiling: Watts(100.0),
            consumption: Watts(60.0 + (i % 40) as f64),
            active: i % 7 != 0,
        })
        .collect();
    c.bench_function("demand_allocate_64_nodes", |b| {
        let mut policy = DemandBased::default();
        b.iter(|| policy.allocate(black_box(Watts(6400.0)), black_box(&nodes)))
    });
}

fn bench_trace_analysis(c: &mut Criterion) {
    let cfg = SimConfig::deterministic(1);
    let ctx = MaterializeCtx::from_arch(&cfg.arch);
    let m = Machine::new(cfg);
    m.load_all(&apps::cg(&ctx).unwrap());
    m.enable_trace(SocketId(0), 1).unwrap();
    for _ in 0..10_000 {
        m.tick();
    }
    let trace = m.take_trace(SocketId(0)).unwrap().unwrap();
    c.bench_function("residency_10k_points", |b| {
        b.iter(|| {
            (
                black_box(&trace).cap_residency(),
                trace.uncore_residency(),
                trace.cap_transitions(),
            )
        })
    });
}

criterion_group!(
    benches,
    bench_materialization,
    bench_segmentation,
    bench_allocation,
    bench_trace_analysis
);
criterion_main!(benches);
