//! Criterion benchmarks: simulator throughput.
//!
//! The figure harness runs hundreds of multi-minute simulated executions;
//! tick cost directly bounds experiment turnaround. These benches track
//! per-tick cost for the three interesting regimes (compute-bound,
//! memory-bound, idle) and the cost of a short end-to-end run.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use dufp_sim::{Machine, SimConfig};
use dufp_workloads::{apps, MaterializeCtx};

fn machine_with(app: Option<&str>) -> Machine {
    let cfg = SimConfig::deterministic(1);
    let ctx = MaterializeCtx::from_arch(&cfg.arch);
    let m = Machine::new(cfg);
    if let Some(app) = app {
        m.load_all(&apps::by_name(app, &ctx).unwrap());
    }
    m
}

fn bench_ticks(c: &mut Criterion) {
    let mut g = c.benchmark_group("tick");
    g.throughput(Throughput::Elements(1));
    for (name, app) in [
        ("compute_bound_ep", Some("EP")),
        ("memory_bound_cg", Some("CG")),
        ("phase_alternating_bt", Some("BT")),
        ("idle", None),
    ] {
        g.bench_function(name, |b| {
            let m = machine_with(app);
            b.iter(|| m.tick())
        });
    }
    g.finish();
}

fn bench_short_run(c: &mut Criterion) {
    // One simulated second (1000 ticks) of a 4-socket machine.
    let mut g = c.benchmark_group("simulated_second");
    g.sample_size(20);
    g.bench_function("four_sockets_cg", |b| {
        b.iter_batched(
            || {
                let cfg = SimConfig::yeti(1);
                let ctx = MaterializeCtx::from_arch(&cfg.arch);
                let m = Machine::new(cfg);
                m.load_all(&apps::cg(&ctx).unwrap());
                m
            },
            |m| {
                for _ in 0..1000 {
                    m.tick();
                }
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_ticks, bench_short_run);
criterion_main!(benches);
