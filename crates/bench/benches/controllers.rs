//! Criterion benchmarks: controller decision latency.
//!
//! On real hardware the controller runs every 200 ms per socket; its own
//! cost is part of the tool's overhead budget (§IV-D discusses why shorter
//! intervals get expensive). These benches measure one full
//! sample-decide-actuate round against the in-memory register file.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dufp_control::{Actuators, ControlConfig, Controller, Duf, Dufp, HwActuators};
use dufp_counters::IntervalMetrics;
use dufp_msr::registers::{
    PkgPowerLimit, RaplPowerUnit, UncoreRatioLimit, MSR_PKG_POWER_LIMIT, MSR_RAPL_POWER_UNIT,
    MSR_UNCORE_RATIO_LIMIT, SKYLAKE_SP_POWER_UNIT_RAW,
};
use dufp_msr::FakeMsr;
use dufp_rapl::MsrRapl;
use dufp_types::{
    ArchSpec, BytesPerSec, FlopsPerSec, Hertz, Instant, OpIntensity, Ratio, Seconds, SocketId,
    Watts,
};
use std::sync::Arc;

fn actuator_rig(cfg: &ControlConfig) -> HwActuators<Arc<FakeMsr>, MsrRapl<Arc<FakeMsr>>> {
    let msr = Arc::new(FakeMsr::new(16));
    msr.seed(MSR_RAPL_POWER_UNIT, SKYLAKE_SP_POWER_UNIT_RAW);
    let units = RaplPowerUnit::skylake_sp();
    let reg = PkgPowerLimit::defaults(Watts(125.0), Seconds(1.0), Watts(150.0), Seconds(0.01));
    msr.seed(MSR_PKG_POWER_LIMIT, reg.encode(&units).unwrap());
    let arch = ArchSpec::yeti();
    let band = UncoreRatioLimit {
        max_ratio: arch.uncore_freq_max.as_ratio_100mhz(),
        min_ratio: arch.uncore_freq_min.as_ratio_100mhz(),
    };
    msr.seed(MSR_UNCORE_RATIO_LIMIT, band.encode());
    let capper = MsrRapl::new(Arc::clone(&msr), 1, 16).unwrap();
    HwActuators::new(msr, capper, SocketId(0), 0, cfg.clone()).unwrap()
}

fn metrics(t_ms: u64, flops: f64, bw: f64) -> IntervalMetrics {
    IntervalMetrics {
        at: Instant(t_ms * 1000),
        interval: Seconds(0.2),
        flops: FlopsPerSec(flops),
        bandwidth: BytesPerSec(bw),
        oi: OpIntensity(if bw > 0.0 { flops / bw } else { f64::INFINITY }),
        pkg_power: Watts(105.0),
        dram_power: Watts(25.0),
        core_freq: Hertz::from_ghz(2.8),
    }
}

fn bench_decisions(c: &mut Criterion) {
    let cfg = ControlConfig::from_arch(&ArchSpec::yeti(), Ratio::from_percent(10.0)).unwrap();

    c.bench_function("duf_interval_steady", |b| {
        let mut duf = Duf::new(cfg.clone());
        let mut act = actuator_rig(&cfg);
        let mut t = 0u64;
        b.iter(|| {
            t += 200;
            duf.on_interval(black_box(&metrics(t, 1e11, 5e10)), &mut act)
                .unwrap()
        })
    });

    c.bench_function("dufp_interval_steady", |b| {
        let mut dufp = Dufp::new(cfg.clone());
        let mut act = actuator_rig(&cfg);
        let mut t = 0u64;
        b.iter(|| {
            t += 200;
            dufp.on_interval(black_box(&metrics(t, 1e11, 5e10)), &mut act)
                .unwrap()
        })
    });

    c.bench_function("dufp_interval_phase_thrash", |b| {
        // Worst case: every interval is a phase change (reset + coupling 2
        // read-back + retry).
        let mut dufp = Dufp::new(cfg.clone());
        let mut act = actuator_rig(&cfg);
        let mut t = 0u64;
        let mut flip = false;
        b.iter(|| {
            t += 200;
            flip = !flip;
            let m = if flip {
                metrics(t, 4e11, 1e9) // cpu class
            } else {
                metrics(t, 1e10, 9e10) // memory class
            };
            dufp.on_interval(black_box(&m), &mut act).unwrap()
        })
    });

    c.bench_function("actuator_cap_write_roundtrip", |b| {
        let mut act = actuator_rig(&cfg);
        let mut w = 70.0;
        b.iter(|| {
            w = if w >= 125.0 { 70.0 } else { w + 5.0 };
            act.set_cap_both(Watts(w)).unwrap();
            black_box(act.cap_long())
        })
    });
}

criterion_group!(benches, bench_decisions);
criterion_main!(benches);
