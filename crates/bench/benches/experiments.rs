//! Criterion benchmarks: end-to-end experiment cost and the monitoring
//! interval trade-off.
//!
//! `run_once` wall time bounds the figure harness (10 apps × 4 slowdowns ×
//! 2 controllers × 10 runs). The interval sweep quantifies the §IV-D
//! observation that shorter monitoring intervals cost more controller work
//! per simulated second.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dufp::{run_once, ControllerKind, ExperimentSpec};
use dufp_sim::SimConfig;
use dufp_types::Ratio;

fn bench_run_once(c: &mut Criterion) {
    let mut g = c.benchmark_group("run_once");
    g.sample_size(10);
    for app in ["EP", "CG"] {
        g.bench_with_input(
            BenchmarkId::new("dufp10_single_socket", app),
            app,
            |b, app| {
                let spec = ExperimentSpec {
                    sim: SimConfig::yeti_single_socket(1),
                    app: (*app).into(),
                    controller: ControllerKind::Dufp {
                        slowdown: Ratio::from_percent(10.0),
                    },
                    trace: None,
                    interval_ms: None,
                    telemetry: false,
                    fault_plan: None,
                    engine: Default::default(),
                };
                let mut seed = 0;
                b.iter(|| {
                    seed += 1;
                    run_once(&spec, seed).unwrap()
                })
            },
        );
    }
    g.finish();
}

fn bench_interval_tradeoff(c: &mut Criterion) {
    // Same simulated run, different controller wake-up cadence: the cost of
    // dropping the interval from 200 ms to 50 ms (paper §IV-D: "shorter
    // intervals lead to an overhead").
    let mut g = c.benchmark_group("monitoring_interval");
    g.sample_size(10);
    for interval_ms in [200u64, 100, 50] {
        g.bench_with_input(
            BenchmarkId::from_parameter(interval_ms),
            &interval_ms,
            |b, &ms| {
                let spec = ExperimentSpec {
                    sim: SimConfig::yeti_single_socket(2),
                    app: "EP".into(),
                    controller: ControllerKind::Dufp {
                        slowdown: Ratio::from_percent(10.0),
                    },
                    trace: None,
                    interval_ms: Some(ms),
                    telemetry: false,
                    fault_plan: None,
                    engine: Default::default(),
                };
                let mut seed = 100;
                b.iter(|| {
                    seed += 1;
                    run_once(&spec, seed).unwrap()
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_run_once, bench_interval_tradeoff);
criterion_main!(benches);
