//! Criterion microbenchmarks: MSR register codec throughput.
//!
//! The controllers re-encode `MSR_PKG_POWER_LIMIT` on every cap move and
//! `MSR_UNCORE_RATIO_LIMIT` on every uncore move (up to once per 200 ms per
//! socket); the codecs must be effectively free.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dufp_msr::registers::{PkgPowerLimit, PowerLimit, RaplPowerUnit, UncoreRatioLimit};
use dufp_types::{Hertz, Seconds, Watts};

fn bench_codecs(c: &mut Criterion) {
    let units = RaplPowerUnit::skylake_sp();
    let reg = PkgPowerLimit::defaults(Watts(125.0), Seconds(1.0), Watts(150.0), Seconds(0.01));
    let raw = reg.encode(&units).unwrap();

    c.bench_function("pkg_power_limit_encode", |b| {
        b.iter(|| black_box(&reg).encode(black_box(&units)).unwrap())
    });

    c.bench_function("pkg_power_limit_decode", |b| {
        b.iter(|| PkgPowerLimit::decode(black_box(raw), black_box(&units)))
    });

    c.bench_function("power_limit_time_window_search", |b| {
        // The y/z window search is the only non-trivial part of the encoder.
        let pl = PowerLimit {
            power: Watts(100.0),
            enabled: true,
            clamp: true,
            window: Seconds(0.875),
        };
        b.iter(|| black_box(&pl).encode(black_box(&units)).unwrap())
    });

    c.bench_function("uncore_ratio_pin_encode_decode", |b| {
        b.iter(|| {
            let r = UncoreRatioLimit::pinned(black_box(Hertz::from_ghz(1.8)));
            UncoreRatioLimit::decode(black_box(r.encode()))
        })
    });

    c.bench_function("rapl_power_unit_decode", |b| {
        b.iter(|| RaplPowerUnit::decode(black_box(0x000A_0E03)))
    });
}

criterion_group!(benches, bench_codecs);
criterion_main!(benches);
