//! Fig. 5 — CPU frequency under DUF vs DUFP (CG at 10 % tolerated
//! slowdown).
//!
//! The paper's mechanism figure: with uncore scaling alone the cores sit at
//! the 2.8 GHz all-core turbo for almost the whole run; adding dynamic
//! power capping pulls the average down to ≈2.5 GHz, which is where the
//! extra package power savings come from.

use dufp::prelude::*;
use dufp::{run_once, ControllerKind, ExperimentSpec, TraceSpec};
use dufp_sim::Trace;
use dufp_types::Result;
use serde::{Deserialize, Serialize};

/// Frequency-trace comparison for one controller.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FreqTrace {
    /// Controller label.
    pub label: String,
    /// Average core frequency over the run (GHz).
    pub avg_core_ghz: f64,
    /// Average package power (per socket).
    pub avg_pkg_power: f64,
    /// The raw trace (downsampled), for CSV export.
    pub trace: Trace,
}

/// Runs CG at the given slowdown under one controller, tracing core 0's
/// socket.
pub fn trace_cg(controller: ControllerKind, sockets: u16, seed: u64) -> Result<FreqTrace> {
    let mut sim = SimConfig::yeti(seed);
    sim.arch.sockets = sockets;
    let spec = ExperimentSpec {
        sim,
        app: "CG".into(),
        controller,
        trace: Some(TraceSpec {
            socket: SocketId(0),
            stride: 100, // one point per 100 ms
        }),
        interval_ms: None,
        telemetry: false,
        fault_plan: None,
        engine: Default::default(),
    };
    let r = run_once(&spec, seed)?;
    let trace = r.trace.expect("trace requested");
    Ok(FreqTrace {
        label: controller.label(),
        avg_core_ghz: trace
            .avg_core_freq()
            .map(|f| f.as_ghz())
            .unwrap_or(f64::NAN),
        avg_pkg_power: trace.avg_pkg_power().map(|p| p.value()).unwrap_or(f64::NAN),
        trace,
    })
}

/// The full Fig. 5 pair: DUF vs DUFP on CG at 10 %.
pub fn run_fig5(sockets: u16, seed: u64) -> Result<(FreqTrace, FreqTrace)> {
    let slowdown = Ratio::from_percent(10.0);
    let duf = trace_cg(ControllerKind::Duf { slowdown }, sockets, seed)?;
    let dufp = trace_cg(ControllerKind::Dufp { slowdown }, sockets, seed)?;
    Ok((duf, dufp))
}

/// Renders a trace as `time_s,core_ghz,uncore_ghz,pkg_w,pl1_w` CSV.
pub fn trace_csv(t: &FreqTrace) -> String {
    let mut out = String::from("time_s,core_ghz,uncore_ghz,pkg_w,pl1_w\n");
    for p in &t.trace.points {
        out.push_str(&format!(
            "{:.3},{:.2},{:.2},{:.2},{:.1}\n",
            p.at.as_seconds().value(),
            p.core_freq.as_ghz(),
            p.uncore_freq.as_ghz(),
            p.pkg_power.value(),
            p.pl1.value(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dufp_lowers_average_frequency_vs_duf() {
        let (duf, dufp) = run_fig5(1, 5).unwrap();
        // Paper: DUF ≈ 2.8 GHz, DUFP ≈ 2.5 GHz.
        assert!(duf.avg_core_ghz > 2.7, "DUF avg {:.2}", duf.avg_core_ghz);
        assert!(
            dufp.avg_core_ghz < duf.avg_core_ghz - 0.1,
            "DUFP {:.2} vs DUF {:.2}",
            dufp.avg_core_ghz,
            duf.avg_core_ghz
        );
        assert!(dufp.avg_pkg_power < duf.avg_pkg_power);
    }

    #[test]
    fn csv_export_is_well_formed() {
        let t = trace_cg(ControllerKind::Default, 1, 1).unwrap();
        let csv = trace_csv(&t);
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "time_s,core_ghz,uncore_ghz,pkg_w,pl1_w"
        );
        let first = lines.next().unwrap();
        assert_eq!(first.split(',').count(), 5);
    }
}
