//! The Fig. 3/4 parameter sweep: apps × slowdowns × {DUF, DUFP} against the
//! default configuration.

use dufp::prelude::*;
use dufp::{ratios_vs_default, ControllerKind, ExperimentSpec, Ratios, RepeatedResult};
use dufp_types::Result;
use serde::{Deserialize, Serialize};

/// The paper's evaluated tolerated-slowdown grid (percent).
pub const SLOWDOWNS: [f64; 4] = [0.0, 5.0, 10.0, 20.0];

/// Sweep configuration.
#[derive(Debug, Clone, Copy)]
pub struct SweepConfig {
    /// Repetitions per configuration (the paper uses 10).
    pub runs: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Number of sockets to simulate (4 = paper, 1 = fast smoke runs).
    pub sockets: u16,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            runs: 10,
            seed: 42,
            sockets: 4,
        }
    }
}

/// Results of one controller at one slowdown.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VariantResult {
    /// Legend label, e.g. `DUFP@10%`.
    pub label: String,
    /// Tolerated slowdown in percent.
    pub slowdown_pct: f64,
    /// Raw summaries.
    pub result: RepeatedResult,
    /// Ratios against the default run.
    pub ratios: Ratios,
}

/// Everything measured for one application.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AppSweep {
    /// Application name.
    pub app: String,
    /// The default-configuration reference.
    pub default_run: RepeatedResult,
    /// DUF at each slowdown.
    pub duf: Vec<VariantResult>,
    /// DUFP at each slowdown.
    pub dufp: Vec<VariantResult>,
}

fn sim_config(cfg: &SweepConfig) -> SimConfig {
    let mut sim = SimConfig::yeti(cfg.seed);
    sim.arch.sockets = cfg.sockets;
    sim
}

/// Runs the full DUF/DUFP sweep for one application.
pub fn sweep_app(app: &str, cfg: &SweepConfig) -> Result<AppSweep> {
    let sim = sim_config(cfg);
    let spec = |controller: ControllerKind| ExperimentSpec {
        sim: sim.clone(),
        app: app.into(),
        controller,
        trace: None,
        interval_ms: None,
        telemetry: false,
        fault_plan: None,
        engine: Default::default(),
    };

    let default_run = dufp::run_repeated(&spec(ControllerKind::Default), cfg.runs, cfg.seed)?;

    let mut duf = Vec::new();
    let mut dufp = Vec::new();
    for pct in SLOWDOWNS {
        let slowdown = Ratio::from_percent(pct);
        for (kind, bucket) in [
            (ControllerKind::Duf { slowdown }, &mut duf),
            (ControllerKind::Dufp { slowdown }, &mut dufp),
        ] {
            let s = spec(kind);
            let result = dufp::run_repeated(&s, cfg.runs, cfg.seed ^ 0xABCD)?;
            bucket.push(VariantResult {
                label: kind.label(),
                slowdown_pct: pct,
                ratios: ratios_vs_default(&default_run, &result),
                result,
            });
        }
    }

    Ok(AppSweep {
        app: app.into(),
        default_run,
        duf,
        dufp,
    })
}

/// The paper's application list in figure order.
pub const APPS: [&str; 10] = [
    "BT", "CG", "EP", "FT", "LU", "MG", "SP", "UA", "HPL", "LAMMPS",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_single_socket_two_runs() {
        let cfg = SweepConfig {
            runs: 2,
            seed: 1,
            sockets: 1,
        };
        let s = sweep_app("EP", &cfg).unwrap();
        assert_eq!(s.duf.len(), 4);
        assert_eq!(s.dufp.len(), 4);
        // DUFP at 20 % must save package power on EP.
        let at20 = s.dufp.last().unwrap();
        assert!(
            at20.ratios.pkg_power_savings_pct > 5.0,
            "EP DUFP@20% savings {:.2}%",
            at20.ratios.pkg_power_savings_pct
        );
    }
}
