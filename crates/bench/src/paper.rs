//! The paper's headline numbers, as machine-checkable claims.
//!
//! The evaluation text (§II-A, §V) quotes specific values; the
//! `all_experiments` binary measures each of them on the simulator and
//! writes a paper-vs-measured table into `EXPERIMENTS.md`. Absolute
//! agreement is not expected (the substrate is a calibrated simulator, not
//! the YETI testbed) — the *shape* is what each claim checks: who wins, by
//! roughly what factor, and in which direction.

use serde::{Deserialize, Serialize};

/// One quoted number from the paper.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PaperClaim {
    /// Stable identifier, e.g. `fig3b.cg.dufp20`.
    pub id: &'static str,
    /// The figure/table the number comes from.
    pub artifact: &'static str,
    /// Human-readable description.
    pub description: &'static str,
    /// The value the paper reports (percent unless noted).
    pub paper: f64,
}

/// All headline claims quoted in the paper's text.
pub fn claims() -> Vec<PaperClaim> {
    vec![
        PaperClaim {
            id: "fig1a.cg.cap110.power",
            artifact: "Fig 1a",
            description: "CG, UFS + 110 W cap: extra power savings vs UFS alone (% of budget)",
            paper: 16.0,
        },
        PaperClaim {
            id: "fig1a.cg.cap110.overhead",
            artifact: "Fig 1a",
            description: "CG, UFS + 110 W cap: execution-time overhead (%)",
            paper: 7.15,
        },
        PaperClaim {
            id: "fig1a.cg.cap100.power",
            artifact: "Fig 1a",
            description: "CG, UFS + 100 W cap: extra power savings vs UFS alone (% of budget)",
            paper: 24.0,
        },
        PaperClaim {
            id: "fig1a.cg.cap100.overhead",
            artifact: "Fig 1a",
            description: "CG, UFS + 100 W cap: execution-time overhead (%)",
            paper: 12.0,
        },
        PaperClaim {
            id: "fig1b.cg.cap110.phase_power",
            artifact: "Fig 1b",
            description: "CG first phase, 110 W cap: phase power reduction (% of budget)",
            paper: 16.0,
        },
        PaperClaim {
            id: "fig1b.cg.cap100.phase_power",
            artifact: "Fig 1b",
            description: "CG first phase, 100 W cap: phase power reduction (% of budget)",
            paper: 19.0,
        },
        PaperClaim {
            id: "fig1c.cg.partial_cap.overhead",
            artifact: "Fig 1c",
            description: "CG, cap on first phase only: total-time overhead (%)",
            paper: 0.0,
        },
        PaperClaim {
            id: "fig3a.respected",
            artifact: "Fig 3a",
            description: "configurations (of 40) where DUFP respects the tolerated slowdown",
            paper: 34.0,
        },
        PaperClaim {
            id: "fig3a.max_excess",
            artifact: "Fig 3a",
            description: "maximum slowdown excess beyond tolerance (LAMMPS @ 20 %), %",
            paper: 3.17,
        },
        PaperClaim {
            id: "fig3b.ep.best",
            artifact: "Fig 3b",
            description: "EP best package power savings (%)",
            paper: 24.27,
        },
        PaperClaim {
            id: "fig3b.cg.duf20",
            artifact: "Fig 3b",
            description: "CG @ 20 %: DUF package power savings (%)",
            paper: 9.66,
        },
        PaperClaim {
            id: "fig3b.cg.dufp20",
            artifact: "Fig 3b",
            description: "CG @ 20 %: DUFP package power savings (%)",
            paper: 17.57,
        },
        PaperClaim {
            id: "fig3b.cg.dufp10",
            artifact: "Fig 3b",
            description: "CG @ 10 %: DUFP package power savings (%)",
            paper: 13.98,
        },
        PaperClaim {
            id: "fig3b.bt.duf20",
            artifact: "Fig 3b",
            description: "BT @ 20 %: DUF package power savings (%)",
            paper: 0.64,
        },
        PaperClaim {
            id: "fig3b.bt.dufp20",
            artifact: "Fig 3b",
            description: "BT @ 20 %: DUFP package power savings (%)",
            paper: 5.14,
        },
        PaperClaim {
            id: "fig3c.cg.dufp10.energy",
            artifact: "Fig 3c",
            description: "CG @ 10 %: DUFP package+DRAM energy savings (%)",
            paper: 4.7,
        },
        PaperClaim {
            id: "fig4.cg.dufp20.dram",
            artifact: "Fig 4",
            description: "CG @ 20 %: DUFP DRAM power savings (%)",
            paper: 8.83,
        },
        PaperClaim {
            id: "fig4.ua.dufp20.dram",
            artifact: "Fig 4",
            description: "UA @ 20 %: DUFP DRAM power savings (%)",
            paper: 3.23,
        },
        PaperClaim {
            id: "fig5.cg.duf10.freq",
            artifact: "Fig 5",
            description: "CG @ 10 %: DUF average core frequency (GHz)",
            paper: 2.8,
        },
        PaperClaim {
            id: "fig5.cg.dufp10.freq",
            artifact: "Fig 5",
            description: "CG @ 10 %: DUFP average core frequency (GHz)",
            paper: 2.5,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claim_ids_are_unique() {
        let cs = claims();
        let mut ids: Vec<&str> = cs.iter().map(|c| c.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), cs.len());
    }

    #[test]
    fn every_artifact_is_covered() {
        let cs = claims();
        for artifact in [
            "Fig 1a", "Fig 1b", "Fig 1c", "Fig 3a", "Fig 3b", "Fig 3c", "Fig 4", "Fig 5",
        ] {
            assert!(
                cs.iter().any(|c| c.artifact == artifact),
                "no claim for {artifact}"
            );
        }
    }
}
