//! Plain-text/markdown rendering helpers for the figure binaries.

/// Formats a percentage with sign, e.g. `+3.17` / `-13.98`.
pub fn fmt_pct(v: f64) -> String {
    format!("{v:+.2}")
}

/// Renders a markdown table from a header and rows.
pub fn markdown_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push('|');
    for h in header {
        out.push_str(&format!(" {h} |"));
    }
    out.push('\n');
    out.push('|');
    for _ in header {
        out.push_str("---|");
    }
    out.push('\n');
    for row in rows {
        out.push('|');
        for cell in row {
            out.push_str(&format!(" {cell} |"));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_formatting_is_signed() {
        assert_eq!(fmt_pct(3.168), "+3.17");
        assert_eq!(fmt_pct(-13.98), "-13.98");
        assert_eq!(fmt_pct(0.0), "+0.00");
    }

    #[test]
    fn table_renders_github_markdown() {
        let t = markdown_table(
            &["app", "x"],
            &[vec!["CG".into(), "1".into()], vec!["EP".into(), "2".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines[0], "| app | x |");
        assert_eq!(lines[1], "|---|---|");
        assert_eq!(lines[2], "| CG | 1 |");
        assert_eq!(lines.len(), 4);
    }
}
