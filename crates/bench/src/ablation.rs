//! Ablation harness: quantify each DUFP design choice by disabling it.
//!
//! DESIGN.md calls out the load-bearing mechanisms; this module measures
//! what each one buys on a representative application mix:
//!
//! * **coupling 1** (§III) — raise the cap when an uncore increase fails,
//! * **coupling 2** (§III) — retry the uncore reset after a joint reset,
//! * **overshoot reset** (§IV-D) — reset when power exceeds a fresh cap,
//! * **probe-floor memory** — don't re-probe below a violated level every
//!   interval (reprobe window vs none),
//! * **monitoring interval** — 50 ms vs the paper's 200 ms (§IV-D).

use dufp_control::{Actuators, ControlConfig, Controller, Dufp, HwActuators};
use dufp_counters::{Sampler, Telemetry};
use dufp_rapl::MsrRapl;
use dufp_sim::{Machine, SimConfig};
use dufp_types::{Duration, Ratio, Result, SocketId};
use dufp_workloads::{apps, MaterializeCtx};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One ablation variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Variant {
    /// The full DUFP configuration (baseline for the study).
    Full,
    /// Coupling 1 disabled.
    NoCoupling1,
    /// Coupling 2 disabled.
    NoCoupling2,
    /// §IV-D overshoot reset disabled.
    NoOvershootReset,
    /// Probe-floor memory disabled (re-probe every interval).
    NoProbeMemory,
    /// 50 ms monitoring interval instead of 200 ms.
    FastInterval,
    /// The §V-G cumulative-progress guard enabled (off in the paper's tool).
    CumulativeGuard,
}

impl Variant {
    /// All variants, baseline first.
    pub const ALL: [Variant; 7] = [
        Variant::Full,
        Variant::NoCoupling1,
        Variant::NoCoupling2,
        Variant::NoOvershootReset,
        Variant::NoProbeMemory,
        Variant::FastInterval,
        Variant::CumulativeGuard,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Variant::Full => "full DUFP",
            Variant::NoCoupling1 => "no coupling 1",
            Variant::NoCoupling2 => "no coupling 2",
            Variant::NoOvershootReset => "no overshoot reset",
            Variant::NoProbeMemory => "no probe memory",
            Variant::FastInterval => "50 ms interval",
            Variant::CumulativeGuard => "+ cumulative guard (§V-G)",
        }
    }

    fn apply(self, cfg: &mut ControlConfig) {
        match self {
            Variant::Full => {}
            Variant::NoCoupling1 => cfg.coupling1 = false,
            Variant::NoCoupling2 => cfg.coupling2 = false,
            Variant::NoOvershootReset => cfg.overshoot_reset = false,
            Variant::NoProbeMemory => cfg.reprobe_intervals = 0,
            Variant::FastInterval => cfg.interval = Duration::from_millis(50),
            Variant::CumulativeGuard => cfg.cumulative_guard = true,
        }
    }
}

/// Measurements of one variant on one application.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AblationRow {
    /// The variant measured.
    pub variant: Variant,
    /// Application name.
    pub app: String,
    /// Execution-time overhead vs the default configuration (%).
    pub overhead_pct: f64,
    /// Package power savings vs the default configuration (%).
    pub pkg_savings_pct: f64,
}

/// Runs one app under one DUFP variant on a single socket; returns
/// (exec seconds, avg package watts).
fn run_variant(
    app: &str,
    variant: Option<Variant>,
    slowdown_pct: f64,
    seed: u64,
) -> Result<(f64, f64)> {
    let sim = SimConfig::yeti_single_socket(seed);
    let arch = sim.arch.clone();
    let ctx = MaterializeCtx::from_arch(&arch);
    let machine = Arc::new(Machine::new(sim));
    machine.load_all(&apps::by_name(app, &ctx)?);

    let mut cfg = ControlConfig::from_arch(&arch, Ratio::from_percent(slowdown_pct))?;
    let mut controller: Option<(Dufp, _)> = match variant {
        None => None,
        Some(v) => {
            v.apply(&mut cfg);
            let capper = Arc::new(MsrRapl::new(
                Arc::clone(&machine),
                1,
                arch.cores_per_socket as usize,
            )?);
            let act = HwActuators::new(Arc::clone(&machine), capper, SocketId(0), 0, cfg.clone())?;
            Some((Dufp::new(cfg.clone()), act))
        }
    };

    let mut sampler = Sampler::new();
    sampler.sample(machine.as_ref(), SocketId(0))?;
    let start = machine.sample(SocketId(0))?;
    let ticks = (cfg.interval.as_micros() / machine.config().tick.as_micros()).max(1);
    while !machine.done() {
        for _ in 0..ticks {
            machine.tick();
            if machine.done() {
                break;
            }
        }
        if let Some(m) = sampler.sample(machine.as_ref(), SocketId(0))? {
            if let Some((c, act)) = controller.as_mut() {
                c.on_interval(&m, act as &mut dyn Actuators)?;
            }
        }
    }
    let end = machine.sample(SocketId(0))?;
    let secs = end.at.duration_since(start.at).as_seconds();
    let pkg = (end.pkg_energy - start.pkg_energy) / secs;
    Ok((secs.value(), pkg.value()))
}

/// Runs the full ablation grid on the given apps.
pub fn run_ablation(apps: &[&str], slowdown_pct: f64, seed: u64) -> Result<Vec<AblationRow>> {
    let mut rows = Vec::new();
    for app in apps {
        let (t0, p0) = run_variant(app, None, slowdown_pct, seed)?;
        for v in Variant::ALL {
            let (t, p) = run_variant(app, Some(v), slowdown_pct, seed)?;
            rows.push(AblationRow {
                variant: v,
                app: (*app).to_string(),
                overhead_pct: (t / t0 - 1.0) * 100.0,
                pkg_savings_pct: (1.0 - p / p0) * 100.0,
            });
        }
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_memory_protects_the_tolerance_on_cg() {
        // Without the probe-floor memory the controller oscillates across
        // the violation boundary; the time-average slowdown degrades.
        let (t_full, _) = run_variant("CG", Some(Variant::Full), 10.0, 3).unwrap();
        let (t_no_mem, _) = run_variant("CG", Some(Variant::NoProbeMemory), 10.0, 3).unwrap();
        assert!(
            t_no_mem > t_full * 0.999,
            "removing probe memory should not speed things up: {t_full} vs {t_no_mem}"
        );
    }

    #[test]
    fn all_variants_complete_on_ep_and_save_power() {
        let (_, p0) = run_variant("EP", None, 10.0, 5).unwrap();
        for v in Variant::ALL {
            let (_, p) = run_variant("EP", Some(v), 10.0, 5).unwrap();
            assert!(
                p < p0,
                "{}: EP power {p:.1} W should beat default {p0:.1} W",
                v.label()
            );
        }
    }

    #[test]
    fn grid_produces_one_row_per_variant_per_app() {
        let rows = run_ablation(&["EP"], 10.0, 7).unwrap();
        assert_eq!(rows.len(), Variant::ALL.len());
    }
}
