//! Regenerates Fig. 4 — DUFP's impact on DRAM power consumption.
//!
//! Usage: `fig4 [--runs N] [--sockets N] [--seed S]`

use dufp_bench::report::{fmt_pct, markdown_table};
use dufp_bench::sweep::{sweep_app, AppSweep, SweepConfig, APPS};
use rayon::prelude::*;

fn main() {
    let mut cfg = SweepConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--runs" => cfg.runs = args.next().expect("--runs N").parse().expect("int"),
            "--sockets" => cfg.sockets = args.next().expect("--sockets N").parse().expect("int"),
            "--seed" => cfg.seed = args.next().expect("--seed S").parse().expect("int"),
            other => panic!("unknown argument {other}"),
        }
    }

    eprintln!(
        "fig4: sweeping DRAM power, {} runs per configuration...",
        cfg.runs
    );
    let sweeps: Vec<AppSweep> = APPS
        .par_iter()
        .map(|app| sweep_app(app, &cfg).unwrap_or_else(|e| panic!("{app}: {e}")))
        .collect();

    println!("\n## Fig 4 — DRAM power savings (% over default)\n");
    let header = [
        "app", "DUF@0", "DUFP@0", "DUF@5", "DUFP@5", "DUF@10", "DUFP@10", "DUF@20", "DUFP@20",
    ];
    let rows: Vec<Vec<String>> = sweeps
        .iter()
        .map(|s| {
            let mut row = vec![s.app.clone()];
            for i in 0..4 {
                row.push(fmt_pct(s.duf[i].ratios.dram_power_savings_pct));
                row.push(fmt_pct(s.dufp[i].ratios.dram_power_savings_pct));
            }
            row
        })
        .collect();
    print!("{}", markdown_table(&header, &rows));
}
