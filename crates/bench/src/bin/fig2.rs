//! Fig. 2, machine-checked: the DUFP decision algorithm as a generated
//! table.
//!
//! The paper's Fig. 2 is a flow chart; this binary *derives* the
//! equivalent decision table from the implementation by driving a fresh
//! DUFP instance into each (phase class × FLOPS-drop severity × cap
//! position) state and recording what the cap logic does. A handful of
//! canonical rows are asserted against the paper's prose, so the table
//! cannot silently drift from §III.
//!
//! Usage: `fig2 [--slowdown PCT]`

use dufp_bench::report::markdown_table;
use dufp_control::dufp::CapAction;
use dufp_control::{ControlConfig, Controller, Dufp, HwActuators};
use dufp_counters::IntervalMetrics;
use dufp_msr::registers::{
    PkgPowerLimit, RaplPowerUnit, UncoreRatioLimit, MSR_PKG_POWER_LIMIT, MSR_RAPL_POWER_UNIT,
    MSR_UNCORE_RATIO_LIMIT, SKYLAKE_SP_POWER_UNIT_RAW,
};
use dufp_msr::FakeMsr;
use dufp_rapl::MsrRapl;
use dufp_types::{
    ArchSpec, BytesPerSec, FlopsPerSec, Hertz, Instant, OpIntensity, Ratio, Seconds, SocketId,
    Watts,
};
use std::sync::Arc;

#[derive(Debug, Clone, Copy)]
enum OiClass {
    HighlyMemory,
    Memory,
    Mixed,
    HighlyCompute,
}

impl OiClass {
    const ALL: [OiClass; 4] = [
        OiClass::HighlyMemory,
        OiClass::Memory,
        OiClass::Mixed,
        OiClass::HighlyCompute,
    ];
    fn oi(self) -> f64 {
        match self {
            OiClass::HighlyMemory => 0.01,
            OiClass::Memory => 0.4,
            OiClass::Mixed => 5.0,
            OiClass::HighlyCompute => 200.0,
        }
    }
    fn label(self) -> &'static str {
        match self {
            OiClass::HighlyMemory => "oi < 0.02",
            OiClass::Memory => "0.02 ≤ oi < 1",
            OiClass::Mixed => "1 ≤ oi ≤ 100",
            OiClass::HighlyCompute => "oi > 100",
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum DropCase {
    Within,
    AtBoundary,
    Violating,
}

impl DropCase {
    const ALL: [DropCase; 3] = [DropCase::Within, DropCase::AtBoundary, DropCase::Violating];
    fn factor(self, slowdown: f64) -> f64 {
        match self {
            DropCase::Within => 1.0,
            DropCase::AtBoundary => 1.0 - slowdown,
            DropCase::Violating => 1.0 - slowdown - 0.05,
        }
    }
    fn label(self) -> &'static str {
        match self {
            DropCase::Within => "within tolerance",
            DropCase::AtBoundary => "at the boundary",
            DropCase::Violating => "beyond tolerance",
        }
    }
}

fn rig(cfg: &ControlConfig) -> HwActuators<Arc<FakeMsr>, MsrRapl<Arc<FakeMsr>>> {
    let msr = Arc::new(FakeMsr::new(16));
    msr.seed(MSR_RAPL_POWER_UNIT, SKYLAKE_SP_POWER_UNIT_RAW);
    let units = RaplPowerUnit::skylake_sp();
    let reg = PkgPowerLimit::defaults(Watts(125.0), Seconds(1.0), Watts(150.0), Seconds(0.01));
    msr.seed(MSR_PKG_POWER_LIMIT, reg.encode(&units).unwrap());
    let arch = ArchSpec::yeti();
    let band = UncoreRatioLimit {
        max_ratio: arch.uncore_freq_max.as_ratio_100mhz(),
        min_ratio: arch.uncore_freq_min.as_ratio_100mhz(),
    };
    msr.seed(MSR_UNCORE_RATIO_LIMIT, band.encode());
    let capper = MsrRapl::new(Arc::clone(&msr), 1, 16).unwrap();
    HwActuators::new(msr, capper, SocketId(0), 0, cfg.clone()).unwrap()
}

fn metrics(t: u64, oi: f64, flops: f64, power: f64) -> IntervalMetrics {
    IntervalMetrics {
        at: Instant(t * 200_000),
        interval: Seconds(0.2),
        flops: FlopsPerSec(flops),
        bandwidth: BytesPerSec(flops / oi),
        oi: OpIntensity(oi),
        pkg_power: Watts(power),
        dram_power: Watts(20.0),
        core_freq: Hertz::from_ghz(2.8),
    }
}

/// Drives a fresh DUFP into the requested state and returns the cap action
/// of the decisive interval.
fn probe(cfg: &ControlConfig, class: OiClass, case: DropCase) -> CapAction {
    let mut dufp = Dufp::new(cfg.clone());
    let mut act = rig(cfg);
    let base_flops = 1e11;
    // Establish the phase and walk the cap down a few steps so increases
    // and resets are observable.
    let mut t = 0;
    for _ in 0..4 {
        dufp.on_interval(&metrics(t, class.oi(), base_flops, 95.0), &mut act)
            .unwrap();
        t += 1;
    }
    // One clean interval (uncore at rest) so the decisive interval is not
    // suppressed by probe attribution.
    dufp.on_interval(&metrics(t, class.oi(), base_flops, 95.0), &mut act)
        .unwrap();
    t += 1;
    let f = base_flops * case.factor(cfg.slowdown.value());
    // Two intervals: the first may be attributed to the uncore's own probe;
    // the second is the cap's decision.
    dufp.on_interval(&metrics(t, class.oi(), f, 95.0), &mut act)
        .unwrap();
    t += 1;
    dufp.on_interval(&metrics(t, class.oi(), f, 95.0), &mut act)
        .unwrap();
    dufp.last_cap_action()
}

fn action_label(a: CapAction) -> &'static str {
    match a {
        CapAction::None => "—",
        CapAction::Decreased => "decrease cap (both constraints)",
        CapAction::Increased => "increase cap",
        CapAction::Reset => "reset cap",
        CapAction::Hold => "hold",
    }
}

fn main() {
    let mut pct = 10.0f64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--slowdown" => pct = args.next().expect("--slowdown PCT").parse().expect("float"),
            other => panic!("unknown argument {other}"),
        }
    }
    let cfg = ControlConfig::from_arch(&ArchSpec::yeti(), Ratio::from_percent(pct)).unwrap();

    println!(
        "## Fig 2 — DUFP cap decisions, derived from the implementation ({pct:.0}% tolerance)\n"
    );
    let mut rows = Vec::new();
    for class in OiClass::ALL {
        for case in DropCase::ALL {
            let action = probe(&cfg, class, case);
            rows.push(vec![
                class.label().to_string(),
                case.label().to_string(),
                action_label(action).to_string(),
            ]);
        }
    }
    print!(
        "{}",
        markdown_table(
            &["phase class", "FLOPS/s vs phase max", "cap action"],
            &rows
        )
    );

    // Machine-check the canonical §III rows.
    assert_eq!(
        probe(&cfg, OiClass::HighlyMemory, DropCase::Violating),
        CapAction::Decreased,
        "oi < 0.02: decrease regardless of FLOPS (§III)"
    );
    assert_eq!(
        probe(&cfg, OiClass::HighlyCompute, DropCase::Violating),
        CapAction::Reset,
        "oi > 100: violation resets the cap outright (§III)"
    );
    assert_eq!(
        probe(&cfg, OiClass::Mixed, DropCase::Violating),
        CapAction::Increased,
        "mixed: violation steps the cap back up (§III)"
    );
    assert_eq!(
        probe(&cfg, OiClass::Mixed, DropCase::AtBoundary),
        CapAction::Hold,
        "equivalent to the slowdown: keep steady (§III)"
    );
    assert_eq!(
        probe(&cfg, OiClass::Memory, DropCase::Within),
        CapAction::Decreased,
        "within tolerance: keep decreasing (§III)"
    );
    println!("\nall canonical §III rows verified against the implementation ✓");
    println!(
        "(phase changes additionally reset both actuators, with the coupling-2 \
         uncore re-check; a measured power above a fresh cap resets it — §IV-D.)"
    );
}
