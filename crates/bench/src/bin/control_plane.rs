//! Control-plane benchmark: allocator-epoch throughput over live loopback
//! fleets of 1/4/16 agents, plus raw allocator decision latency.
//!
//! Seeds `BENCH_control_plane.json` at the current directory (repo root in
//! CI, where it is uploaded as an artifact), so the bench trajectory for
//! the fleet control plane is tracked from its first PR.
//!
//! Usage: cargo run -p dufp-bench --release -- [--out FILE] [--epochs N] [--iters N]

use dufp_cluster::allocator::{AllocatorPolicy, DemandBased, NodeObservation, StaticSplit};
use dufp_net::{Agent, AgentConfig, Coordinator, CoordinatorConfig};
use dufp_telemetry::Telemetry;
use dufp_types::Watts;
use serde::Serialize;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Epoch throughput against a live loopback fleet.
#[derive(Debug, Serialize)]
struct FleetBench {
    agents: usize,
    epochs: u64,
    elapsed_ms: f64,
    epochs_per_sec: f64,
    peak_total_granted_w: f64,
}

/// Raw `AllocatorPolicy::allocate` latency on synthetic observations.
#[derive(Debug, Serialize)]
struct AllocLatency {
    policy: &'static str,
    nodes: usize,
    iters: u64,
    ns_per_decision: f64,
}

#[derive(Debug, Serialize)]
struct Report {
    bench: &'static str,
    budget_w: f64,
    fleet_epochs_per_sec: Vec<FleetBench>,
    allocator_decision_latency: Vec<AllocLatency>,
}

const BUDGET: f64 = 1200.0;
const APPS: [&str; 4] = ["EP", "CG", "HPL", "BT"];

/// Epoch throughput: bind a coordinator, join `n` live agents over
/// loopback, then step `epoch_once` flat out. Each epoch runs death
/// detection, the allocator, and the grant fan-out over real sockets.
fn fleet_bench(n: usize, epochs: u64) -> FleetBench {
    let cfg = CoordinatorConfig::new("127.0.0.1:0", Watts(BUDGET));
    let mut coord = Coordinator::bind(cfg).expect("bind coordinator");
    let addr = coord.local_addr().expect("local addr").to_string();

    let mut handles = Vec::with_capacity(n);
    let mut switches = Vec::with_capacity(n);
    for i in 0..n {
        let mut acfg = AgentConfig::new(&addr, format!("bench-n{i}"), APPS[i % APPS.len()]);
        acfg.seed = 42 + i as u64;
        // Pace the simulated nodes so they outlive the measurement without
        // saturating every core; bound them in case teardown is missed.
        acfg.pace = Duration::from_millis(2);
        acfg.max_intervals = Some(100_000);
        let switch = Arc::new(AtomicBool::new(false));
        let agent = Agent::new(acfg)
            .expect("agent config")
            .with_crash_switch(Arc::clone(&switch))
            .with_telemetry(Telemetry::disabled());
        switches.push(switch);
        handles.push(std::thread::spawn(move || agent.run()));
    }

    // Wait for the whole fleet to complete its Hellos.
    let joined = Instant::now();
    while coord.node_count() < n {
        assert!(
            joined.elapsed() < Duration::from_secs(10),
            "fleet of {n} never joined"
        );
        std::thread::sleep(Duration::from_millis(2));
    }

    let start = Instant::now();
    let mut peak = 0.0f64;
    for _ in 0..epochs {
        let rec = coord.epoch_once();
        peak = peak.max(rec.total_granted);
    }
    let elapsed = start.elapsed();

    // Stop the fleet (crash switches: abrupt exit, no Goodbye chatter to
    // skew a rerun) and tear the coordinator down.
    for s in &switches {
        s.store(true, Ordering::SeqCst);
    }
    for h in handles {
        let _ = h.join();
    }
    let _ = coord.finish();

    let secs = elapsed.as_secs_f64();
    FleetBench {
        agents: n,
        epochs,
        elapsed_ms: secs * 1e3,
        epochs_per_sec: epochs as f64 / secs,
        peak_total_granted_w: peak,
    }
}

/// Synthetic fleet observations: a mix of riders, donors, and finished
/// nodes, deterministic per node count.
fn synthetic(nodes: usize) -> Vec<NodeObservation> {
    (0..nodes)
        .map(|i| {
            let ceiling = 75.0 + (i % 7) as f64 * 7.0;
            NodeObservation {
                ceiling: Watts(ceiling),
                consumption: Watts(ceiling * (0.55 + (i % 5) as f64 * 0.11)),
                active: i % 9 != 8,
            }
        })
        .collect()
}

fn alloc_bench(
    policy: &mut dyn AllocatorPolicy,
    name: &'static str,
    nodes: usize,
    iters: u64,
) -> AllocLatency {
    let obs = synthetic(nodes);
    let budget = Watts(BUDGET);
    let start = Instant::now();
    let mut sink = 0.0f64;
    for _ in 0..iters {
        let out = policy.allocate(budget, &obs);
        // Keep the optimizer honest.
        sink += out.last().map(|w| w.value()).unwrap_or(0.0);
    }
    let elapsed = start.elapsed();
    assert!(sink.is_finite());
    AllocLatency {
        policy: name,
        nodes,
        iters,
        ns_per_decision: elapsed.as_nanos() as f64 / iters as f64,
    }
}

fn main() {
    let mut out = String::from("BENCH_control_plane.json");
    let mut epochs = 200u64;
    let mut iters = 10_000u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out = args.next().expect("--out needs a path"),
            "--epochs" => {
                epochs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--epochs needs a number")
            }
            "--iters" => {
                iters = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--iters needs a number")
            }
            other => {
                eprintln!("unknown flag {other}");
                eprintln!("usage: control_plane [--out FILE] [--epochs N] [--iters N]");
                std::process::exit(2);
            }
        }
    }

    let mut fleets = Vec::new();
    for n in [1usize, 4, 16] {
        eprintln!("fleet of {n}: {epochs} epochs over loopback...");
        fleets.push(fleet_bench(n, epochs));
    }

    let mut lat = Vec::new();
    for n in [1usize, 4, 16] {
        lat.push(alloc_bench(&mut StaticSplit, "static-split", n, iters));
        lat.push(alloc_bench(
            &mut DemandBased::default(),
            "demand-based",
            n,
            iters,
        ));
    }

    let report = Report {
        bench: "control_plane",
        budget_w: BUDGET,
        fleet_epochs_per_sec: fleets,
        allocator_decision_latency: lat,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    println!("{json}");
    std::fs::write(&out, format!("{json}\n")).expect("write bench json");
    eprintln!("wrote {out}");
}
