//! Regenerates Fig. 1 — power capping on CG (§II-A motivation).
//!
//! Usage: `fig1 [--sockets N] [--seed S] [a|b|c|all]`

use dufp_bench::fig1::run_fig1;
use dufp_bench::report::markdown_table;

fn main() {
    let mut sockets = 4u16;
    let mut seed = 42u64;
    let mut which = "all".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--sockets" => sockets = args.next().expect("--sockets N").parse().expect("int"),
            "--seed" => seed = args.next().expect("--seed S").parse().expect("int"),
            other => which = other.to_string(),
        }
    }

    let r = run_fig1(sockets, seed).expect("fig1 experiments");

    if which == "a" || which == "all" {
        println!("\n## Fig 1a — CG under whole-run power capping\n");
        let rows: Vec<Vec<String>> = r
            .whole_run
            .iter()
            .map(|row| {
                vec![
                    row.label.clone(),
                    format!("{:.3}", row.time_ratio),
                    format!("{:.3}", row.power_over_budget),
                ]
            })
            .collect();
        print!(
            "{}",
            markdown_table(&["series", "time / default", "power / budget"], &rows)
        );
    }
    if which == "b" || which == "all" {
        println!("\n## Fig 1b — power of CG's first (highly-memory) phase\n");
        let mut rows = vec![vec![
            "default".to_string(),
            format!("{:.3}", r.whole_run[0].window_power_over_budget),
        ]];
        rows.extend(r.windowed.iter().map(|row| {
            vec![
                row.label.clone(),
                format!("{:.3}", row.window_power_over_budget),
            ]
        }));
        print!(
            "{}",
            markdown_table(&["series", "phase power / budget"], &rows)
        );
    }
    if which == "c" || which == "all" {
        println!("\n## Fig 1c — total execution time with partial capping\n");
        let mut rows = vec![vec!["default".to_string(), "1.000".to_string()]];
        rows.extend(
            r.windowed
                .iter()
                .map(|row| vec![row.label.clone(), format!("{:.3}", row.time_ratio)]),
        );
        print!("{}", markdown_table(&["series", "time / default"], &rows));
        println!(
            "\nPartial capping of the first phase leaves total time unchanged \
             (paper: \"does not impact at all its overall execution time\")."
        );
    }
}
