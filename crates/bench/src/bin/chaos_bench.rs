//! Chaos-harness benchmark: virtual-epoch throughput of the in-process
//! adversarial fleet soak, clean and under a lossy wire.
//!
//! The chaos harness is the test rig every fleet-resilience guarantee
//! leans on; if it slows down, the CI soak and the property suites slow
//! down with it. This bench tracks epochs/second for the baseline
//! (honest, lossless) scenario and for frame-chaos (drops, corruption,
//! delays, duplicates) at a fixed seed, and seeds `BENCH_chaos.json` at
//! the current directory (repo root in CI, uploaded as an artifact).
//!
//! Usage: cargo run -p dufp-bench --release --bin chaos_bench --
//!        [--out FILE] [--epochs N] [--agents N] [--seed S]

use dufp_net::chaos::{run_scenario, ChaosConfig};
use serde::Serialize;
use std::time::Instant;

#[derive(Debug, Serialize)]
struct ScenarioBench {
    scenario: String,
    agents: usize,
    epochs: u64,
    elapsed_ms: f64,
    epochs_per_sec: f64,
    frames_dropped: u64,
    frames_corrupted: u64,
    score: f64,
}

#[derive(Debug, Serialize)]
struct Report {
    bench: &'static str,
    seed: u64,
    scenarios: Vec<ScenarioBench>,
}

fn bench_scenario(cfg: &ChaosConfig, name: &str) -> ScenarioBench {
    let started = Instant::now();
    let card = run_scenario(cfg, name).expect("built-in scenario runs");
    let elapsed = started.elapsed();
    assert!(
        card.conservation_ok && card.floor_ok,
        "bench scenario must hold its invariants: {card:?}"
    );
    let elapsed_ms = elapsed.as_secs_f64() * 1e3;
    ScenarioBench {
        scenario: name.to_string(),
        agents: cfg.agents,
        epochs: cfg.epochs,
        elapsed_ms,
        epochs_per_sec: cfg.epochs as f64 / elapsed.as_secs_f64().max(1e-9),
        frames_dropped: card.frames_dropped,
        frames_corrupted: card.frames_corrupted,
        score: card.score,
    }
}

fn main() {
    let mut out = String::from("BENCH_chaos.json");
    let mut epochs = 2_000u64;
    let mut agents = 8usize;
    let mut seed = 42u64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out = args.next().expect("--out FILE"),
            "--epochs" => epochs = args.next().expect("--epochs N").parse().expect("int"),
            "--agents" => agents = args.next().expect("--agents N").parse().expect("int"),
            "--seed" => seed = args.next().expect("--seed S").parse().expect("int"),
            other => panic!("unknown flag {other}"),
        }
    }

    let mut cfg = ChaosConfig::new(seed);
    cfg.epochs = epochs;
    cfg.agents = agents;

    eprintln!("chaos_bench: {agents} agents x {epochs} virtual epochs, seed {seed}...");
    let scenarios = vec![
        bench_scenario(&cfg, "baseline"),
        bench_scenario(&cfg, "frame-chaos"),
    ];
    for s in &scenarios {
        eprintln!(
            "  {:<12} {:>10.0} epochs/s  ({:.1} ms, {} dropped, {} corrupted)",
            s.scenario, s.epochs_per_sec, s.elapsed_ms, s.frames_dropped, s.frames_corrupted
        );
    }

    let report = Report {
        bench: "chaos",
        seed,
        scenarios,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, &json).expect("write bench report");
    println!("{json}");
    eprintln!("chaos_bench: wrote {out}");
}
