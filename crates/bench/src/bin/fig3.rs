//! Regenerates Fig. 3 (a: execution time, b: package power, c: package +
//! DRAM energy): 10 applications × {0, 5, 10, 20} % tolerated slowdown,
//! DUF vs DUFP, as percentages over the default configuration.
//!
//! Usage: `fig3 [--runs N] [--sockets N] [--seed S] [--json PATH] [time|power|energy|all]`

use dufp_bench::report::{fmt_pct, markdown_table};
use dufp_bench::sweep::{sweep_app, AppSweep, SweepConfig, APPS};
use rayon::prelude::*;
use std::io::Write;

fn main() {
    let mut cfg = SweepConfig::default();
    let mut which = "all".to_string();
    let mut json_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--runs" => cfg.runs = args.next().expect("--runs N").parse().expect("int"),
            "--sockets" => cfg.sockets = args.next().expect("--sockets N").parse().expect("int"),
            "--seed" => cfg.seed = args.next().expect("--seed S").parse().expect("int"),
            "--json" => json_path = Some(args.next().expect("--json PATH")),
            other => which = other.to_string(),
        }
    }

    eprintln!(
        "fig3: sweeping {} apps x 4 slowdowns x (DUF, DUFP), {} runs each, {} socket(s)...",
        APPS.len(),
        cfg.runs,
        cfg.sockets
    );
    let sweeps: Vec<AppSweep> = APPS
        .par_iter()
        .map(|app| sweep_app(app, &cfg).unwrap_or_else(|e| panic!("{app}: {e}")))
        .collect();

    if let Some(path) = json_path {
        let f = std::fs::File::create(&path).expect("create json");
        serde_json::to_writer_pretty(f, &sweeps).expect("write json");
        eprintln!("fig3: wrote {path}");
    }

    if which == "time" || which == "all" {
        print_panel(
            &sweeps,
            "Fig 3a — execution time overhead (% over default)",
            |v| v.ratios.overhead_pct,
        );
    }
    if which == "power" || which == "all" {
        print_panel(
            &sweeps,
            "Fig 3b — package power savings (% over default)",
            |v| v.ratios.pkg_power_savings_pct,
        );
    }
    if which == "energy" || which == "all" {
        print_panel(
            &sweeps,
            "Fig 3c — package+DRAM energy savings (% over default)",
            |v| v.ratios.energy_savings_pct,
        );
    }

    // Fig 3a summary statistics quoted in the text.
    let mut respected = 0usize;
    let mut total = 0usize;
    let mut max_excess: (f64, String) = (f64::MIN, String::new());
    for s in &sweeps {
        for v in &s.dufp {
            total += 1;
            let excess = v.ratios.overhead_pct - v.slowdown_pct;
            if excess <= 0.0 {
                respected += 1;
            } else if excess > max_excess.0 {
                max_excess = (excess, format!("{} @ {:.0}%", s.app, v.slowdown_pct));
            }
        }
    }
    println!(
        "\nDUFP respects the tolerated slowdown in {respected}/{total} configurations \
         (paper: 34/40); max excess {:.2}% on {} (paper: 3.17% on LAMMPS @ 20%)",
        max_excess.0.max(0.0),
        if max_excess.1.is_empty() {
            "-"
        } else {
            &max_excess.1
        },
    );
    std::io::stdout().flush().ok();
}

fn print_panel(
    sweeps: &[AppSweep],
    title: &str,
    metric: impl Fn(&dufp_bench::sweep::VariantResult) -> f64,
) {
    println!("\n## {title}\n");
    let header = [
        "app", "DUF@0", "DUFP@0", "DUF@5", "DUFP@5", "DUF@10", "DUFP@10", "DUF@20", "DUFP@20",
    ];
    let rows: Vec<Vec<String>> = sweeps
        .iter()
        .map(|s| {
            let mut row = vec![s.app.clone()];
            for i in 0..4 {
                row.push(fmt_pct(metric(&s.duf[i])));
                row.push(fmt_pct(metric(&s.dufp[i])));
            }
            row
        })
        .collect();
    print!("{}", markdown_table(&header, &rows));
}
