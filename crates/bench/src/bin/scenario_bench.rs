//! Scenario-engine benchmark: mini-scenario runs/sec at 1, half-cores and
//! all-cores workers, plus the serial-vs-parallel speedup.
//!
//! Seeds `BENCH_scenario.json` at the current directory (repo root in CI,
//! where it is uploaded as an artifact), so the datacenter scenario
//! engine's throughput is tracked from its first PR. The work unit is one
//! `(seed, policy)` fleet run of the built-in mini scenario — co-tenant
//! physics, arrival model and allocator epochs included. Like
//! `sweep_bench`, a single-core host is reported honestly: the run is
//! flagged `degenerate` and the speedup assertion is skipped, because a
//! 1-core host can only measure pool overhead.
//!
//! Usage: cargo run -p dufp-bench --release --bin scenario_bench -- [--out FILE]

use dufp_scenario::{run_one, PolicyChoice, ScenarioSpec};
use rayon::prelude::*;
use serde::Serialize;
use std::time::Instant;

/// One worker-count measurement over the same run set.
#[derive(Debug, Serialize)]
struct Series {
    workers: usize,
    runs: usize,
    elapsed_s: f64,
    runs_per_sec: f64,
}

#[derive(Debug, Serialize)]
struct Report {
    bench: &'static str,
    available_cores: usize,
    nodes: usize,
    tenants: usize,
    intervals: u64,
    seeds: usize,
    policies: usize,
    runs: usize,
    /// True when the host has a single core: the series then measure pool
    /// overhead, not parallelism, and the speedup check is skipped.
    degenerate: bool,
    series: Vec<Series>,
    /// runs/sec at the widest worker count over runs/sec serial.
    speedup_all_vs_serial: f64,
}

fn measure(spec: &ScenarioSpec, pairs: &[(u64, PolicyChoice)], workers: usize) -> Series {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(workers)
        .build()
        .expect("build pool");
    let start = Instant::now();
    let energies: Vec<f64> = pool.install(|| {
        pairs
            .par_iter()
            .map(|&(seed, policy)| {
                run_one(spec, seed, policy)
                    .expect("scenario run")
                    .row
                    .fleet_energy_j
            })
            .collect()
    });
    let elapsed = start.elapsed().as_secs_f64();
    assert!(energies.iter().all(|e| e.is_finite() && *e > 0.0));
    Series {
        workers,
        runs: pairs.len(),
        elapsed_s: elapsed,
        runs_per_sec: pairs.len() as f64 / elapsed.max(1e-9),
    }
}

fn main() {
    let mut out = String::from("BENCH_scenario.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out = args.next().expect("--out needs a path"),
            other => {
                eprintln!("unknown flag {other}");
                eprintln!("usage: scenario_bench [--out FILE]");
                std::process::exit(2);
            }
        }
    }

    let spec = ScenarioSpec::mini();
    let policies = [
        PolicyChoice::Uncapped,
        PolicyChoice::StaticSplit,
        PolicyChoice::DemandBased,
    ];
    let seeds: Vec<u64> = (0..8).collect();
    let pairs: Vec<(u64, PolicyChoice)> = seeds
        .iter()
        .flat_map(|&s| policies.iter().map(move |&p| (s, p)))
        .collect();

    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    // 1, half, all — deduplicated; a single-core host still measures a
    // 2-worker series so the artifact shows real pool overhead.
    let mut worker_counts = vec![1, (cores / 2).max(1), cores];
    if cores == 1 {
        worker_counts.push(2);
    }
    worker_counts.sort_unstable();
    worker_counts.dedup();

    // Warm the process-wide workload cache so the serial series is not
    // charged for phase-table materialization.
    let _ = measure(&spec, &pairs, 1);

    let mut series = Vec::new();
    for &w in &worker_counts {
        eprintln!("mini scenario ({} runs) on {w} worker(s)...", pairs.len());
        series.push(measure(&spec, &pairs, w));
    }

    let serial = series
        .iter()
        .find(|s| s.workers == 1)
        .expect("serial series");
    let widest = series.last().expect("at least one series");
    let dt = spec.interval_ms as f64 / 1000.0;
    let report = Report {
        bench: "scenario",
        available_cores: cores,
        nodes: spec.nodes.len(),
        tenants: spec.tenant_count(),
        intervals: (spec.duration_s / dt).ceil() as u64,
        seeds: seeds.len(),
        policies: policies.len(),
        runs: pairs.len(),
        degenerate: cores == 1,
        speedup_all_vs_serial: widest.runs_per_sec / serial.runs_per_sec,
        series,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    println!("{json}");
    std::fs::write(&out, format!("{json}\n")).expect("write bench json");
    eprintln!("wrote {out}");

    if report.degenerate {
        eprintln!("single core available: degenerate run, speedup check skipped");
    } else {
        assert!(
            report.speedup_all_vs_serial > 1.0,
            "parallel scenario runs slower than serial on a {cores}-core host \
             (speedup {:.2})",
            report.speedup_all_vs_serial
        );
    }
}
