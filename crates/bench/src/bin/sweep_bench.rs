//! Sweep-engine benchmark: paper-grid throughput at 1, half-cores and
//! all-cores workers, plus the serial-vs-parallel speedup.
//!
//! Seeds `BENCH_sweep.json` at the current directory (repo root in CI,
//! where it is uploaded as an artifact), so the batched-engine trajectory
//! is tracked from its first PR. Numbers are honest for the host they ran
//! on: `available_cores` is recorded next to every series, and on a
//! single-core host a 2-worker series is still measured so the pool
//! overhead (not a fantasy speedup) is what lands in the artifact.
//!
//! Usage: cargo run -p dufp-bench --release --bin sweep_bench -- [--out FILE]

use dufp::{run_sweep, SweepGrid};
use serde::Serialize;

/// One worker-count measurement over the same grid.
#[derive(Debug, Serialize)]
struct Series {
    workers: usize,
    workers_observed: usize,
    jobs: usize,
    elapsed_s: f64,
    jobs_per_sec: f64,
}

#[derive(Debug, Serialize)]
struct Report {
    bench: &'static str,
    available_cores: usize,
    grid_apps: usize,
    grid_policies: usize,
    grid_slowdowns: usize,
    grid_seeds: usize,
    jobs: usize,
    /// True when the host has a single core: every series then measures
    /// pool overhead, not parallelism, so the speedup check is skipped
    /// and downstream consumers must not read `speedup_all_vs_serial`
    /// as a scaling signal.
    degenerate: bool,
    series: Vec<Series>,
    /// jobs/sec at the widest worker count over jobs/sec serial.
    speedup_all_vs_serial: f64,
}

fn measure(grid: &SweepGrid, workers: usize) -> Series {
    let out = run_sweep(grid, workers).expect("sweep run");
    Series {
        workers,
        workers_observed: out.workers_observed,
        jobs: out.rows.len(),
        elapsed_s: out.elapsed_s,
        jobs_per_sec: out.jobs_per_sec(),
    }
}

fn main() {
    let mut out = String::from("BENCH_sweep.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out = args.next().expect("--out needs a path"),
            other => {
                eprintln!("unknown flag {other}");
                eprintln!("usage: sweep_bench [--out FILE]");
                std::process::exit(2);
            }
        }
    }

    let grid = SweepGrid::paper();
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    // 1, half, all — deduplicated; a single-core host still measures a
    // 2-worker series so the artifact shows real pool overhead.
    let mut worker_counts = vec![1, (cores / 2).max(1), cores];
    if cores == 1 {
        worker_counts.push(2);
    }
    worker_counts.sort_unstable();
    worker_counts.dedup();

    // Warm the process-wide workload cache so the serial series is not
    // charged for materialization the parallel ones get for free.
    let _ = measure(&grid, 1);

    let mut series = Vec::new();
    for &w in &worker_counts {
        eprintln!("paper grid ({} jobs) on {w} worker(s)...", grid.len());
        series.push(measure(&grid, w));
    }

    let serial = series
        .iter()
        .find(|s| s.workers == 1)
        .expect("serial series");
    let widest = series.last().expect("at least one series");
    let report = Report {
        bench: "sweep",
        available_cores: cores,
        grid_apps: grid.apps.len(),
        grid_policies: grid.policies.len(),
        grid_slowdowns: grid.slowdowns_pct.len(),
        grid_seeds: grid.seeds.len(),
        jobs: grid.len(),
        degenerate: cores == 1,
        speedup_all_vs_serial: widest.jobs_per_sec / serial.jobs_per_sec,
        series,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    println!("{json}");
    std::fs::write(&out, format!("{json}\n")).expect("write bench json");
    eprintln!("wrote {out}");

    // The scaling sanity check only means something with real parallelism
    // on offer; a single-core host measures pool overhead by design.
    if report.degenerate {
        eprintln!("single core available: degenerate run, speedup check skipped");
    } else {
        assert!(
            report.speedup_all_vs_serial > 1.0,
            "parallel sweep slower than serial on a {cores}-core host \
             (speedup {:.2})",
            report.speedup_all_vs_serial
        );
    }
}
