//! Sweep-engine benchmark: paper-grid throughput for both stepping
//! engines (the `tick` oracle and the memoized `event` fast path) at 1,
//! half-cores and all-cores workers, plus the serial-vs-parallel speedup
//! and the per-job engine speedup.
//!
//! Seeds `BENCH_sweep.json` at the current directory (repo root in CI,
//! where it is uploaded as an artifact), so the batched-engine and
//! fast-path trajectories are tracked from their first PRs. Numbers are
//! honest for the host they ran on: `available_cores` is recorded next to
//! every series, and on a single-core host a 2-worker series is still
//! measured so the pool overhead (not a fantasy speedup) is what lands in
//! the artifact.
//!
//! Usage: cargo run -p dufp-bench --release --bin sweep_bench -- [--out FILE]

use dufp::{run_sweep, Engine, SweepGrid};
use serde::Serialize;

/// One (engine, worker-count) measurement over the same grid.
#[derive(Debug, Serialize)]
struct Series {
    engine: &'static str,
    workers: usize,
    workers_observed: usize,
    jobs: usize,
    elapsed_s: f64,
    jobs_per_sec: f64,
}

#[derive(Debug, Serialize)]
struct Report {
    bench: &'static str,
    available_cores: usize,
    grid_apps: usize,
    grid_policies: usize,
    grid_slowdowns: usize,
    grid_seeds: usize,
    jobs: usize,
    /// True when the host has a single core: every series then measures
    /// pool overhead, not parallelism, so the speedup check is skipped
    /// and downstream consumers must not read `speedup_all_vs_serial`
    /// as a scaling signal.
    degenerate: bool,
    series: Vec<Series>,
    /// Event-engine jobs/sec at the widest worker count over jobs/sec
    /// serial (the parallel-scaling signal, measured on the default
    /// engine).
    speedup_all_vs_serial: f64,
    /// Serial jobs/sec for the legacy per-tick oracle.
    tick_jobs_per_sec: f64,
    /// Serial jobs/sec for the memoized fast path.
    event_jobs_per_sec: f64,
    /// The per-job fast-path speedup: event over tick, both serial, same
    /// grid. CI gates on this staying above 5x.
    event_speedup_vs_tick: f64,
}

fn measure(grid: &SweepGrid, workers: usize) -> Series {
    let out = run_sweep(grid, workers).expect("sweep run");
    Series {
        engine: grid.engine.label(),
        workers,
        workers_observed: out.workers_observed,
        jobs: out.rows.len(),
        elapsed_s: out.elapsed_s,
        jobs_per_sec: out.jobs_per_sec(),
    }
}

fn main() {
    let mut out = String::from("BENCH_sweep.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out = args.next().expect("--out needs a path"),
            other => {
                eprintln!("unknown flag {other}");
                eprintln!("usage: sweep_bench [--out FILE]");
                std::process::exit(2);
            }
        }
    }

    let mut grid = SweepGrid::paper();
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    // 1, half, all — deduplicated; a single-core host still measures a
    // 2-worker series so the artifact shows real pool overhead.
    let mut worker_counts = vec![1, (cores / 2).max(1), cores];
    if cores == 1 {
        worker_counts.push(2);
    }
    worker_counts.sort_unstable();
    worker_counts.dedup();

    // Warm the process-wide workload cache so the first serial series is
    // not charged for materialization the later ones get for free.
    let _ = measure(&grid, 1);

    // Oracle first, fast path second: the artifact reads as a before/after.
    let mut series = Vec::new();
    for engine in [Engine::Tick, Engine::Event] {
        grid.engine = engine;
        for &w in &worker_counts {
            eprintln!(
                "paper grid ({} jobs), engine {}, {w} worker(s)...",
                grid.len(),
                engine.label()
            );
            series.push(measure(&grid, w));
        }
    }

    let serial_for = |engine: &str| {
        series
            .iter()
            .find(|s| s.engine == engine && s.workers == 1)
            .unwrap_or_else(|| panic!("serial {engine} series"))
    };
    let tick_serial = serial_for("tick").jobs_per_sec;
    let event_serial = serial_for("event").jobs_per_sec;
    let widest = series
        .iter()
        .filter(|s| s.engine == "event")
        .next_back()
        .expect("event series");
    let report = Report {
        bench: "sweep",
        available_cores: cores,
        grid_apps: grid.apps.len(),
        grid_policies: grid.policies.len(),
        grid_slowdowns: grid.slowdowns_pct.len(),
        grid_seeds: grid.seeds.len(),
        jobs: grid.len(),
        degenerate: cores == 1,
        speedup_all_vs_serial: widest.jobs_per_sec / event_serial,
        tick_jobs_per_sec: tick_serial,
        event_jobs_per_sec: event_serial,
        event_speedup_vs_tick: event_serial / tick_serial,
        series,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    println!("{json}");
    std::fs::write(&out, format!("{json}\n")).expect("write bench json");
    eprintln!("wrote {out}");

    // The scaling sanity check only means something with real parallelism
    // on offer; a single-core host measures pool overhead by design. The
    // engine-speedup gate is likewise skipped there: a contended single
    // core makes both numbers noise.
    if report.degenerate {
        eprintln!("single core available: degenerate run, speedup checks skipped");
    } else {
        assert!(
            report.speedup_all_vs_serial > 1.0,
            "parallel sweep slower than serial on a {cores}-core host \
             (speedup {:.2})",
            report.speedup_all_vs_serial
        );
        assert!(
            report.event_speedup_vs_tick >= 5.0,
            "fast-path regression: event engine only {:.1}x the tick oracle \
             (contract: >= 5x)",
            report.event_speedup_vs_tick
        );
    }
}
