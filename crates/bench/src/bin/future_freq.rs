//! DUFP vs DUFP-F — the §VII future-work study: does managing core
//! frequency directly (instead of relying on RAPL to throttle) improve
//! performance and power?
//!
//! Usage: `future_freq [--runs N] [--sockets N] [--slowdown PCT]`

use dufp::prelude::*;
use dufp::{ratios_vs_default, run_repeated, ControllerKind, ExperimentSpec};
use dufp_bench::report::{fmt_pct, markdown_table};
use dufp_bench::sweep::APPS;
use rayon::prelude::*;

fn main() {
    let mut runs = 5usize;
    let mut sockets = 1u16;
    let mut pct = 10.0f64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--runs" => runs = args.next().expect("--runs N").parse().expect("int"),
            "--sockets" => sockets = args.next().expect("--sockets N").parse().expect("int"),
            "--slowdown" => pct = args.next().expect("--slowdown PCT").parse().expect("float"),
            other => panic!("unknown argument {other}"),
        }
    }
    let mut sim = SimConfig::yeti(42);
    sim.arch.sockets = sockets;
    let slowdown = Ratio::from_percent(pct);

    eprintln!(
        "future_freq: DUFP vs DUFP-F on {} apps at {pct:.0}%...",
        APPS.len()
    );
    let rows: Vec<Vec<String>> = APPS
        .par_iter()
        .map(|app| {
            let spec = |controller| ExperimentSpec {
                sim: sim.clone(),
                app: (*app).into(),
                controller,
                trace: None,
                interval_ms: None,
                telemetry: false,
                fault_plan: None,
                engine: Default::default(),
            };
            let base = run_repeated(&spec(ControllerKind::Default), runs, 1).expect(app);
            let dufp = ratios_vs_default(
                &base,
                &run_repeated(&spec(ControllerKind::Dufp { slowdown }), runs, 1).expect(app),
            );
            let dufpf = ratios_vs_default(
                &base,
                &run_repeated(&spec(ControllerKind::DufpF { slowdown }), runs, 1).expect(app),
            );
            vec![
                (*app).to_string(),
                format!(
                    "{} / {}",
                    fmt_pct(dufp.overhead_pct),
                    fmt_pct(dufp.pkg_power_savings_pct)
                ),
                format!(
                    "{} / {}",
                    fmt_pct(dufpf.overhead_pct),
                    fmt_pct(dufpf.pkg_power_savings_pct)
                ),
                format!(
                    "{}",
                    fmt_pct(dufpf.pkg_power_savings_pct - dufp.pkg_power_savings_pct)
                ),
            ]
        })
        .collect();

    println!("\n## DUFP vs DUFP-F at {pct:.0}% tolerated slowdown ({runs} runs)\n");
    print!(
        "{}",
        markdown_table(
            &[
                "app",
                "DUFP (overhead/savings)",
                "DUFP-F (overhead/savings)",
                "Δ savings"
            ],
            &rows
        )
    );
    println!(
        "\nDUFP-F reaches the throttled operating point by explicit P-state \
         request instead of letting the RAPL firmware hunt for it — fewer \
         enforcement transients, no deep-allowance bandwidth starvation \
         (the paper's §VII hypothesis, made measurable)."
    );
}
