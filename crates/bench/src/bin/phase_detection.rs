//! Phase-detector validation: DUFP's §III detector (operational-intensity
//! class flips + FLOPS/s doubling at a 200 ms cadence) scored against the
//! simulator's ground-truth phase transitions.
//!
//! Quantifies §V-A's failure analysis: UA's short compute iterations are
//! missed once a deep cap flattens their FLOPS spike, and LAMMPS' 50 ms
//! rebuild bursts are invisible at 200 ms. The same detector is scored
//! twice per application — in the default configuration and under a deep
//! static cap — so the cap-induced detection loss is visible directly.
//!
//! Usage: `phase_detection [--seed S] [--cap W]`

use dufp_bench::report::markdown_table;
use dufp_bench::sweep::APPS;
use dufp_control::{PhaseEvent, PhaseTracker};
use dufp_counters::Sampler;
use dufp_model::RooflineModel;
use dufp_msr::registers::{PkgPowerLimit, RaplPowerUnit};
use dufp_msr::MsrIo;
use dufp_sim::{Machine, SimConfig};
use dufp_types::{Instant, Seconds, SocketId, Watts};
use dufp_workloads::{apps, MaterializeCtx};

struct Score {
    observable_truth: usize,
    detected: usize,
    matched: usize,
}

impl Score {
    fn recall(&self) -> f64 {
        if self.observable_truth == 0 {
            1.0
        } else {
            self.matched as f64 / self.observable_truth as f64
        }
    }
    fn precision(&self) -> f64 {
        if self.detected == 0 {
            1.0
        } else {
            self.matched.min(self.detected) as f64 / self.detected as f64
        }
    }
}

fn main() {
    let mut seed = 42u64;
    let mut cap = 75.0f64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seed" => seed = args.next().expect("--seed S").parse().expect("int"),
            "--cap" => cap = args.next().expect("--cap W").parse().expect("float"),
            other => panic!("unknown argument {other}"),
        }
    }

    println!("## Phase-change detection quality (200 ms sampler, ±1 interval match window)\n");
    let mut rows = Vec::new();
    for app in APPS {
        let free = score(app, seed, None);
        let capped = score(app, seed, Some(Watts(cap)));
        rows.push(vec![
            app.to_string(),
            format!("{}", free.observable_truth),
            format!(
                "{:.0}% / {:.0}%",
                free.recall() * 100.0,
                free.precision() * 100.0
            ),
            format!(
                "{:.0}% / {:.0}%",
                capped.recall() * 100.0,
                capped.precision() * 100.0
            ),
        ]);
    }
    print!(
        "{}",
        markdown_table(
            &[
                "app",
                "observable transitions",
                "default (recall/precision)",
                &format!("{cap:.0} W cap (recall/precision)"),
            ],
            &rows
        )
    );
    println!(
        "\nDeep caps flatten the FLOPS spikes the detector keys on — recall \
         drops exactly where the paper reports undetected phases (UA §V-A)."
    );
}

/// Runs `app` start-to-finish, feeding the sampled metrics to a fresh
/// [`PhaseTracker`], and scores detections against the ground truth.
fn score(app: &str, seed: u64, static_cap: Option<Watts>) -> Score {
    let sim = SimConfig::yeti_single_socket(seed);
    let arch = sim.arch.clone();
    let ctx = MaterializeCtx::from_arch(&arch);
    let workload = apps::by_name(app, &ctx).expect("app");
    let machine = Machine::new(sim);
    machine.load_all(&workload);
    if let Some(w) = static_cap {
        let units = RaplPowerUnit::skylake_sp();
        let reg = PkgPowerLimit::defaults(w, Seconds(1.0), w, Seconds(0.01));
        machine
            .write(
                0,
                dufp_msr::registers::MSR_PKG_POWER_LIMIT,
                reg.encode(&units).unwrap(),
            )
            .unwrap();
    }

    let mut tracker = PhaseTracker::new();
    let mut sampler = Sampler::new();
    sampler.sample(&machine, SocketId(0)).unwrap();
    let mut detections: Vec<Instant> = Vec::new();
    while !machine.done() {
        for _ in 0..200 {
            machine.tick();
            if machine.done() {
                break;
            }
        }
        if let Some(m) = sampler.sample(&machine, SocketId(0)).unwrap() {
            if tracker.observe(&m) == PhaseEvent::Changed {
                detections.push(m.at);
            }
        }
    }

    // Ground truth: keep only transitions where the counter signature
    // actually changes (identical back-to-back phases are unobservable by
    // construction).
    let log = machine.phase_log(SocketId(0)).unwrap();
    let m = RooflineModel {
        cores: arch.cores_per_socket,
    };
    let signature = |idx: usize| {
        let p = &workload.phases[idx];
        let pr = m.progress(&p.rates, arch.core_freq_max, arch.peak_bandwidth);
        (pr.flops.value(), RooflineModel::intensity(&p.rates).value())
    };
    let mut truth: Vec<Instant> = Vec::new();
    for w in log.windows(2) {
        let (f0, oi0) = signature(w[0].1);
        let (f1, oi1) = signature(w[1].1);
        let flops_jump = f1 / f0.max(1.0);
        let class_flip = (oi0 < 1.0) != (oi1 < 1.0);
        if class_flip || flops_jump >= 2.0 || flops_jump <= 0.5 {
            truth.push(w[1].0);
        }
    }

    // Match detections to truth within ±1.5 sampling intervals.
    let window_us = 300_000u64;
    let mut matched = 0usize;
    let mut used = vec![false; detections.len()];
    for t in &truth {
        if let Some((i, _)) = detections
            .iter()
            .enumerate()
            .filter(|(i, d)| !used[*i] && d.0.abs_diff(t.0) <= window_us)
            .min_by_key(|(_, d)| d.0.abs_diff(t.0))
        {
            used[i] = true;
            matched += 1;
        }
    }
    Score {
        observable_truth: truth.len(),
        detected: detections.len(),
        matched,
    }
}
