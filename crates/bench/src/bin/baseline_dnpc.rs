//! DUFP vs the DNPC related-work baseline (§VI).
//!
//! The paper argues DNPC's frequency-linear degradation model breaks on
//! memory-intensive applications: the cores may be throttled deeply with
//! no real performance impact, which DNPC reads as a violation and backs
//! the cap off. This binary quantifies the claim on a memory-bound (CG),
//! a compute-bound (EP) and a mixed (LU) application.
//!
//! Usage: `baseline_dnpc [--runs N] [--sockets N] [--slowdown PCT]`

use dufp::prelude::*;
use dufp::{ratios_vs_default, run_repeated, ControllerKind, ExperimentSpec};
use dufp_bench::report::{fmt_pct, markdown_table};

fn main() {
    let mut runs = 5usize;
    let mut sockets = 1u16;
    let mut pct = 10.0f64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--runs" => runs = args.next().expect("--runs N").parse().expect("int"),
            "--sockets" => sockets = args.next().expect("--sockets N").parse().expect("int"),
            "--slowdown" => pct = args.next().expect("--slowdown PCT").parse().expect("float"),
            other => panic!("unknown argument {other}"),
        }
    }

    let mut sim = SimConfig::yeti(42);
    sim.arch.sockets = sockets;
    let slowdown = Ratio::from_percent(pct);

    println!("## DUFP vs DNPC at {pct:.0}% tolerated degradation ({runs} runs)\n");
    let mut rows = Vec::new();
    for app in ["CG", "EP", "LU", "MG"] {
        let spec = |controller| ExperimentSpec {
            sim: sim.clone(),
            app: app.into(),
            controller,
            trace: None,
            interval_ms: None,
            telemetry: false,
            fault_plan: None,
            engine: Default::default(),
        };
        let base = run_repeated(&spec(ControllerKind::Default), runs, 1).expect(app);
        let dnpc = ratios_vs_default(
            &base,
            &run_repeated(&spec(ControllerKind::Dnpc { slowdown }), runs, 1).expect(app),
        );
        let dufp = ratios_vs_default(
            &base,
            &run_repeated(&spec(ControllerKind::Dufp { slowdown }), runs, 1).expect(app),
        );
        rows.push(vec![
            app.to_string(),
            format!(
                "{} / {}",
                fmt_pct(dnpc.overhead_pct),
                fmt_pct(dnpc.pkg_power_savings_pct)
            ),
            format!(
                "{} / {}",
                fmt_pct(dufp.overhead_pct),
                fmt_pct(dufp.pkg_power_savings_pct)
            ),
        ]);
    }
    print!(
        "{}",
        markdown_table(
            &["app", "DNPC (overhead/savings)", "DUFP (overhead/savings)"],
            &rows
        )
    );
    println!(
        "\nOn memory-bound codes DNPC's frequency-linear model over-estimates \
         degradation and backs the cap off early; DUFP reads FLOPS/s and keeps \
         capping (the §VI critique, made measurable)."
    );
}
