//! Governor × controller interaction study (§V-G: "is CPU frequency
//! properly managed under power capping?").
//!
//! Compares the paper's setup (performance governor, DUFP on top) against
//! a schedutil-flavoured powersave governor, with and without DUFP:
//! does a smarter OS governor subsume DUFP's cap savings, or do they
//! compose?
//!
//! Usage: `governor_study [--runs N] [--slowdown PCT] [--seed S]`

use dufp::prelude::*;
use dufp::{run_repeated, ControllerKind, ExperimentSpec};
use dufp_bench::report::markdown_table;
use dufp_sim::Governor;
use rayon::prelude::*;

fn main() {
    let mut runs = 4usize;
    let mut pct = 10.0f64;
    let mut seed = 42u64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--runs" => runs = args.next().expect("--runs N").parse().expect("int"),
            "--slowdown" => pct = args.next().expect("--slowdown PCT").parse().expect("float"),
            "--seed" => seed = args.next().expect("--seed S").parse().expect("int"),
            other => panic!("unknown argument {other}"),
        }
    }
    let slowdown = Ratio::from_percent(pct);

    let cell = |app: &str, governor: Governor, controller: ControllerKind| {
        let mut sim = SimConfig::yeti_single_socket(seed);
        sim.governor = governor;
        let spec = ExperimentSpec {
            sim,
            app: app.into(),
            controller,
            trace: None,
            interval_ms: None,
            telemetry: false,
            fault_plan: None,
            engine: Default::default(),
        };
        run_repeated(&spec, runs, seed).expect("run")
    };

    println!("## Governor × controller study at {pct:.0}% tolerated slowdown\n");
    let apps = ["CG", "EP", "MG", "HPL"];
    let rows: Vec<Vec<String>> = apps
        .par_iter()
        .map(|app| {
            let base = cell(app, Governor::Performance, ControllerKind::Default);
            let fmt = |r: &dufp::RepeatedResult| {
                format!(
                    "{:+.1}% @ {:+.1}%",
                    (1.0 - r.pkg_power.mean / base.pkg_power.mean) * 100.0,
                    (r.exec_time.mean / base.exec_time.mean - 1.0) * 100.0
                )
            };
            let psave = cell(
                app,
                Governor::Powersave { bias: 0.25 },
                ControllerKind::Default,
            );
            let dufp = cell(
                app,
                Governor::Performance,
                ControllerKind::Dufp { slowdown },
            );
            let both = cell(
                app,
                Governor::Powersave { bias: 0.25 },
                ControllerKind::Dufp { slowdown },
            );
            vec![app.to_string(), fmt(&psave), fmt(&dufp), fmt(&both)]
        })
        .collect();
    print!(
        "{}",
        markdown_table(
            &[
                "app",
                "powersave alone (savings @ overhead)",
                "DUFP alone",
                "powersave + DUFP"
            ],
            &rows
        )
    );
    println!(
        "\nA stall-aware governor and DUFP overlap on the core-frequency axis \
         but DUFP's uncore and cap axes remain; composing them stacks most of \
         both savings — evidence for the paper's §VII plan to fold frequency \
         management into DUFP."
    );
}
