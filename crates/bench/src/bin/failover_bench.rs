//! Coordinator-failover benchmark: takeover latency and journal replay
//! throughput.
//!
//! Two numbers gate the high-availability story:
//!
//! * **Takeover latency** — how many allocator epochs a fleet spends
//!   between the primary dying and the promoted standby's first applied
//!   higher-term grant. Measured over the deterministic chaos scenarios
//!   so the figure is reproducible and network-free.
//! * **Replay throughput** — how fast `recover()` rebuilds a core from a
//!   durable journal (events/second), which bounds how stale a standby
//!   can let itself get before the takeover grace window is at risk.
//!
//! Seeds `BENCH_failover.json` at the current directory (repo root in
//! CI, uploaded as an artifact).
//!
//! Usage: cargo run -p dufp-bench --release --bin failover_bench --
//!        [--out FILE] [--events N] [--agents N] [--seed S]

use dufp_journal::TestDir;
use dufp_net::chaos::{run_scenario, ChaosConfig};
use dufp_net::{recover, CoordinatorConfig, FleetCore, FleetJournal};
use dufp_telemetry::Telemetry;
use dufp_types::Watts;
use serde::Serialize;
use std::time::Instant;

#[derive(Debug, Serialize)]
struct TakeoverBench {
    scenario: String,
    epochs: u64,
    elapsed_ms: f64,
    takeover_epochs: Option<u64>,
    replay_matched: Option<bool>,
    stale_grants_fenced: u64,
    score: f64,
}

#[derive(Debug, Serialize)]
struct ReplayBench {
    agents: usize,
    events_journaled: u64,
    journal_head: u64,
    events_replayed: u64,
    recover_ms: f64,
    events_per_sec: f64,
}

#[derive(Debug, Serialize)]
struct Report {
    bench: &'static str,
    seed: u64,
    takeover: Vec<TakeoverBench>,
    replay: ReplayBench,
}

fn bench_takeover(cfg: &ChaosConfig, name: &str) -> TakeoverBench {
    let started = Instant::now();
    let card = run_scenario(cfg, name).expect("built-in scenario runs");
    let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
    assert!(
        card.conservation_ok && card.floor_ok,
        "bench scenario must hold its invariants: {card:?}"
    );
    TakeoverBench {
        scenario: name.to_string(),
        epochs: cfg.epochs,
        elapsed_ms,
        takeover_epochs: card.takeover_epochs,
        replay_matched: card.replay_matched,
        stale_grants_fenced: card.stale_grants_fenced,
        score: card.score,
    }
}

/// Journals `events` fleet events through a live core, then times a cold
/// `recover()` with checkpointing effectively disabled, so recovery
/// replays the full log — the worst case the takeover grace window must
/// absorb.
fn bench_replay(agents: usize, events: u64) -> ReplayBench {
    let dir = TestDir::new("failover-bench-replay");
    let cfg = CoordinatorConfig::new("virtual", Watts(100.0 + 150.0 * agents as f64));
    let mut core = FleetCore::new(&cfg, Telemetry::enabled());
    core.attach_journal(
        FleetJournal::create(dir.path())
            .expect("create bench journal")
            .with_checkpoint_every(u64::MAX),
    );

    let mut now_ms = 1_000u64;
    let slots: Vec<usize> = (0..agents)
        .map(|i| {
            core.admit(
                format!("n{i}"),
                "EP".into(),
                Watts(65.0),
                Watts(125.0),
                now_ms,
            )
            .expect("bench admit")
        })
        .collect();
    let mut seq = 0u64;
    let mut journaled = agents as u64;
    while journaled < events {
        seq += 1;
        now_ms += 50;
        for &slot in &slots {
            core.on_report(slot, seq, Watts(120.0), Watts(95.0), true, now_ms);
            journaled += 1;
        }
        core.epoch_once(now_ms);
        journaled += 1;
    }

    let started = Instant::now();
    let recovered =
        recover(dir.path(), &cfg, Telemetry::enabled()).expect("bench journal recovers");
    let recover_ms = started.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        recovered.events_replayed, journaled,
        "checkpoints were meant to be disabled for the replay measurement"
    );
    assert_eq!(
        recovered.core.snapshot_bytes().expect("replayed snapshot"),
        core.snapshot_bytes().expect("live snapshot"),
        "bench replay must be byte-identical to the live core"
    );
    ReplayBench {
        agents,
        events_journaled: journaled,
        journal_head: recovered.journal_head,
        events_replayed: recovered.events_replayed,
        recover_ms,
        events_per_sec: recovered.events_replayed as f64 / (recover_ms / 1e3).max(1e-9),
    }
}

fn main() {
    let mut out = String::from("BENCH_failover.json");
    let mut events = 50_000u64;
    let mut agents = 8usize;
    let mut seed = 42u64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out = args.next().expect("--out FILE"),
            "--events" => events = args.next().expect("--events N").parse().expect("int"),
            "--agents" => agents = args.next().expect("--agents N").parse().expect("int"),
            "--seed" => seed = args.next().expect("--seed S").parse().expect("int"),
            other => panic!("unknown flag {other}"),
        }
    }

    let cfg = ChaosConfig::new(seed);
    eprintln!("failover_bench: takeover scenarios at seed {seed}...");
    let takeover = vec![
        bench_takeover(&cfg, "coordinator-kill"),
        bench_takeover(&cfg, "takeover-partition"),
    ];
    for t in &takeover {
        eprintln!(
            "  {:<20} takeover in {:?} epochs (score {:.0}, {} stale grants fenced)",
            t.scenario, t.takeover_epochs, t.score, t.stale_grants_fenced
        );
    }

    eprintln!("failover_bench: replaying ~{events} journaled events for {agents} agents...");
    let replay = bench_replay(agents, events);
    eprintln!(
        "  recover() replayed {} events in {:.1} ms ({:.0} events/s)",
        replay.events_replayed, replay.recover_ms, replay.events_per_sec
    );

    let report = Report {
        bench: "failover",
        seed,
        takeover,
        replay,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, &json).expect("write bench report");
    println!("{json}");
    eprintln!("failover_bench: wrote {out}");
}
