//! CPU+GPU shared power budget — the paper's closing §VII question,
//! answered on the simulator.
//!
//! A CG job runs under DUFP on the CPU socket while a GPU job runs under
//! an NVML-style power limit, both inside one shared budget. The `donate`
//! coordinator hands the watts DUFP frees on the CPU to the GPU.
//!
//! Usage: `hetero_budget [--budget W] [--gpu-work UNITS] [--app APP] [--seed S]`

use dufp_bench::report::markdown_table;
use dufp_cluster::{run_hetero, HeteroConfig, SharePolicy};
use dufp_types::Watts;

fn main() {
    let mut cfg = HeteroConfig::demo(42);
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--budget" => {
                cfg.budget = Watts(args.next().expect("--budget W").parse().expect("float"))
            }
            "--gpu-work" => {
                cfg.gpu_work = args
                    .next()
                    .expect("--gpu-work UNITS")
                    .parse()
                    .expect("float")
            }
            "--app" => cfg.cpu_app = args.next().expect("--app APP"),
            "--seed" => cfg.seed = args.next().expect("--seed S").parse().expect("int"),
            other => panic!("unknown argument {other}"),
        }
    }

    println!(
        "## CPU ({}) + GPU under one {:.0} W budget — DUFP @ {:.0}% on the CPU\n",
        cfg.cpu_app,
        cfg.budget.value(),
        cfg.slowdown.as_percent()
    );

    let rows: Vec<Vec<String>> = [SharePolicy::Static, SharePolicy::Donate]
        .into_iter()
        .map(|policy| {
            let out = run_hetero(&cfg, policy).expect("hetero run");
            vec![
                format!("{policy:?}"),
                format!("{:.1}", out.cpu_time.value()),
                format!("{:.1}", out.gpu_time.value()),
                format!("{:.0}", out.avg_gpu_limit.value()),
                format!("{:.1}", out.peak_combined_power.value()),
            ]
        })
        .collect();
    print!(
        "{}",
        markdown_table(
            &[
                "policy",
                "CPU time (s)",
                "GPU time (s)",
                "avg GPU limit (W)",
                "peak combined (W)"
            ],
            &rows
        )
    );
    println!(
        "\n§VII: \"can we benefit from dynamic power capping to reduce the \
         budget of the CPU when it does not need it and increase the GPU power \
         budget?\" — yes: the donated DUFP headroom buys GPU speed at the same \
         combined budget."
    );
}
