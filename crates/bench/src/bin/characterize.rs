//! Application sensitivity characterization — the §V-F discussion, made
//! systematic.
//!
//! The paper observes that predicting how much an application gains from
//! power capping is "not straightforward": CPU-intensive codes save little
//! (< 7 %) because capping costs them frequency; highly-memory codes
//! tolerate the 65 W floor outright; everything else needs measuring. This
//! binary measures exactly that, per application:
//!
//! * **cap sensitivity** — slowdown per watt removed, from a static-cap
//!   probe at 100 W,
//! * **uncore sensitivity** — slowdown from pinning the uncore one step
//!   below the bandwidth knee,
//! * the resulting **DUFP class** prediction, checked against the measured
//!   DUFP@10 % savings.
//!
//! Usage: `characterize [--seed S]`

use dufp::prelude::*;
use dufp::{run_once, ControllerKind, ExperimentSpec};
use dufp_bench::report::markdown_table;
use dufp_bench::sweep::APPS;
use rayon::prelude::*;

struct Row {
    app: String,
    cap_sens: f64,
    uncore_sens: f64,
    class: &'static str,
    dufp_savings: f64,
    dufp_overhead: f64,
}

fn main() {
    let mut seed = 42u64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seed" => seed = args.next().expect("--seed S").parse().expect("int"),
            other => panic!("unknown argument {other}"),
        }
    }
    eprintln!("characterize: probing {} applications...", APPS.len());
    let rows: Vec<Row> = APPS.par_iter().map(|app| characterize(app, seed)).collect();

    println!("\n## Application characterization (§V-F)\n");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.app.clone(),
                format!("{:.2}", r.cap_sens),
                format!("{:.2}", r.uncore_sens),
                r.class.to_string(),
                format!("{:+.1} % @ {:+.1} %", r.dufp_savings, r.dufp_overhead),
            ]
        })
        .collect();
    print!(
        "{}",
        markdown_table(
            &[
                "app",
                "cap sens. (%slow / 10 W)",
                "uncore sens. (%slow / step)",
                "class",
                "DUFP@10% (savings @ overhead)"
            ],
            &table
        )
    );
    println!(
        "\ncap-bound apps (high cap sensitivity) keep their savings below ~7 % \
         (paper: HPL, BT); bandwidth-bound apps tolerate deep caps; the mixed \
         rest 'is not easy to draw any characteristic' — which is why DUFP \
         measures instead of predicting."
    );
}

fn characterize(app: &str, seed: u64) -> Row {
    let spec = |controller| ExperimentSpec {
        sim: SimConfig::yeti_single_socket(seed),
        app: app.into(),
        controller,
        trace: None,
        interval_ms: None,
        telemetry: false,
        fault_plan: None,
        engine: Default::default(),
    };
    let base = run_once(&spec(ControllerKind::Default), seed).unwrap();
    let base_t = base.exec_time.value();
    let base_p = base.avg_pkg_power.value();

    // Cap probe: static 100 W.
    let capped = run_once(&spec(ControllerKind::StaticCap { cap: Watts(100.0) }), seed).unwrap();
    let removed_w = (base_p - capped.avg_pkg_power.value()).max(1.0);
    let cap_sens = ((capped.exec_time.value() / base_t - 1.0) * 100.0) / removed_w * 10.0;

    // Uncore probe: DUF at 0 % finds the free uncore level; compare a DUF
    // run at 10 % to see how much slowdown the uncore path alone causes.
    let duf = run_once(
        &spec(ControllerKind::Duf {
            slowdown: Ratio::from_percent(10.0),
        }),
        seed,
    )
    .unwrap();
    let uncore_sens = (duf.exec_time.value() / base_t - 1.0) * 100.0;

    // The static-cap probe runs with the uncore at its default maximum, so
    // even memory codes show some sensitivity; the split that separates the
    // paper's classes is the relative magnitude.
    let class = if cap_sens > 9.0 {
        "frequency-sensitive (CPU-intensive)"
    } else if uncore_sens < 1.5 {
        "cap-tolerant (memory-leaning)"
    } else {
        "mixed"
    };

    let dufp = run_once(
        &spec(ControllerKind::Dufp {
            slowdown: Ratio::from_percent(10.0),
        }),
        seed,
    )
    .unwrap();
    Row {
        app: app.to_string(),
        cap_sens,
        uncore_sens,
        class,
        dufp_savings: (1.0 - dufp.avg_pkg_power.value() / base_p) * 100.0,
        dufp_overhead: (dufp.exec_time.value() / base_t - 1.0) * 100.0,
    }
}
