//! Regenerates Table I — target architecture characteristics.

use dufp_types::ArchSpec;

fn main() {
    let arch = ArchSpec::yeti();
    println!("## Table I — target architecture characteristics\n");
    println!("| cores | uncore frequency (GHz) | long term (W) | short term (W) |");
    println!("|-------|------------------------|---------------|----------------|");
    println!("{}", arch.table1_row());
    println!();
    println!("platform: {arch}");
    println!(
        "actuation: uncore step {:.0} MHz, cap step {:.0} W, cap floor {:.0} W (§IV-A)",
        arch.uncore_freq_step.as_mhz(),
        arch.cap_step.value(),
        arch.cap_floor.value(),
    );
}
