//! Ablation study over DUFP's design choices (see DESIGN.md §5).
//!
//! Usage: `ablation [--slowdown PCT] [--seed S] [APP ...]`

use dufp_bench::ablation::{run_ablation, Variant};
use dufp_bench::report::{fmt_pct, markdown_table};

fn main() {
    let mut slowdown = 10.0f64;
    let mut seed = 42u64;
    let mut apps: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--slowdown" => slowdown = args.next().expect("--slowdown PCT").parse().expect("float"),
            "--seed" => seed = args.next().expect("--seed S").parse().expect("int"),
            other => apps.push(other.to_string()),
        }
    }
    if apps.is_empty() {
        apps = vec!["CG".into(), "EP".into(), "UA".into(), "LAMMPS".into()];
    }
    let app_refs: Vec<&str> = apps.iter().map(String::as_str).collect();

    eprintln!(
        "ablation: {} variants x {:?} at {slowdown:.0}% tolerated slowdown...",
        Variant::ALL.len(),
        apps
    );
    let rows = run_ablation(&app_refs, slowdown, seed).expect("ablation runs");

    println!("\n## Ablation — DUFP @ {slowdown:.0}% (overhead% / package savings%)\n");
    let mut header = vec!["variant"];
    header.extend(app_refs.iter().copied());
    let table: Vec<Vec<String>> = Variant::ALL
        .iter()
        .map(|v| {
            let mut row = vec![v.label().to_string()];
            for app in &app_refs {
                let r = rows
                    .iter()
                    .find(|r| r.variant == *v && r.app == *app)
                    .expect("grid complete");
                row.push(format!(
                    "{} / {}",
                    fmt_pct(r.overhead_pct),
                    fmt_pct(r.pkg_savings_pct)
                ));
            }
            row
        })
        .collect();
    print!("{}", markdown_table(&header, &table));
    println!(
        "\nRead each row against 'full DUFP': a mechanism earns its place when \
         removing it either breaks the tolerance (overhead above the target) \
         or costs savings."
    );
}
