//! Cluster power-budget distribution over per-node DUFP — the coordination
//! layer the paper cites as complementary (GEOPM, DAPS; §VI) and the
//! budget-shifting idea of its §VII future work.
//!
//! Runs a four-job mix (HPL, CG, EP, MG) under a cluster budget tighter
//! than 4 × PL1 and compares a static even split against demand-based
//! reallocation, with DUFP running unmodified on every node.
//!
//! Usage: `cluster_budget [--budget W] [--slowdown PCT] [--seed S]`

use dufp_bench::report::markdown_table;
use dufp_cluster::{Cluster, ClusterConfig, DemandBased, StaticSplit};
use dufp_types::{Ratio, Watts};

fn main() {
    let mut budget = 420.0f64;
    let mut pct = 10.0f64;
    let mut seed = 42u64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--budget" => budget = args.next().expect("--budget W").parse().expect("float"),
            "--slowdown" => pct = args.next().expect("--slowdown PCT").parse().expect("float"),
            "--seed" => seed = args.next().expect("--seed S").parse().expect("int"),
            other => panic!("unknown argument {other}"),
        }
    }

    let mut cfg = ClusterConfig::demo(seed);
    cfg.budget = Watts(budget);
    cfg.slowdown = Ratio::from_percent(pct);

    println!(
        "## Cluster budget distribution — {} nodes, {budget:.0} W total, DUFP @ {pct:.0}% per node\n",
        cfg.nodes.len()
    );

    for policy in [
        Box::new(StaticSplit) as Box<dyn dufp_cluster::AllocatorPolicy>,
        Box::new(DemandBased::default()),
    ] {
        let out = Cluster::new(cfg.clone(), policy)
            .expect("cluster builds")
            .run()
            .expect("cluster runs");
        println!("### policy: {}\n", out.policy);
        let rows: Vec<Vec<String>> = out
            .nodes
            .iter()
            .map(|n| {
                vec![
                    n.app.clone(),
                    format!("{:.1}", n.exec_time.value()),
                    format!("{:.1}", n.avg_power.value()),
                    format!("{:.0}", n.final_ceiling.value()),
                ]
            })
            .collect();
        print!(
            "{}",
            markdown_table(
                &["node", "time (s)", "avg power (W)", "final ceiling (W)"],
                &rows
            )
        );
        println!(
            "makespan {:.1} s, peak cluster power {:.1} W (budget {budget:.0} W)\n",
            out.makespan.value(),
            out.peak_cluster_power.value()
        );
    }
    println!(
        "Demand-based allocation moves watts from nodes DUFP already trimmed \
         (EP, the finished jobs) to the budget-hungry solver (HPL) — the \
         cross-component budget shifting of the paper's §VII, at node scale."
    );
}
