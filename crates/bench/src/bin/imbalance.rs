//! Per-socket independence under workload imbalance.
//!
//! The paper runs "one instance of DUFP on each user-specified socket"
//! (§III) precisely because sockets behave independently. Real nodes never
//! balance perfectly (rank 0 carries extra work); this study loads the
//! four sockets with deliberately skewed shares of the same application
//! and shows that each socket's DUFP adapts on its own: early finishers
//! drop to idle power while the straggler keeps its budget.
//!
//! Usage: `imbalance [--app APP] [--skew PCT] [--seed S]`

use dufp_bench::report::markdown_table;
use dufp_control::{Actuators, ControlConfig, Controller, Dufp, HwActuators};
use dufp_counters::{Sampler, Telemetry};
use dufp_rapl::MsrRapl;
use dufp_sim::{Machine, SimConfig};
use dufp_types::{Ratio, SocketId};
use dufp_workloads::{apps, MaterializeCtx};
use std::sync::Arc;

fn main() {
    let mut app = "CG".to_string();
    let mut skew = 15.0f64;
    let mut seed = 42u64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--app" => app = args.next().expect("--app APP"),
            "--skew" => skew = args.next().expect("--skew PCT").parse().expect("float"),
            "--seed" => seed = args.next().expect("--seed S").parse().expect("int"),
            other => panic!("unknown argument {other}"),
        }
    }

    let sim = SimConfig::yeti(seed);
    let arch = sim.arch.clone();
    let ctx = MaterializeCtx::from_arch(&arch);
    let machine = Arc::new(Machine::new(sim));
    let workload = apps::by_name(&app, &ctx).expect("app");

    // Socket 0 carries +skew% work, socket 3 carries -skew%.
    let s = skew / 100.0;
    let factors = [1.0 + s, 1.0, 1.0, 1.0 - s];
    machine.load_imbalanced(&workload, &factors).expect("load");

    let cfg = ControlConfig::from_arch(&arch, Ratio::from_percent(10.0)).unwrap();
    let capper =
        Arc::new(MsrRapl::new(Arc::clone(&machine), 4, arch.cores_per_socket as usize).unwrap());
    let mut per_socket: Vec<(Dufp, Sampler, _)> = (0..4u16)
        .map(|i| {
            let act = HwActuators::new(
                Arc::clone(&machine),
                Arc::clone(&capper),
                SocketId(i),
                usize::from(i) * usize::from(arch.cores_per_socket),
                cfg.clone(),
            )
            .unwrap();
            let mut sampler = Sampler::new();
            sampler.sample(machine.as_ref(), SocketId(i)).unwrap();
            (Dufp::new(cfg.clone()), sampler, act)
        })
        .collect();

    let ticks = cfg.interval.as_micros() / machine.config().tick.as_micros();
    let mut finish = [None::<f64>; 4];
    let mut tail_energy_start = [0.0f64; 4];
    while !machine.done() {
        for _ in 0..ticks {
            machine.tick();
        }
        let now = machine.now().as_seconds().value();
        for (i, (controller, sampler, act)) in per_socket.iter_mut().enumerate() {
            let done = machine
                .with_socket(SocketId(i as u16), |s| s.done())
                .unwrap();
            if done && finish[i].is_none() {
                finish[i] = Some(now);
                tail_energy_start[i] = machine
                    .sample(SocketId(i as u16))
                    .unwrap()
                    .pkg_energy
                    .value();
            }
            if let Some(m) = sampler
                .sample(machine.as_ref(), SocketId(i as u16))
                .unwrap()
            {
                if !done {
                    controller.on_interval(&m, act).unwrap();
                }
            }
        }
    }
    let end = machine.now().as_seconds().value();

    println!("## Workload imbalance across sockets — {app}, ±{skew:.0}% skew, DUFP @ 10%\n");
    let rows: Vec<Vec<String>> = (0..4)
        .map(|i| {
            let t = finish[i].unwrap_or(end);
            let idle_secs = end - t;
            let tail_power = if idle_secs > 0.5 {
                let e_end = machine
                    .sample(SocketId(i as u16))
                    .unwrap()
                    .pkg_energy
                    .value();
                (e_end - tail_energy_start[i]) / idle_secs
            } else {
                f64::NAN
            };
            vec![
                format!("socket {i} (×{:.2})", factors[i]),
                format!("{t:.1}"),
                if tail_power.is_nan() {
                    "— (finished last)".to_string()
                } else {
                    format!("{tail_power:.1}")
                },
                format!("{:.0}", per_socket[i].2.cap_long().value()),
            ]
        })
        .collect();
    print!(
        "{}",
        markdown_table(
            &[
                "socket",
                "finish (s)",
                "idle-tail power (W)",
                "final cap (W)"
            ],
            &rows
        )
    );
    println!(
        "\nEach socket's DUFP instance adapts independently: light sockets \
         finish early and coast at idle power while the heavy socket keeps \
         its budget — no cross-socket coordination needed (§III)."
    );
}
