//! Diagnostic: dump operating-point statistics for one app × controller.
//!
//! Usage: `debug_trace <APP> <duf|dufp|default> <slowdown_pct>`

use dufp::prelude::*;
use dufp::{run_once, ControllerKind, ExperimentSpec, TraceSpec};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let app = args.get(1).map(String::as_str).unwrap_or("EP");
    let which = args.get(2).map(String::as_str).unwrap_or("dufp");
    let pct: f64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(20.0);
    let controller = match which {
        "duf" => ControllerKind::Duf {
            slowdown: Ratio::from_percent(pct),
        },
        "default" => ControllerKind::Default,
        _ => ControllerKind::Dufp {
            slowdown: Ratio::from_percent(pct),
        },
    };
    let spec = ExperimentSpec {
        sim: SimConfig::yeti_single_socket(7),
        app: app.into(),
        controller,
        trace: Some(TraceSpec {
            socket: SocketId(0),
            stride: 50,
        }),
        interval_ms: None,
        telemetry: false,
        fault_plan: None,
        engine: Default::default(),
    };
    let r = run_once(&spec, 7).unwrap();
    let tr = r.trace.unwrap();
    println!(
        "{} {} @{}%: time {:.2}s pkg {:.2}W dram {:.2}W",
        app,
        which,
        pct,
        r.exec_time.value(),
        r.avg_pkg_power.value(),
        r.avg_dram_power.value()
    );
    let n = tr.points.len() as f64;
    let avg = |f: &dyn Fn(&dufp_sim::TracePoint) -> f64| tr.points.iter().map(f).sum::<f64>() / n;
    println!(
        "avg core {:.2} GHz | avg uncore {:.2} GHz | avg pl1 {:.1} W | avg allowance {:.1} W",
        avg(&|p| p.core_freq.as_ghz()),
        avg(&|p| p.uncore_freq.as_ghz()),
        avg(&|p| p.pl1.value()),
        avg(&|p| p.allowance.value()),
    );
    // Histogram of PL1 over time (seconds at each cap level).
    let mut hist = std::collections::BTreeMap::new();
    for p in &tr.points {
        *hist.entry(p.pl1.value() as i64).or_insert(0usize) += 1;
    }
    print!("pl1 histogram:");
    for (w, c) in hist {
        print!(" {w}W:{:.0}%", 100.0 * c as f64 / n);
    }
    println!();
    let mut uh = std::collections::BTreeMap::new();
    for p in &tr.points {
        *uh.entry((p.uncore_freq.as_ghz() * 10.0).round() as i64)
            .or_insert(0usize) += 1;
    }
    print!("uncore histogram:");
    for (u, c) in uh {
        print!(" {:.1}G:{:.0}%", u as f64 / 10.0, 100.0 * c as f64 / n);
    }
    println!();
}
