//! Regenerates Fig. 5 — CPU frequency under DUF vs DUFP, CG at 10 %.
//!
//! Usage: `fig5 [--sockets N] [--seed S] [--csv DIR]`

use dufp_bench::fig5::{run_fig5, trace_csv};

fn main() {
    let mut sockets = 4u16;
    let mut seed = 42u64;
    let mut csv_dir: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--sockets" => sockets = args.next().expect("--sockets N").parse().expect("int"),
            "--seed" => seed = args.next().expect("--seed S").parse().expect("int"),
            "--csv" => csv_dir = Some(args.next().expect("--csv DIR")),
            other => panic!("unknown argument {other}"),
        }
    }

    let (duf, dufp) = run_fig5(sockets, seed).expect("fig5 traces");
    println!("## Fig 5 — CPU frequency, CG @ 10% tolerated slowdown\n");
    println!(
        "{}: average core frequency {:.2} GHz (paper: ≈2.8 GHz), package {:.1} W",
        duf.label, duf.avg_core_ghz, duf.avg_pkg_power
    );
    println!(
        "{}: average core frequency {:.2} GHz (paper: ≈2.5 GHz), package {:.1} W",
        dufp.label, dufp.avg_core_ghz, dufp.avg_pkg_power
    );
    println!(
        "\nPower capping enables core-frequency reduction that uncore scaling \
         alone cannot reach — the source of DUFP's extra package savings (§V-E)."
    );

    if let Some(dir) = csv_dir {
        std::fs::create_dir_all(&dir).expect("create csv dir");
        for t in [&duf, &dufp] {
            let path = format!("{dir}/fig5_{}.csv", t.label.replace(['@', '%'], "_"));
            std::fs::write(&path, trace_csv(t)).expect("write csv");
            eprintln!("fig5: wrote {path}");
        }
    }
}
