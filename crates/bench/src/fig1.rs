//! The Fig. 1 motivation experiments (§II-A): static and partial power
//! capping on CG.
//!
//! * **Fig. 1a** — CG for the whole run under: default, (hardware) UFS,
//!   UFS + 110 W cap, UFS + 100 W cap. Reported as execution-time ratio
//!   over default and power ratio over the *socket budget* (125 W each).
//! * **Fig. 1b** — the same caps applied only to CG's first, highly-memory
//!   phase (≈5 % of the run): power ratio of that phase window.
//! * **Fig. 1c** — total execution time with the partial cap: unchanged.

use dufp::prelude::*;
use dufp::{run_once, ControllerKind, ExperimentSpec, TraceSpec};
use dufp_types::Result;
use serde::{Deserialize, Serialize};

/// One Fig. 1 series row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig1Row {
    /// Legend label.
    pub label: String,
    /// Whole-run execution time ratio over default.
    pub time_ratio: f64,
    /// Whole-run average power over the budget (`sockets × PL1`).
    pub power_over_budget: f64,
    /// Average power of the first-phase window over the budget.
    pub window_power_over_budget: f64,
}

/// All Fig. 1 data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig1Results {
    /// Whole-run series (Fig. 1a): default, UFS, UFS+110 W, UFS+100 W.
    pub whole_run: Vec<Fig1Row>,
    /// Partial-cap series (Fig. 1b/1c): default, cap 110 W, cap 100 W on
    /// the first phase only.
    pub windowed: Vec<Fig1Row>,
}

/// Seconds of CG's highly-memory prologue at the default configuration.
pub const CG_PROLOGUE_SECS: f64 = 2.0;

fn run_one(
    sim: &SimConfig,
    controller: ControllerKind,
    label: &str,
    seed: u64,
    default_time: Option<f64>,
) -> Result<Fig1Row> {
    let spec = ExperimentSpec {
        sim: sim.clone(),
        app: "CG".into(),
        controller,
        trace: Some(TraceSpec {
            socket: SocketId(0),
            stride: 20,
        }),
        interval_ms: None,
        telemetry: false,
        fault_plan: None,
        engine: Default::default(),
    };
    let r = run_once(&spec, seed)?;
    let budget_per_socket = sim.arch.pl1_default.value();
    let trace = r.trace.as_ref().expect("trace requested");
    // Whole-node power over whole-node budget equals per-socket power over
    // per-socket budget (sockets run identical work).
    let power_over_budget =
        r.avg_pkg_power.value() / (f64::from(sim.arch.sockets) * budget_per_socket);
    // First-phase window, measured on the traced socket.
    let window: Vec<_> = trace
        .points
        .iter()
        .filter(|p| p.at.as_seconds().value() < CG_PROLOGUE_SECS)
        .collect();
    let window_power = if window.is_empty() {
        f64::NAN
    } else {
        window.iter().map(|p| p.pkg_power.value()).sum::<f64>() / window.len() as f64
    };
    Ok(Fig1Row {
        label: label.to_owned(),
        time_ratio: default_time.map(|d| r.exec_time.value() / d).unwrap_or(1.0),
        power_over_budget,
        window_power_over_budget: window_power / budget_per_socket,
    })
}

/// Runs the full Fig. 1 experiment set.
pub fn run_fig1(sockets: u16, seed: u64) -> Result<Fig1Results> {
    let mut sim = SimConfig::yeti(seed);
    sim.arch.sockets = sockets;

    // Reference run for the time ratios.
    let base = run_one(&sim, ControllerKind::Default, "default", seed, None)?;
    let base_time = {
        let spec = ExperimentSpec {
            sim: sim.clone(),
            app: "CG".into(),
            controller: ControllerKind::Default,
            trace: None,
            interval_ms: None,
            telemetry: false,
            fault_plan: None,
            engine: Default::default(),
        };
        run_once(&spec, seed)?.exec_time.value()
    };

    let whole = |cap: f64, label: &str| {
        run_one(
            &sim,
            ControllerKind::StaticCap { cap: Watts(cap) },
            label,
            seed,
            Some(base_time),
        )
    };
    // On the real platform "UFS" is the hardware's default uncore scaling —
    // already active in the default configuration; the pair quantifies that
    // it "provides limited power savings" (§II-A).
    let ufs = run_one(
        &sim,
        ControllerKind::Default,
        "UFS",
        seed ^ 1,
        Some(base_time),
    )?;

    let windowed = |cap: f64, label: &str| {
        run_one(
            &sim,
            ControllerKind::WindowedCap {
                cap: Watts(cap),
                start: Seconds(0.0),
                end: Seconds(CG_PROLOGUE_SECS),
            },
            label,
            seed,
            Some(base_time),
        )
    };

    Ok(Fig1Results {
        whole_run: vec![
            base,
            ufs,
            whole(110.0, "UFS + cap 110W")?,
            whole(100.0, "UFS + cap 100W")?,
        ],
        windowed: vec![
            windowed(110.0, "cap 110W on first phase")?,
            windowed(100.0, "cap 100W on first phase")?,
        ],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_shape_holds_single_socket() {
        let r = run_fig1(1, 3).unwrap();
        assert_eq!(r.whole_run.len(), 4);
        let base = &r.whole_run[0];
        let cap110 = &r.whole_run[2];
        let cap100 = &r.whole_run[3];
        // Deeper caps save more whole-run power...
        assert!(cap110.power_over_budget < base.power_over_budget - 0.01);
        assert!(cap100.power_over_budget < cap110.power_over_budget);
        // ...at increasing time cost.
        assert!(cap100.time_ratio > cap110.time_ratio);
        assert!(cap100.time_ratio > 1.02);

        // Partial capping: the phase power falls but total time holds
        // (within noise) — the paper's Fig. 1c point.
        for w in &r.windowed {
            assert!(
                w.window_power_over_budget < base.window_power_over_budget - 0.02,
                "{}: window power {:.3} vs base {:.3}",
                w.label,
                w.window_power_over_budget,
                base.window_power_over_budget
            );
            assert!(
                (w.time_ratio - 1.0).abs() < 0.03,
                "{}: partial cap changed total time: {:.4}",
                w.label,
                w.time_ratio
            );
        }
    }
}
