//! Shared harness code for regenerating the paper's tables and figures.
//!
//! Each `src/bin/*.rs` binary regenerates one artifact:
//!
//! | binary            | paper artifact |
//! |-------------------|----------------|
//! | `table1`          | Table I — architecture characteristics |
//! | `fig1`            | Fig. 1 — static/partial power capping on CG |
//! | `fig3`            | Fig. 3a/b/c — time, package power, energy (10 apps × 4 slowdowns, DUF vs DUFP) |
//! | `fig4`            | Fig. 4 — DRAM power |
//! | `fig5`            | Fig. 5 — CPU frequency traces, CG @ 10 % |
//! | `all_experiments` | everything above + EXPERIMENTS.md update |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod fig1;
pub mod fig5;
pub mod paper;
pub mod report;
pub mod sweep;

pub use paper::PaperClaim;
pub use report::{fmt_pct, markdown_table};
pub use sweep::{sweep_app, AppSweep, SweepConfig, SLOWDOWNS};
