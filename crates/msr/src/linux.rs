//! The real `/dev/cpu/N/msr` backend.
//!
//! This is the access path the paper's tool uses ("uncore frequency is
//! directly accessed and modified through the MSR registers"). It requires
//! the `msr` kernel module and root (or `CAP_SYS_RAWIO` plus a permissive
//! kernel lockdown mode).
//!
//! The backend is compiled on Linux only and is exercised by the test suite
//! solely through its error paths unless `/dev/cpu/0/msr` actually exists —
//! all experiments in this repository run against the simulator instead.

use crate::io::MsrIo;
use dufp_types::{Error, Result};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::os::unix::fs::FileExt;
use std::path::PathBuf;

/// MSR access through `/dev/cpu/<cpu>/msr` device files.
///
/// File handles are opened lazily per CPU and cached; `pread`/`pwrite` at
/// offset = register address performs the access, mirroring the kernel
/// `msr` driver's ABI.
#[derive(Debug)]
pub struct LinuxMsr {
    root: PathBuf,
    cpus: usize,
    handles: Mutex<HashMap<usize, File>>,
}

impl LinuxMsr {
    /// Opens the standard `/dev/cpu` hierarchy.
    ///
    /// Fails fast with [`Error::Unsupported`] when the `msr` driver is not
    /// loaded (no `/dev/cpu/0/msr`).
    pub fn open() -> Result<Self> {
        Self::open_at("/dev/cpu", num_possible_cpus())
    }

    /// Opens an alternate device-tree root (for tests pointing at a fixture
    /// directory).
    pub fn open_at(root: impl Into<PathBuf>, cpus: usize) -> Result<Self> {
        let root = root.into();
        if !root.join("0").join("msr").exists() {
            return Err(Error::Unsupported(
                "msr device files not present (is the msr kernel module loaded?)",
            ));
        }
        Ok(LinuxMsr {
            root,
            cpus,
            handles: Mutex::new(HashMap::new()),
        })
    }

    fn with_handle<T>(&self, cpu: usize, f: impl FnOnce(&File) -> std::io::Result<T>) -> Result<T> {
        if cpu >= self.cpus {
            return Err(Error::NoSuchComponent(format!("cpu{cpu}")));
        }
        let mut handles = self.handles.lock();
        if let std::collections::hash_map::Entry::Vacant(e) = handles.entry(cpu) {
            let path = self.root.join(cpu.to_string()).join("msr");
            let file = OpenOptions::new()
                .read(true)
                .write(true)
                .open(&path)
                .map_err(Error::Io)?;
            e.insert(file);
        }
        f(handles.get(&cpu).expect("just inserted")).map_err(Error::Io)
    }
}

impl MsrIo for LinuxMsr {
    fn read(&self, cpu: usize, address: u32) -> Result<u64> {
        self.with_handle(cpu, |file| {
            let mut buf = [0u8; 8];
            file.read_exact_at(&mut buf, u64::from(address))?;
            Ok(u64::from_le_bytes(buf))
        })
    }

    fn write(&self, cpu: usize, address: u32, value: u64) -> Result<()> {
        self.with_handle(cpu, |file| {
            file.write_all_at(&value.to_le_bytes(), u64::from(address))
        })
    }

    fn cpu_count(&self) -> usize {
        self.cpus
    }
}

/// Best-effort count of possible CPUs from sysfs, defaulting to 1.
fn num_possible_cpus() -> usize {
    std::fs::read_to_string("/sys/devices/system/cpu/possible")
        .ok()
        .and_then(|s| parse_cpu_range(s.trim()))
        .unwrap_or(1)
}

/// Parses the kernel's "0-63" (or "0") range syntax into a count.
fn parse_cpu_range(s: &str) -> Option<usize> {
    match s.split_once('-') {
        Some((_, hi)) => hi.parse::<usize>().ok().map(|h| h + 1),
        None => s.parse::<usize>().ok().map(|h| h + 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_range_parser() {
        assert_eq!(parse_cpu_range("0-63"), Some(64));
        assert_eq!(parse_cpu_range("0"), Some(1));
        assert_eq!(parse_cpu_range("garbage"), None);
    }

    #[test]
    fn missing_device_tree_is_unsupported() {
        let err = LinuxMsr::open_at("/nonexistent", 4).unwrap_err();
        assert!(matches!(err, Error::Unsupported(_)));
    }

    #[test]
    fn fixture_device_tree_round_trips() {
        // Build a fake /dev/cpu layout backed by regular files; pread/pwrite
        // at offset=address works the same way on them.
        let dir = std::env::temp_dir().join(format!("dufp-msr-test-{}", std::process::id()));
        let cpu0 = dir.join("0");
        std::fs::create_dir_all(&cpu0).unwrap();
        // Regular file must be large enough to read at offset 0x620.
        std::fs::write(cpu0.join("msr"), vec![0u8; 0x1000]).unwrap();

        let msr = LinuxMsr::open_at(&dir, 1).unwrap();
        msr.write(0, 0x620, 0x1212).unwrap();
        assert_eq!(msr.read(0, 0x620).unwrap(), 0x1212);
        assert!(msr.read(5, 0x620).is_err(), "cpu out of range");

        std::fs::remove_dir_all(&dir).unwrap();
    }
}
