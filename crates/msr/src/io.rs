//! The MSR backend abstraction and an in-memory fake.
//!
//! Everything above this layer (the RAPL zone API, the controllers, the
//! simulator glue) talks to hardware exclusively through [`MsrIo`], so a
//! test, a simulation and a real Skylake-SP node are interchangeable.

use crate::fault::{FaultInjector, FaultOp, FaultPlan};
use dufp_types::{Error, Result};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Per-CPU model-specific register access.
///
/// `cpu` is a machine-global logical CPU number (what `/dev/cpu/N/msr`
/// uses). Implementations must be safe to share across threads — DUFP runs
/// one controller thread per socket.
pub trait MsrIo: Send + Sync {
    /// Reads the 64-bit register `address` on `cpu`.
    fn read(&self, cpu: usize, address: u32) -> Result<u64>;

    /// Writes the 64-bit register `address` on `cpu`.
    fn write(&self, cpu: usize, address: u32, value: u64) -> Result<()>;

    /// Number of logical CPUs this backend can address.
    fn cpu_count(&self) -> usize;
}

impl<T: MsrIo + ?Sized> MsrIo for Arc<T> {
    fn read(&self, cpu: usize, address: u32) -> Result<u64> {
        (**self).read(cpu, address)
    }
    fn write(&self, cpu: usize, address: u32, value: u64) -> Result<()> {
        (**self).write(cpu, address, value)
    }
    fn cpu_count(&self) -> usize {
        (**self).cpu_count()
    }
}

/// Failure-injection switch for [`FakeMsr`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// All accesses succeed.
    None,
    /// Reads of a specific register fail.
    ReadOf(u32),
    /// Writes of a specific register fail.
    WriteOf(u32),
    /// Every access on a specific CPU fails (e.g. offlined core).
    Cpu(usize),
}

/// An in-memory MSR file, for unit tests and as the storage behind the
/// simulator's MSR surface.
///
/// Registers read as zero until first written, except those pre-seeded via
/// [`FakeMsr::seed`]. Supports failure injection so the error paths of the
/// layers above can be exercised.
pub struct FakeMsr {
    cpus: usize,
    regs: Mutex<HashMap<(usize, u32), u64>>,
    fault: Mutex<Fault>,
    injector: Mutex<Option<Arc<FaultInjector>>>,
    writes: Mutex<Vec<(usize, u32, u64)>>,
}

impl FakeMsr {
    /// Creates a fake with `cpus` logical CPUs, all registers zero.
    pub fn new(cpus: usize) -> Self {
        FakeMsr {
            cpus,
            regs: Mutex::new(HashMap::new()),
            fault: Mutex::new(Fault::None),
            injector: Mutex::new(None),
            writes: Mutex::new(Vec::new()),
        }
    }

    /// Pre-seeds a register value on every CPU.
    pub fn seed(&self, address: u32, value: u64) {
        let mut regs = self.regs.lock();
        for cpu in 0..self.cpus {
            regs.insert((cpu, address), value);
        }
    }

    /// Pre-seeds a register value on one CPU.
    pub fn seed_cpu(&self, cpu: usize, address: u32, value: u64) {
        self.regs.lock().insert((cpu, address), value);
    }

    /// Arms a failure mode (replaces any previous one).
    pub fn inject(&self, fault: Fault) {
        *self.fault.lock() = fault;
    }

    /// Arms a [`FaultPlan`] (replaces any previous plan). The plan is
    /// evaluated on every access, in addition to the legacy [`Fault`]
    /// switch; with no backend clock, `at=`/`window=` schedules count each
    /// rule's structurally matching accesses.
    pub fn inject_plan(&self, plan: FaultPlan) {
        *self.injector.lock() = if plan.is_empty() {
            None
        } else {
            Some(Arc::new(FaultInjector::new(plan)))
        };
    }

    /// Disarms both the legacy [`Fault`] switch and any [`FaultPlan`].
    pub fn clear_faults(&self) {
        *self.fault.lock() = Fault::None;
        *self.injector.lock() = None;
    }

    /// All writes observed so far, in order: `(cpu, address, value)`.
    pub fn write_log(&self) -> Vec<(usize, u32, u64)> {
        self.writes.lock().clone()
    }

    /// Clears the write log.
    pub fn clear_write_log(&self) {
        self.writes.lock().clear();
    }

    fn check(&self, cpu: usize, address: u32, is_write: bool) -> Result<()> {
        if cpu >= self.cpus {
            return Err(Error::NoSuchComponent(format!("cpu{cpu}")));
        }
        let injector = self.injector.lock().clone();
        if let Some(injector) = injector {
            let op = if is_write {
                FaultOp::Write
            } else {
                FaultOp::Read
            };
            injector.check_msr(op, cpu, address)?;
        }
        match *self.fault.lock() {
            Fault::None => Ok(()),
            Fault::ReadOf(a) if !is_write && a == address => {
                Err(Error::msr(address, "injected read fault"))
            }
            Fault::WriteOf(a) if is_write && a == address => {
                Err(Error::msr(address, "injected write fault"))
            }
            Fault::Cpu(c) if c == cpu => Err(Error::msr(address, "injected cpu fault")),
            _ => Ok(()),
        }
    }
}

impl MsrIo for FakeMsr {
    fn read(&self, cpu: usize, address: u32) -> Result<u64> {
        self.check(cpu, address, false)?;
        Ok(*self.regs.lock().get(&(cpu, address)).unwrap_or(&0))
    }

    fn write(&self, cpu: usize, address: u32, value: u64) -> Result<()> {
        self.check(cpu, address, true)?;
        self.regs.lock().insert((cpu, address), value);
        self.writes.lock().push((cpu, address, value));
        Ok(())
    }

    fn cpu_count(&self) -> usize {
        self.cpus
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registers::MSR_PKG_POWER_LIMIT;
    use std::sync::Arc;

    #[test]
    fn unwritten_registers_read_zero() {
        let m = FakeMsr::new(2);
        assert_eq!(m.read(0, 0x620).unwrap(), 0);
    }

    #[test]
    fn write_then_read_round_trips_per_cpu() {
        let m = FakeMsr::new(2);
        m.write(0, 0x620, 0x1212).unwrap();
        assert_eq!(m.read(0, 0x620).unwrap(), 0x1212);
        assert_eq!(m.read(1, 0x620).unwrap(), 0, "cpu 1 untouched");
    }

    #[test]
    fn seed_applies_to_all_cpus() {
        let m = FakeMsr::new(3);
        m.seed(0x606, 0xA0E03);
        for cpu in 0..3 {
            assert_eq!(m.read(cpu, 0x606).unwrap(), 0xA0E03);
        }
    }

    #[test]
    fn out_of_range_cpu_errors() {
        let m = FakeMsr::new(1);
        assert!(m.read(1, 0x620).is_err());
        assert!(m.write(1, 0x620, 0).is_err());
    }

    #[test]
    fn injected_faults_fire_selectively() {
        let m = FakeMsr::new(2);
        m.inject(Fault::WriteOf(MSR_PKG_POWER_LIMIT));
        assert!(m.write(0, MSR_PKG_POWER_LIMIT, 1).is_err());
        assert!(m.write(0, 0x620, 1).is_ok(), "other registers unaffected");
        assert!(m.read(0, MSR_PKG_POWER_LIMIT).is_ok(), "reads unaffected");

        m.inject(Fault::Cpu(1));
        assert!(m.read(1, 0x620).is_err());
        assert!(m.read(0, 0x620).is_ok());

        m.inject(Fault::None);
        assert!(m.write(0, MSR_PKG_POWER_LIMIT, 1).is_ok());
    }

    #[test]
    fn fault_plans_layer_over_the_legacy_switch() {
        let m = FakeMsr::new(2);
        m.inject_plan(crate::FaultPlan::parse("write,reg=cap,window=1+2").expect("plan parses"));
        assert!(m.write(0, MSR_PKG_POWER_LIMIT, 1).is_ok(), "before window");
        assert!(m.write(0, MSR_PKG_POWER_LIMIT, 2).is_err());
        assert!(m.write(0, MSR_PKG_POWER_LIMIT, 3).is_err());
        assert!(m.write(0, MSR_PKG_POWER_LIMIT, 4).is_ok(), "after window");
        assert_eq!(
            m.read(0, MSR_PKG_POWER_LIMIT).unwrap(),
            4,
            "failed writes must not land"
        );

        m.clear_faults();
        m.inject_plan(crate::FaultPlan::none());
        assert!(m.write(0, MSR_PKG_POWER_LIMIT, 5).is_ok());
    }

    #[test]
    fn write_log_records_order() {
        let m = FakeMsr::new(1);
        m.write(0, 0x620, 1).unwrap();
        m.write(0, 0x610, 2).unwrap();
        assert_eq!(m.write_log(), vec![(0, 0x620, 1), (0, 0x610, 2)]);
        m.clear_write_log();
        assert!(m.write_log().is_empty());
    }

    #[test]
    fn arc_dyn_usable_across_threads() {
        let m: Arc<dyn MsrIo> = Arc::new(FakeMsr::new(4));
        let handles: Vec<_> = (0..4)
            .map(|cpu| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    m.write(cpu, 0x620, cpu as u64).unwrap();
                    m.read(cpu, 0x620).unwrap()
                })
            })
            .collect();
        for (cpu, h) in handles.into_iter().enumerate() {
            assert_eq!(h.join().unwrap(), cpu as u64);
        }
    }
}
