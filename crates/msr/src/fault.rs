//! Declarative fault plans for chaos testing the actuation path.
//!
//! [`crate::io::Fault`] arms exactly one failure mode at a time; real
//! deployments see richer patterns: a flaky `/dev/cpu/N/msr` that fails 1 %
//! of writes, a core that goes offline for two seconds mid-run, an energy
//! counter that stops advancing. A [`FaultPlan`] describes such a scenario
//! as a list of [`FaultRule`]s, each scoping *what* fails (access kind,
//! register, CPU range) and *when* (always, with a seeded probability, at
//! the Nth access, or over a window). Plans are fully deterministic given
//! their seed, so a chaos run is reproducible from the command line.
//!
//! The plan is compiled into a [`FaultInjector`], which the backends
//! consult on every access: [`crate::FakeMsr`] counts matching accesses
//! per rule, while clocked backends (the simulator) pass their tick so
//! `at=`/`window=` rules align with simulated time.

use dufp_types::{Error, Result};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// The kind of hardware access a rule can match.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultOp {
    /// MSR (or capper) reads.
    Read,
    /// MSR (or capper) writes.
    Write,
    /// Performance-counter sampling (the simulator's telemetry path).
    Sample,
    /// A whole-process crash at a scheduled tick. Crash rules are never
    /// consulted per access (so they do not perturb other rules' match
    /// counters); the runner polls [`FaultPlan::crash_tick`] instead and
    /// aborts the process there.
    Crash,
    /// Any hardware access kind (does not include [`FaultOp::Crash`]).
    Any,
}

/// When a structurally matching access actually fails.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultWhen {
    /// Every matching access fails.
    Always,
    /// Each matching access fails independently with this probability,
    /// drawn from the plan's seeded generator.
    Probability {
        /// Failure probability in `[0, 1]`.
        p: f64,
    },
    /// Exactly the access at this clock value fails (the backend's tick
    /// when it has a clock, the per-rule match index otherwise).
    At {
        /// Clock value of the single failing access.
        at: u64,
    },
    /// All matching accesses in `[from, from + count)` fail — a burst, or
    /// a "persistent for K ticks" outage.
    Window {
        /// First failing clock value.
        from: u64,
        /// Length of the failure window.
        count: u64,
    },
}

/// One scoped failure rule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultRule {
    /// Which access kind fails.
    pub op: FaultOp,
    /// Restrict to one register address (`None` = any register).
    #[serde(default)]
    pub register: Option<u32>,
    /// Restrict to an inclusive CPU range (`None` = any CPU). Socket-
    /// scoped faults are expressed as that socket's CPU range.
    #[serde(default)]
    pub cpus: Option<(usize, usize)>,
    /// The failure schedule.
    pub when: FaultWhen,
}

impl FaultRule {
    fn matches(&self, op: FaultOp, cpu: usize, register: u32) -> bool {
        let op_ok = matches!(self.op, FaultOp::Any) || self.op == op;
        let reg_ok = self.register.is_none_or(|r| r == register);
        let cpu_ok = self.cpus.is_none_or(|(lo, hi)| (lo..=hi).contains(&cpu));
        op_ok && reg_ok && cpu_ok
    }
}

/// A reproducible failure scenario: a seed plus scoped rules.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed for the probabilistic rules (`p=`): same seed, same failures.
    #[serde(default)]
    pub seed: u64,
    /// The rules; every structurally matching rule is evaluated and the
    /// access fails if any rule fires.
    #[serde(default)]
    pub rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// A plan with no rules (nothing ever fails).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Whether this plan can ever inject a fault.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// The earliest scheduled process crash (`crash,at=N` rules), if any.
    /// The runner checks this against its tick counter and aborts there.
    pub fn crash_tick(&self) -> Option<u64> {
        self.rules
            .iter()
            .filter_map(|r| match (r.op, r.when) {
                (FaultOp::Crash, FaultWhen::At { at }) => Some(at),
                _ => None,
            })
            .min()
    }

    /// Parses the compact command-line syntax:
    ///
    /// ```text
    /// seed=42;write,reg=cap,p=0.01;write,reg=cap,cpu=16-31,window=100+400
    /// ```
    ///
    /// Segments are separated by `;`. A `seed=N` segment sets the seed;
    /// every other segment is one rule of comma-separated items: an access
    /// kind (`read`/`write`/`sample`/`any`), an optional `reg=` (`cap`,
    /// `uncore`, `energy`, `dram-energy`, `perf` or a raw `0x..`/decimal
    /// address), an optional `cpu=N` or `cpu=A-B` range, and a schedule
    /// (`always`, `p=0.01`, `at=N`, `window=FROM+COUNT`; default `always`).
    pub fn parse(text: &str) -> Result<Self> {
        let mut plan = FaultPlan::default();
        for segment in text.split(';') {
            let segment = segment.trim();
            if segment.is_empty() {
                continue;
            }
            if let Some(seed) = segment.strip_prefix("seed=") {
                plan.seed = seed
                    .trim()
                    .parse()
                    .map_err(|_| Error::invalid("fault plan seed", seed.to_string()))?;
                continue;
            }
            plan.rules.push(Self::parse_rule(segment)?);
        }
        Ok(plan)
    }

    fn parse_rule(segment: &str) -> Result<FaultRule> {
        let bad = |detail: String| Error::invalid("fault plan rule", detail);
        let mut items = segment.split(',').map(str::trim);
        let op = match items.next() {
            Some("read") => FaultOp::Read,
            Some("write") => FaultOp::Write,
            Some("sample") => FaultOp::Sample,
            Some("crash") => FaultOp::Crash,
            Some("any") => FaultOp::Any,
            other => {
                return Err(bad(format!(
                    "rule must start with read|write|sample|crash|any, got {other:?}"
                )))
            }
        };
        let mut rule = FaultRule {
            op,
            register: None,
            cpus: None,
            when: FaultWhen::Always,
        };
        for item in items {
            if let Some(reg) = item.strip_prefix("reg=") {
                rule.register = Some(Self::parse_register(reg)?);
            } else if let Some(range) = item.strip_prefix("cpu=") {
                let (lo, hi) = match range.split_once('-') {
                    Some((lo, hi)) => (
                        lo.parse()
                            .map_err(|_| bad(format!("bad cpu range {range}")))?,
                        hi.parse()
                            .map_err(|_| bad(format!("bad cpu range {range}")))?,
                    ),
                    None => {
                        let cpu = range.parse().map_err(|_| bad(format!("bad cpu {range}")))?;
                        (cpu, cpu)
                    }
                };
                if lo > hi {
                    return Err(bad(format!("empty cpu range {range}")));
                }
                rule.cpus = Some((lo, hi));
            } else if let Some(p) = item.strip_prefix("p=") {
                let p: f64 = p.parse().map_err(|_| bad(format!("bad probability {p}")))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(bad(format!("probability {p} outside [0, 1]")));
                }
                rule.when = FaultWhen::Probability { p };
            } else if let Some(at) = item.strip_prefix("at=") {
                rule.when = FaultWhen::At {
                    at: at.parse().map_err(|_| bad(format!("bad at={at}")))?,
                };
            } else if let Some(window) = item.strip_prefix("window=") {
                let (from, count) = window
                    .split_once('+')
                    .ok_or_else(|| bad(format!("window wants FROM+COUNT, got {window}")))?;
                let count: u64 = count
                    .parse()
                    .map_err(|_| bad(format!("bad window length {count}")))?;
                if count == 0 {
                    return Err(bad("window length must be positive".into()));
                }
                rule.when = FaultWhen::Window {
                    from: from
                        .parse()
                        .map_err(|_| bad(format!("bad window start {from}")))?,
                    count,
                };
            } else if item == "always" {
                rule.when = FaultWhen::Always;
            } else {
                return Err(bad(format!("unknown item {item}")));
            }
        }
        if rule.op == FaultOp::Crash && !matches!(rule.when, FaultWhen::At { .. }) {
            return Err(bad("crash rules require an at=TICK schedule".into()));
        }
        Ok(rule)
    }

    fn parse_register(text: &str) -> Result<u32> {
        use crate::registers::*;
        Ok(match text {
            "cap" => MSR_PKG_POWER_LIMIT,
            "uncore" => MSR_UNCORE_RATIO_LIMIT,
            "energy" => MSR_PKG_ENERGY_STATUS,
            "dram-energy" => MSR_DRAM_ENERGY_STATUS,
            "perf" => IA32_PERF_CTL,
            raw => {
                let parsed = match raw.strip_prefix("0x") {
                    Some(hex) => u32::from_str_radix(hex, 16),
                    None => raw.parse(),
                };
                parsed.map_err(|_| Error::invalid("fault plan register", raw.to_string()))?
            }
        })
    }
}

/// Per-rule match counters plus the probabilistic draw state.
#[derive(Debug)]
struct InjectorState {
    /// SplitMix64 state for `Probability` rules.
    rng: u64,
    /// How many structurally matching accesses each rule has seen; stands
    /// in for the clock on backends without one.
    hits: Vec<u64>,
}

/// Serializable runtime state of a [`FaultInjector`] — the rng position
/// and per-rule match counters. Checkpointed so a resumed run's injected
/// faults continue exactly where the crashed run's left off.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InjectorSnapshot {
    /// SplitMix64 state.
    pub rng: u64,
    /// Per-rule match counters, in plan rule order.
    pub hits: Vec<u64>,
}

/// A compiled, thread-safe [`FaultPlan`] that backends consult per access.
#[derive(Debug)]
pub struct FaultInjector {
    rules: Vec<FaultRule>,
    state: Mutex<InjectorState>,
}

impl FaultInjector {
    /// Compiles a plan.
    pub fn new(plan: FaultPlan) -> Self {
        let hits = vec![0; plan.rules.len()];
        FaultInjector {
            rules: plan.rules,
            state: Mutex::new(InjectorState {
                // Offset so seed 0 still produces a scrambled stream.
                rng: plan.seed ^ 0x9E37_79B9_7F4A_7C15,
                hits,
            }),
        }
    }

    /// Captures the current runtime state (for checkpoints).
    pub fn snapshot(&self) -> InjectorSnapshot {
        let state = self.state.lock();
        InjectorSnapshot {
            rng: state.rng,
            hits: state.hits.clone(),
        }
    }

    /// Restores a checkpointed runtime state. The snapshot must come from
    /// an injector compiled from the same plan (same rule count).
    pub fn restore(&self, snap: &InjectorSnapshot) -> Result<()> {
        let mut state = self.state.lock();
        if snap.hits.len() != self.rules.len() {
            return Err(Error::invalid(
                "injector snapshot",
                format!(
                    "snapshot has {} rule counter(s), plan has {} rule(s)",
                    snap.hits.len(),
                    self.rules.len()
                ),
            ));
        }
        state.rng = snap.rng;
        state.hits = snap.hits.clone();
        Ok(())
    }

    /// Whether the given access should fail, using per-rule match counts
    /// as the clock (un-clocked backends like [`crate::FakeMsr`]).
    pub fn should_fail(&self, op: FaultOp, cpu: usize, register: u32) -> bool {
        self.should_fail_at(op, cpu, register, None)
    }

    /// Whether the given access should fail. `clock` is the backend's
    /// notion of time (e.g. the simulator tick); when `None`, each rule's
    /// own match counter is used instead.
    pub fn should_fail_at(
        &self,
        op: FaultOp,
        cpu: usize,
        register: u32,
        clock: Option<u64>,
    ) -> bool {
        if self.rules.is_empty() {
            return false;
        }
        let mut state = self.state.lock();
        let mut fail = false;
        for (idx, rule) in self.rules.iter().enumerate() {
            if !rule.matches(op, cpu, register) {
                continue;
            }
            let now = clock.unwrap_or(state.hits[idx]);
            state.hits[idx] += 1;
            fail |= match rule.when {
                FaultWhen::Always => true,
                FaultWhen::Probability { p } => next_uniform(&mut state.rng) < p,
                FaultWhen::At { at } => now == at,
                FaultWhen::Window { from, count } => now >= from && now - from < count,
            };
        }
        fail
    }

    /// Convenience: `should_fail` wrapped into the standard error for a
    /// failed MSR access.
    pub fn check_msr(&self, op: FaultOp, cpu: usize, register: u32) -> Result<()> {
        if self.should_fail(op, cpu, register) {
            Err(Error::msr(
                register,
                format!("injected {op:?} fault (plan)"),
            ))
        } else {
            Ok(())
        }
    }
}

/// One SplitMix64 step mapped to a uniform draw in `[0, 1)`.
fn next_uniform(state: &mut u64) -> f64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registers::{MSR_PKG_POWER_LIMIT, MSR_UNCORE_RATIO_LIMIT};

    #[test]
    fn empty_plan_never_fails() {
        let inj = FaultInjector::new(FaultPlan::none());
        for _ in 0..100 {
            assert!(!inj.should_fail(FaultOp::Write, 0, MSR_PKG_POWER_LIMIT));
        }
    }

    #[test]
    fn always_rule_scopes_to_op_register_and_cpu() {
        let plan = FaultPlan {
            seed: 0,
            rules: vec![FaultRule {
                op: FaultOp::Write,
                register: Some(MSR_PKG_POWER_LIMIT),
                cpus: Some((16, 31)),
                when: FaultWhen::Always,
            }],
        };
        let inj = FaultInjector::new(plan);
        assert!(inj.should_fail(FaultOp::Write, 16, MSR_PKG_POWER_LIMIT));
        assert!(inj.should_fail(FaultOp::Write, 31, MSR_PKG_POWER_LIMIT));
        assert!(
            !inj.should_fail(FaultOp::Write, 0, MSR_PKG_POWER_LIMIT),
            "cpu out of range"
        );
        assert!(
            !inj.should_fail(FaultOp::Read, 16, MSR_PKG_POWER_LIMIT),
            "reads unaffected"
        );
        assert!(
            !inj.should_fail(FaultOp::Write, 16, MSR_UNCORE_RATIO_LIMIT),
            "other registers unaffected"
        );
    }

    #[test]
    fn window_counts_matching_accesses_when_unclocked() {
        let plan = FaultPlan {
            seed: 0,
            rules: vec![FaultRule {
                op: FaultOp::Write,
                register: None,
                cpus: None,
                when: FaultWhen::Window { from: 2, count: 3 },
            }],
        };
        let inj = FaultInjector::new(plan);
        let outcomes: Vec<bool> = (0..8)
            .map(|_| inj.should_fail(FaultOp::Write, 0, 0x610))
            .collect();
        assert_eq!(
            outcomes,
            vec![false, false, true, true, true, false, false, false]
        );
        // Non-matching reads do not advance the rule's counter.
        assert!(!inj.should_fail(FaultOp::Read, 0, 0x610));
    }

    #[test]
    fn window_follows_external_clock_when_given() {
        let plan = FaultPlan {
            seed: 0,
            rules: vec![FaultRule {
                op: FaultOp::Any,
                register: None,
                cpus: None,
                when: FaultWhen::Window {
                    from: 100,
                    count: 10,
                },
            }],
        };
        let inj = FaultInjector::new(plan);
        assert!(!inj.should_fail_at(FaultOp::Write, 0, 0x610, Some(99)));
        assert!(inj.should_fail_at(FaultOp::Write, 0, 0x610, Some(100)));
        assert!(inj.should_fail_at(FaultOp::Write, 0, 0x610, Some(109)));
        assert!(!inj.should_fail_at(FaultOp::Write, 0, 0x610, Some(110)));
    }

    #[test]
    fn probability_is_deterministic_per_seed_and_roughly_calibrated() {
        let plan = |seed| FaultPlan {
            seed,
            rules: vec![FaultRule {
                op: FaultOp::Any,
                register: None,
                cpus: None,
                when: FaultWhen::Probability { p: 0.25 },
            }],
        };
        let draw = |seed| -> Vec<bool> {
            let inj = FaultInjector::new(plan(seed));
            (0..4000)
                .map(|_| inj.should_fail(FaultOp::Read, 0, 0))
                .collect()
        };
        let a = draw(7);
        assert_eq!(a, draw(7), "same seed, same failures");
        assert_ne!(a, draw(8), "different seed, different failures");
        let rate = a.iter().filter(|&&f| f).count() as f64 / a.len() as f64;
        assert!((rate - 0.25).abs() < 0.03, "rate {rate}");
    }

    #[test]
    fn parse_round_trips_the_readme_example() {
        let plan =
            FaultPlan::parse("seed=42;write,reg=cap,p=0.01;write,reg=cap,cpu=16-31,window=100+400")
                .unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.rules.len(), 2);
        assert_eq!(plan.rules[0].register, Some(MSR_PKG_POWER_LIMIT));
        assert_eq!(plan.rules[0].when, FaultWhen::Probability { p: 0.01 });
        assert_eq!(plan.rules[1].cpus, Some((16, 31)));
        assert_eq!(
            plan.rules[1].when,
            FaultWhen::Window {
                from: 100,
                count: 400
            }
        );
        // And through serde, for --fault-plan FILE.json.
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
    }

    #[test]
    fn parse_accepts_registers_names_hex_and_single_cpu() {
        let plan = FaultPlan::parse("read,reg=0x611,at=5;sample,cpu=3;any,reg=1553").unwrap();
        assert_eq!(plan.rules[0].register, Some(0x611));
        assert_eq!(plan.rules[0].when, FaultWhen::At { at: 5 });
        assert_eq!(plan.rules[1].op, FaultOp::Sample);
        assert_eq!(plan.rules[1].cpus, Some((3, 3)));
        assert_eq!(plan.rules[1].when, FaultWhen::Always);
        assert_eq!(plan.rules[2].register, Some(1553));
    }

    #[test]
    fn parse_rejects_malformed_plans() {
        for bad in [
            "frob,reg=cap",
            "write,reg=nope",
            "write,p=1.5",
            "write,window=5",
            "write,window=5+0",
            "write,cpu=9-3",
            "seed=abc",
            "write,wat=1",
            "crash",
            "crash,p=0.5",
            "crash,window=1+5",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad} should not parse");
        }
    }

    #[test]
    fn crash_rules_report_the_earliest_tick_and_match_no_access() {
        let plan = FaultPlan::parse("crash,at=350;crash,at=120;write,reg=cap,p=0.5").unwrap();
        assert_eq!(plan.crash_tick(), Some(120));
        assert_eq!(FaultPlan::parse("write,always").unwrap().crash_tick(), None);
        // A crash rule's counter never advances: hardware accesses only
        // consult read/write/sample/any rules.
        let crash_only = FaultPlan::parse("crash,at=0").unwrap();
        let inj = FaultInjector::new(crash_only);
        for _ in 0..10 {
            assert!(!inj.should_fail(FaultOp::Write, 0, MSR_PKG_POWER_LIMIT));
        }
        assert_eq!(inj.snapshot().hits, vec![0]);
    }

    #[test]
    fn snapshot_restore_resumes_the_exact_fault_stream() {
        let plan = FaultPlan::parse("seed=9;any,p=0.3;write,window=2+4").unwrap();
        let inj = FaultInjector::new(plan.clone());
        for _ in 0..50 {
            inj.should_fail(FaultOp::Write, 3, 0x610);
        }
        let snap = inj.snapshot();
        let tail: Vec<bool> = (0..50)
            .map(|_| inj.should_fail(FaultOp::Write, 3, 0x610))
            .collect();
        // A fresh injector restored from the snapshot continues identically.
        let resumed = FaultInjector::new(plan);
        resumed.restore(&snap).unwrap();
        let resumed_tail: Vec<bool> = (0..50)
            .map(|_| resumed.should_fail(FaultOp::Write, 3, 0x610))
            .collect();
        assert_eq!(tail, resumed_tail);
    }

    #[test]
    fn restore_rejects_mismatched_rule_counts() {
        let inj = FaultInjector::new(FaultPlan::parse("write,always").unwrap());
        let bad = InjectorSnapshot {
            rng: 0,
            hits: vec![0, 0],
        };
        assert!(inj.restore(&bad).is_err());
    }
}
