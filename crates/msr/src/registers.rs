//! Register addresses and bit-field codecs.
//!
//! Layouts follow the Intel SDM vol. 4 definitions for Skylake-SP. Every
//! codec is a pure value type with `encode`/`decode` round-trip tests and
//! property tests, so the simulator's MSR backend and the real Linux backend
//! interpret words identically.

use dufp_types::{Error, Hertz, Result, Seconds, Watts};

/// `MSR_RAPL_POWER_UNIT` — scaling factors for all RAPL registers.
pub const MSR_RAPL_POWER_UNIT: u32 = 0x606;
/// `MSR_PKG_POWER_LIMIT` — package PL1/PL2 power limits.
pub const MSR_PKG_POWER_LIMIT: u32 = 0x610;
/// `MSR_PKG_ENERGY_STATUS` — 32-bit package energy accumulator.
pub const MSR_PKG_ENERGY_STATUS: u32 = 0x611;
/// `MSR_PKG_POWER_INFO` — TDP and min/max power of the package.
pub const MSR_PKG_POWER_INFO: u32 = 0x614;
/// `MSR_DRAM_POWER_LIMIT` — DRAM power limit (not functional on the paper's
/// Xeon Gold 6130; see §II-B).
pub const MSR_DRAM_POWER_LIMIT: u32 = 0x618;
/// `MSR_DRAM_ENERGY_STATUS` — 32-bit DRAM energy accumulator.
pub const MSR_DRAM_ENERGY_STATUS: u32 = 0x619;
/// `MSR_UNCORE_RATIO_LIMIT` — min/max uncore ratio in 100 MHz units.
pub const MSR_UNCORE_RATIO_LIMIT: u32 = 0x620;
/// `MSR_PLATFORM_INFO` — maximum non-turbo ratio, etc.
pub const MSR_PLATFORM_INFO: u32 = 0xCE;
/// `IA32_PERF_CTL` — P-state request: bits 15:8 hold the target ratio in
/// 100 MHz units (the OS/driver interface DUFP-F uses to cap core
/// frequency directly, per the paper's §VII future work).
pub const IA32_PERF_CTL: u32 = 0x199;
/// `IA32_MPERF` — TSC-rate reference cycle counter.
pub const IA32_MPERF: u32 = 0xE7;
/// `IA32_APERF` — actual-frequency cycle counter.
pub const IA32_APERF: u32 = 0xE8;

/// Raw RAPL power-unit register on Skylake-SP: power unit = 1/8 W
/// (field 3), energy unit = 61 µJ (field 14), time unit = 976.5 µs
/// (field 10).
pub const SKYLAKE_SP_POWER_UNIT_RAW: u64 = 0x000A_0E03;

/// Decoded `MSR_RAPL_POWER_UNIT` scaling factors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RaplPowerUnit {
    /// Watts represented by one power-field unit (`1 / 2^PU`).
    pub power_unit: Watts,
    /// Joules represented by one energy-counter unit (`1 / 2^ESU`).
    pub energy_unit: f64,
    /// Seconds represented by one time-window unit (`1 / 2^TU`).
    pub time_unit: Seconds,
}

impl RaplPowerUnit {
    /// Decodes the unit register.
    pub fn decode(raw: u64) -> Self {
        let pu = (raw & 0xF) as u32;
        let esu = ((raw >> 8) & 0x1F) as u32;
        let tu = ((raw >> 16) & 0xF) as u32;
        RaplPowerUnit {
            power_unit: Watts(1.0 / f64::from(1u64.wrapping_shl(pu) as u32)),
            energy_unit: 1.0 / f64::from(1u64.wrapping_shl(esu) as u32),
            time_unit: Seconds(1.0 / f64::from(1u64.wrapping_shl(tu) as u32)),
        }
    }

    /// The Skylake-SP factory values.
    pub fn skylake_sp() -> Self {
        Self::decode(SKYLAKE_SP_POWER_UNIT_RAW)
    }
}

/// One RAPL power-limit constraint (PL1 "long term" or PL2 "short term").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerLimit {
    /// The power limit itself.
    pub power: Watts,
    /// Whether the limit is enforced.
    pub enabled: bool,
    /// Whether frequency may be clamped below the OS request to honor it.
    pub clamp: bool,
    /// Averaging window over which the limit is enforced.
    pub window: Seconds,
}

impl PowerLimit {
    /// Packs this constraint into its 24-bit register slice using `units`.
    ///
    /// Field layout (relative to the slice): bits 14:0 power, 15 enable,
    /// 16 clamp, 21:17 window mantissa `y`, 23:22 window fraction `z`,
    /// window = `2^y · (1 + z/4) · time_unit`.
    pub fn encode(&self, units: &RaplPowerUnit) -> Result<u64> {
        if !self.power.is_finite() || self.power.value() < 0.0 {
            return Err(Error::invalid("power limit", format!("{:?}", self.power)));
        }
        let ticks = (self.power.value() / units.power_unit.value()).round();
        if ticks > 0x7FFF as f64 {
            return Err(Error::invalid(
                "power limit",
                format!("{} exceeds the 15-bit field", self.power),
            ));
        }
        let (y, z) = encode_time_window(self.window, units.time_unit)?;
        let mut v = ticks as u64 & 0x7FFF;
        if self.enabled {
            v |= 1 << 15;
        }
        if self.clamp {
            v |= 1 << 16;
        }
        v |= u64::from(y & 0x1F) << 17;
        v |= u64::from(z & 0x3) << 22;
        Ok(v)
    }

    /// Unpacks a 24-bit register slice.
    pub fn decode(slice: u64, units: &RaplPowerUnit) -> Self {
        let ticks = (slice & 0x7FFF) as f64;
        let y = ((slice >> 17) & 0x1F) as u32;
        let z = ((slice >> 22) & 0x3) as f64;
        PowerLimit {
            power: Watts(ticks * units.power_unit.value()),
            enabled: slice & (1 << 15) != 0,
            clamp: slice & (1 << 16) != 0,
            window: Seconds((1u64 << y.min(31)) as f64 * (1.0 + z / 4.0) * units.time_unit.value()),
        }
    }
}

/// Finds the `(y, z)` pair whose `2^y · (1 + z/4) · tu` is closest to
/// `window`.
fn encode_time_window(window: Seconds, time_unit: Seconds) -> Result<(u8, u8)> {
    if !window.is_finite() || window.value() < 0.0 {
        return Err(Error::invalid("time window", format!("{window:?}")));
    }
    let target = window.value() / time_unit.value();
    let mut best = (0u8, 0u8);
    let mut best_err = f64::INFINITY;
    for y in 0u8..32 {
        for z in 0u8..4 {
            let w = (1u64 << y) as f64 * (1.0 + f64::from(z) / 4.0);
            let err = (w - target).abs();
            if err < best_err {
                best_err = err;
                best = (y, z);
            }
        }
    }
    Ok(best)
}

/// Decoded `MSR_PKG_POWER_LIMIT`: both constraints plus the lock bit.
///
/// ```
/// use dufp_msr::registers::{PkgPowerLimit, RaplPowerUnit};
/// use dufp_types::{Watts, Seconds};
///
/// let units = RaplPowerUnit::skylake_sp();
/// let reg = PkgPowerLimit::defaults(Watts(125.0), Seconds(1.0), Watts(150.0), Seconds(0.01));
/// let raw = reg.encode(&units).unwrap();           // the 64-bit MSR word
/// let back = PkgPowerLimit::decode(raw, &units);
/// assert_eq!(back.pl1.power, Watts(125.0));
/// assert_eq!(back.pl2.power, Watts(150.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PkgPowerLimit {
    /// Long-term constraint (PL1). Defaults to TDP.
    pub pl1: PowerLimit,
    /// Short-term constraint (PL2). Defaults to 1.2 × TDP on most parts.
    pub pl2: PowerLimit,
    /// When set, the register is locked until reset and writes fault.
    pub lock: bool,
}

impl PkgPowerLimit {
    /// Packs the full 64-bit register.
    pub fn encode(&self, units: &RaplPowerUnit) -> Result<u64> {
        let lo = self.pl1.encode(units)?;
        let hi = self.pl2.encode(units)?;
        let mut v = lo | (hi << 32);
        if self.lock {
            v |= 1 << 63;
        }
        Ok(v)
    }

    /// Unpacks the full 64-bit register.
    pub fn decode(raw: u64, units: &RaplPowerUnit) -> Self {
        PkgPowerLimit {
            pl1: PowerLimit::decode(raw & 0xFF_FFFF, units),
            pl2: PowerLimit::decode((raw >> 32) & 0xFF_FFFF, units),
            lock: raw >> 63 != 0,
        }
    }

    /// The default register content for an architecture: PL1 = `pl1` over
    /// `pl1_window`, PL2 = `pl2` over `pl2_window`, both enabled and
    /// clamped, unlocked.
    pub fn defaults(pl1: Watts, pl1_window: Seconds, pl2: Watts, pl2_window: Seconds) -> Self {
        PkgPowerLimit {
            pl1: PowerLimit {
                power: pl1,
                enabled: true,
                clamp: true,
                window: pl1_window,
            },
            pl2: PowerLimit {
                power: pl2,
                enabled: true,
                clamp: true,
                window: pl2_window,
            },
            lock: false,
        }
    }
}

/// Decoded `IA32_PERF_CTL` (the P-state request field only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PerfCtl {
    /// Requested maximum ratio, in 100 MHz units (bits 15:8).
    pub target_ratio: u8,
}

impl PerfCtl {
    /// Packs the register.
    pub fn encode(&self) -> u64 {
        u64::from(self.target_ratio) << 8
    }

    /// Unpacks the register.
    pub fn decode(raw: u64) -> Self {
        PerfCtl {
            target_ratio: ((raw >> 8) & 0xFF) as u8,
        }
    }

    /// Requests at most `freq`.
    pub fn capped_at(freq: Hertz) -> Self {
        PerfCtl {
            target_ratio: freq.as_ratio_100mhz(),
        }
    }

    /// The requested frequency.
    pub fn freq(&self) -> Hertz {
        Hertz::from_ratio_100mhz(self.target_ratio)
    }
}

/// Decoded `MSR_UNCORE_RATIO_LIMIT`.
///
/// The hardware's uncore frequency scaling (UFS) picks a frequency within
/// `[min_ratio, max_ratio]` × 100 MHz; DUF pins both bounds to the same
/// value to force a frequency.
///
/// ```
/// use dufp_msr::registers::UncoreRatioLimit;
/// use dufp_types::Hertz;
///
/// let pinned = UncoreRatioLimit::pinned(Hertz::from_ghz(1.8));
/// assert_eq!(pinned.encode(), 0x1212);
/// assert_eq!(pinned.band(), (Hertz::from_ghz(1.8), Hertz::from_ghz(1.8)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UncoreRatioLimit {
    /// Maximum allowed ratio (bits 6:0), in 100 MHz units.
    pub max_ratio: u8,
    /// Minimum allowed ratio (bits 14:8), in 100 MHz units.
    pub min_ratio: u8,
}

impl UncoreRatioLimit {
    /// Packs the register.
    pub fn encode(&self) -> u64 {
        u64::from(self.max_ratio & 0x7F) | (u64::from(self.min_ratio & 0x7F) << 8)
    }

    /// Unpacks the register.
    pub fn decode(raw: u64) -> Self {
        UncoreRatioLimit {
            max_ratio: (raw & 0x7F) as u8,
            min_ratio: ((raw >> 8) & 0x7F) as u8,
        }
    }

    /// Pins both bounds to `freq` (DUF's actuation).
    pub fn pinned(freq: Hertz) -> Self {
        let r = freq.as_ratio_100mhz();
        UncoreRatioLimit {
            max_ratio: r,
            min_ratio: r,
        }
    }

    /// The frequency band `[min, max]` this register allows.
    pub fn band(&self) -> (Hertz, Hertz) {
        (
            Hertz::from_ratio_100mhz(self.min_ratio),
            Hertz::from_ratio_100mhz(self.max_ratio),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn skylake_units_decode() {
        let u = RaplPowerUnit::skylake_sp();
        assert_eq!(u.power_unit, Watts(0.125));
        assert!((u.energy_unit - 6.103515625e-5).abs() < 1e-12);
        assert!((u.time_unit.value() - 9.765625e-4).abs() < 1e-12);
    }

    #[test]
    fn pinned_uncore_round_trip() {
        let r = UncoreRatioLimit::pinned(Hertz::from_ghz(1.8));
        assert_eq!(r.max_ratio, 18);
        assert_eq!(r.min_ratio, 18);
        let raw = r.encode();
        assert_eq!(raw, 0x1212);
        assert_eq!(UncoreRatioLimit::decode(raw), r);
        let (lo, hi) = r.band();
        assert_eq!(lo, Hertz::from_ghz(1.8));
        assert_eq!(hi, Hertz::from_ghz(1.8));
    }

    #[test]
    fn pkg_power_limit_yeti_defaults_round_trip() {
        let units = RaplPowerUnit::skylake_sp();
        let reg = PkgPowerLimit::defaults(Watts(125.0), Seconds(1.0), Watts(150.0), Seconds(0.01));
        let raw = reg.encode(&units).unwrap();
        let back = PkgPowerLimit::decode(raw, &units);
        assert_eq!(back.pl1.power, Watts(125.0));
        assert_eq!(back.pl2.power, Watts(150.0));
        assert!(back.pl1.enabled && back.pl1.clamp);
        assert!(back.pl2.enabled && back.pl2.clamp);
        assert!(!back.lock);
        // The 1 s PL1 window must survive quantization closely.
        assert!((back.pl1.window.value() - 1.0).abs() < 0.05);
        assert!((back.pl2.window.value() - 0.01).abs() < 0.005);
    }

    #[test]
    fn lock_bit_is_bit_63() {
        let units = RaplPowerUnit::skylake_sp();
        let mut reg =
            PkgPowerLimit::defaults(Watts(125.0), Seconds(1.0), Watts(150.0), Seconds(0.01));
        reg.lock = true;
        let raw = reg.encode(&units).unwrap();
        assert_eq!(raw >> 63, 1);
        assert!(PkgPowerLimit::decode(raw, &units).lock);
    }

    #[test]
    fn power_field_saturates_with_error() {
        let units = RaplPowerUnit::skylake_sp();
        let pl = PowerLimit {
            power: Watts(1e6),
            enabled: true,
            clamp: false,
            window: Seconds(1.0),
        };
        assert!(pl.encode(&units).is_err());
    }

    #[test]
    fn negative_power_rejected() {
        let units = RaplPowerUnit::skylake_sp();
        let pl = PowerLimit {
            power: Watts(-1.0),
            enabled: false,
            clamp: false,
            window: Seconds(1.0),
        };
        assert!(pl.encode(&units).is_err());
    }

    #[test]
    fn window_encoding_handles_zero() {
        let (y, z) = encode_time_window(Seconds(0.0), Seconds(9.765625e-4)).unwrap();
        assert_eq!((y, z), (0, 0));
    }

    #[test]
    fn perf_ctl_round_trips() {
        let p = PerfCtl::capped_at(Hertz::from_ghz(2.2));
        assert_eq!(p.target_ratio, 22);
        assert_eq!(p.encode(), 22 << 8);
        assert_eq!(PerfCtl::decode(p.encode()), p);
        assert_eq!(p.freq(), Hertz::from_ghz(2.2));
    }

    proptest! {
        #[test]
        fn perf_ctl_any_ratio_round_trips(r in 0u8..=255) {
            let p = PerfCtl { target_ratio: r };
            prop_assert_eq!(PerfCtl::decode(p.encode()), p);
        }

        #[test]
        fn uncore_ratio_round_trips(max in 0u8..0x80, min in 0u8..0x80) {
            let r = UncoreRatioLimit { max_ratio: max, min_ratio: min };
            prop_assert_eq!(UncoreRatioLimit::decode(r.encode()), r);
        }

        #[test]
        fn power_limit_round_trips_within_one_tick(
            watts in 0.0f64..4000.0,
            window_ms in 1.0f64..10_000.0,
            enabled: bool,
            clamp: bool,
        ) {
            let units = RaplPowerUnit::skylake_sp();
            let pl = PowerLimit {
                power: Watts(watts),
                enabled,
                clamp,
                window: Seconds(window_ms / 1e3),
            };
            let raw = pl.encode(&units).unwrap();
            prop_assert_eq!(raw >> 24, 0, "slice must fit in 24 bits");
            let back = PowerLimit::decode(raw, &units);
            prop_assert!((back.power.value() - watts).abs() <= units.power_unit.value() / 2.0 + 1e-9);
            prop_assert_eq!(back.enabled, enabled);
            prop_assert_eq!(back.clamp, clamp);
            // Window quantization error is bounded by 1/8 relative (z step)
            // plus half a time unit.
            let w = window_ms / 1e3;
            prop_assert!((back.window.value() - w).abs() <= 0.125 * w + units.time_unit.value());
        }

        #[test]
        fn pkg_encode_is_stable(raw in any::<u64>()) {
            // decode → encode → decode must be a fixpoint (idempotent codec).
            let units = RaplPowerUnit::skylake_sp();
            let once = PkgPowerLimit::decode(raw, &units);
            if let Ok(re) = once.encode(&units) {
                let twice = PkgPowerLimit::decode(re, &units);
                prop_assert_eq!(once, twice);
            }
        }
    }
}
