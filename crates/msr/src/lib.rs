//! Model-specific register (MSR) access for the DUFP suite.
//!
//! The paper's tool drives two hardware knobs through MSRs on Skylake-SP:
//!
//! * the **uncore frequency** via `MSR_UNCORE_RATIO_LIMIT` (`0x620`), and
//! * the **RAPL package power limit** via `MSR_PKG_POWER_LIMIT` (`0x610`),
//!   with unit scaling factors from `MSR_RAPL_POWER_UNIT` (`0x606`) and the
//!   energy accumulators `MSR_PKG_ENERGY_STATUS` (`0x611`) /
//!   `MSR_DRAM_ENERGY_STATUS` (`0x619`).
//!
//! This crate provides:
//!
//! * [`registers`] — register addresses and **bit-exact** encode/decode for
//!   each register's fields (including RAPL's `2^y · (1 + z/4)` time-window
//!   encoding),
//! * [`io`] — the [`io::MsrIo`] backend trait, an in-memory fake with
//!   failure injection for tests and the simulator,
//! * [`fault`] — seeded, declarative [`fault::FaultPlan`]s for reproducible
//!   chaos runs against the fake backends, and
//! * [`linux`] — the real `/dev/cpu/N/msr` backend (Linux only).

#![warn(missing_docs)]

pub mod fault;
pub mod io;
#[cfg(target_os = "linux")]
pub mod linux;
pub mod registers;

pub use fault::{FaultInjector, FaultOp, FaultPlan, FaultRule, FaultWhen, InjectorSnapshot};
pub use io::{FakeMsr, MsrIo};
pub use registers::IA32_PERF_CTL;
pub use registers::{
    PerfCtl, PkgPowerLimit, PowerLimit, RaplPowerUnit, UncoreRatioLimit, MSR_DRAM_ENERGY_STATUS,
    MSR_DRAM_POWER_LIMIT, MSR_PKG_ENERGY_STATUS, MSR_PKG_POWER_INFO, MSR_PKG_POWER_LIMIT,
    MSR_PLATFORM_INFO, MSR_RAPL_POWER_UNIT, MSR_UNCORE_RATIO_LIMIT,
};
