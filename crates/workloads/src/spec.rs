//! Declarative phase specifications and their materialization.
//!
//! Application authors describe phases in *behavioural* terms — operational
//! intensity, whether the phase is memory- or compute-bound at the default
//! operating point, and how long it runs there. Materialization converts
//! that into the roofline quantities the simulator executes, for a concrete
//! machine (core count, max frequency, peak bandwidth).

use dufp_model::perf::PhaseRates;
use dufp_types::{ArchSpec, BytesPerSec, Error, Hertz, Result, Seconds};
use serde::{Deserialize, Serialize};

/// Whether a phase saturates memory or compute at the default operating
/// point, and by how much.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Boundness {
    /// The phase saturates achievable bandwidth; core compute capability
    /// exceeds what the traffic needs by `headroom` (> 1). A headroom just
    /// above 1 makes the phase sensitive to *any* core throttling (MG);
    /// a large headroom makes core frequency irrelevant (CG's prologue).
    MemoryBound {
        /// Compute-capability surplus factor, must be > 1.
        headroom: f64,
    },
    /// The phase is limited by core throughput; at the default operating
    /// point it consumes `mem_frac` (< 1) of peak bandwidth.
    ComputeBound {
        /// Fraction of peak bandwidth demanded, in `(0, 1)`.
        mem_frac: f64,
    },
}

/// Declarative description of one phase.
///
/// ```
/// use dufp_workloads::{Boundness, MaterializeCtx, PhaseSpec, Workload};
/// use dufp_types::ArchSpec;
///
/// let ctx = MaterializeCtx::from_arch(&ArchSpec::yeti());
/// let spec = PhaseSpec {
///     name: "stream_like".into(),
///     seconds_at_default: 5.0,
///     oi: 0.06,
///     boundness: Boundness::MemoryBound { headroom: 1.5 },
///     core_util: 0.45,
///     overlap_penalty: 0.0,
/// };
/// let w = Workload::from_specs("demo", &[spec], &ctx).unwrap();
/// assert!((w.nominal_duration(&ctx).value() - 5.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseSpec {
    /// Region name, e.g. `"conj_grad"` or `"neighbor_rebuild"`.
    pub name: String,
    /// Duration of the phase when run at the default configuration.
    pub seconds_at_default: f64,
    /// Operational intensity (FLOP per byte) the counters will observe.
    pub oi: f64,
    /// Boundness at the default operating point.
    pub boundness: Boundness,
    /// Core issue-slot utilization, feeds the power model.
    pub core_util: f64,
    /// Roofline overlap penalty (0 = perfect compute/memory overlap).
    pub overlap_penalty: f64,
}

/// Machine context needed to materialize specs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MaterializeCtx {
    /// Cores per socket contributing compute capability.
    pub cores: u16,
    /// Maximum (all-core turbo) core frequency.
    pub core_freq_max: Hertz,
    /// Peak achievable memory bandwidth per socket.
    pub peak_bandwidth: BytesPerSec,
    /// Peak useful FLOP/s per socket (for activity estimation in capture).
    pub peak_flops: dufp_types::FlopsPerSec,
}

impl MaterializeCtx {
    /// Context for one socket of the given architecture.
    pub fn from_arch(arch: &ArchSpec) -> Self {
        MaterializeCtx {
            cores: arch.cores_per_socket,
            core_freq_max: arch.core_freq_max,
            peak_bandwidth: arch.peak_bandwidth,
            peak_flops: arch.peak_flops,
        }
    }
}

/// An executable phase: materialized roofline terms plus total work.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Phase {
    /// Region name.
    pub name: String,
    /// Roofline demands per work unit.
    pub rates: PhaseRates,
    /// Total abstract work units in the phase.
    pub work_units: f64,
    /// Core issue-slot utilization for the power model.
    pub core_util: f64,
}

impl PhaseSpec {
    /// Materializes the spec for `ctx`.
    ///
    /// Work units are normalized so that one unit moves one byte; the phase
    /// then carries `oi` FLOPs per unit. `work_units` is chosen so the
    /// phase lasts [`PhaseSpec::seconds_at_default`] at the default
    /// operating point (max core frequency, peak bandwidth, no cap).
    pub fn materialize(&self, ctx: &MaterializeCtx) -> Result<Phase> {
        if self.oi <= 0.0 || !self.oi.is_finite() {
            return Err(Error::invalid("oi", format!("{}", self.oi)));
        }
        if self.seconds_at_default <= 0.0 {
            return Err(Error::invalid(
                "seconds_at_default",
                format!("{}", self.seconds_at_default),
            ));
        }
        if !(0.0..=1.0).contains(&self.core_util) {
            return Err(Error::invalid("core_util", format!("{}", self.core_util)));
        }
        let n = f64::from(ctx.cores);
        let f = ctx.core_freq_max.value();
        let peak = ctx.peak_bandwidth.value();
        let alpha = self.overlap_penalty.clamp(0.0, 1.0);

        // bytes_per_unit = 1, flops_per_unit = oi; pick the per-core-cycle
        // FLOP capability so the requested boundness holds at default.
        let (fpc, rate_default) = match self.boundness {
            Boundness::MemoryBound { headroom } => {
                if headroom <= 1.0 {
                    return Err(Error::invalid(
                        "headroom",
                        format!("{headroom} must be > 1"),
                    ));
                }
                let fpc = headroom * self.oi * peak / (n * f);
                // T_m = 1/peak, T_c = 1/(headroom·peak)
                let rate = 1.0 / (1.0 / peak + alpha / (headroom * peak));
                (fpc, rate)
            }
            Boundness::ComputeBound { mem_frac } => {
                if !(0.0..1.0).contains(&mem_frac) || mem_frac == 0.0 {
                    return Err(Error::invalid(
                        "mem_frac",
                        format!("{mem_frac} must be in (0,1)"),
                    ));
                }
                let fpc = self.oi * mem_frac * peak / (n * f);
                // T_c = 1/(mem_frac·peak), T_m = 1/peak
                let rate = 1.0 / (1.0 / (mem_frac * peak) + alpha / peak);
                (fpc, rate)
            }
        };

        Ok(Phase {
            name: self.name.clone(),
            rates: PhaseRates {
                flops_per_unit: self.oi,
                bytes_per_unit: 1.0,
                flops_per_core_cycle: fpc,
                overlap_penalty: alpha,
            },
            work_units: self.seconds_at_default * rate_default,
            core_util: self.core_util,
        })
    }
}

/// A full application: an ordered sequence of phases.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// Application name as used in the paper's figures.
    pub name: String,
    /// Phases, executed in order.
    pub phases: Vec<Phase>,
}

impl Workload {
    /// Builds a workload by materializing `specs`, unrolling any repeats
    /// the caller already expanded.
    pub fn from_specs(
        name: impl Into<String>,
        specs: &[PhaseSpec],
        ctx: &MaterializeCtx,
    ) -> Result<Self> {
        let phases = specs
            .iter()
            .map(|s| s.materialize(ctx))
            .collect::<Result<Vec<_>>>()?;
        if phases.is_empty() {
            return Err(Error::Precondition(
                "workload needs at least one phase".into(),
            ));
        }
        Ok(Workload {
            name: name.into(),
            phases,
        })
    }

    /// Sum of the phases' design-point durations.
    pub fn nominal_duration(&self, ctx: &MaterializeCtx) -> Seconds {
        // Recompute from the materialized terms: work / rate_at_default.
        let m = dufp_model::RooflineModel { cores: ctx.cores };
        Seconds(
            self.phases
                .iter()
                .map(|p| {
                    let pr = m.progress(&p.rates, ctx.core_freq_max, ctx.peak_bandwidth);
                    p.work_units / pr.units_per_sec
                })
                .sum(),
        )
    }

    /// Total floating-point operations in the workload.
    pub fn total_flops(&self) -> f64 {
        self.phases
            .iter()
            .map(|p| p.work_units * p.rates.flops_per_unit)
            .sum()
    }

    /// Total bytes of memory traffic in the workload.
    pub fn total_bytes(&self) -> f64 {
        self.phases
            .iter()
            .map(|p| p.work_units * p.rates.bytes_per_unit)
            .sum()
    }

    /// An intensity-scaled copy of the phase table: every phase carries
    /// `factor` times the work units, so the whole table offers `factor`
    /// times the FLOPs and bytes at unchanged per-unit roofline rates.
    ///
    /// This is how the scenario layer expresses tenant weight — a
    /// half-weight co-tenant runs the same phase *shape* but issues half
    /// the work per phase cycle. `factor` must be finite and positive.
    pub fn scaled(&self, factor: f64) -> Result<Self> {
        if !factor.is_finite() || factor <= 0.0 {
            return Err(Error::invalid("scale_factor", format!("{factor}")));
        }
        let mut scaled = self.clone();
        for p in &mut scaled.phases {
            p.work_units *= factor;
        }
        Ok(scaled)
    }
}

/// Repeats a slice of specs `count` times (loop unrolling helper).
pub fn repeat(body: &[PhaseSpec], count: usize) -> Vec<PhaseSpec> {
    let mut out = Vec::with_capacity(body.len() * count);
    for _ in 0..count {
        out.extend_from_slice(body);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dufp_model::RooflineModel;

    fn ctx() -> MaterializeCtx {
        MaterializeCtx::from_arch(&ArchSpec::yeti())
    }

    fn mem_spec() -> PhaseSpec {
        PhaseSpec {
            name: "mem".into(),
            seconds_at_default: 10.0,
            oi: 0.1,
            boundness: Boundness::MemoryBound { headroom: 1.5 },
            core_util: 0.5,
            overlap_penalty: 0.0,
        }
    }

    fn cpu_spec() -> PhaseSpec {
        PhaseSpec {
            name: "cpu".into(),
            seconds_at_default: 10.0,
            oi: 10.0,
            boundness: Boundness::ComputeBound { mem_frac: 0.4 },
            core_util: 0.9,
            overlap_penalty: 0.0,
        }
    }

    #[test]
    fn memory_phase_lasts_declared_seconds_at_default() {
        let c = ctx();
        let p = mem_spec().materialize(&c).unwrap();
        let m = RooflineModel { cores: c.cores };
        let pr = m.progress(&p.rates, c.core_freq_max, c.peak_bandwidth);
        let t = p.work_units / pr.units_per_sec;
        assert!((t - 10.0).abs() < 1e-6, "duration {t}");
    }

    #[test]
    fn compute_phase_lasts_declared_seconds_at_default() {
        let c = ctx();
        let p = cpu_spec().materialize(&c).unwrap();
        let m = RooflineModel { cores: c.cores };
        let pr = m.progress(&p.rates, c.core_freq_max, c.peak_bandwidth);
        let t = p.work_units / pr.units_per_sec;
        assert!((t - 10.0).abs() < 1e-6, "duration {t}");
    }

    #[test]
    fn memory_phase_saturates_bandwidth() {
        let c = ctx();
        let p = mem_spec().materialize(&c).unwrap();
        let m = RooflineModel { cores: c.cores };
        let pr = m.progress(&p.rates, c.core_freq_max, c.peak_bandwidth);
        assert!(
            pr.bandwidth.value() / c.peak_bandwidth.value() > 0.999,
            "bw frac {}",
            pr.bandwidth.value() / c.peak_bandwidth.value()
        );
    }

    #[test]
    fn compute_phase_uses_declared_bandwidth_fraction() {
        let c = ctx();
        let p = cpu_spec().materialize(&c).unwrap();
        let m = RooflineModel { cores: c.cores };
        let pr = m.progress(&p.rates, c.core_freq_max, c.peak_bandwidth);
        let frac = pr.bandwidth.value() / c.peak_bandwidth.value();
        assert!((frac - 0.4).abs() < 1e-6, "mem frac {frac}");
    }

    #[test]
    fn compute_phase_tracks_core_frequency() {
        let c = ctx();
        let p = cpu_spec().materialize(&c).unwrap();
        let m = RooflineModel { cores: c.cores };
        let full = m.progress(&p.rates, c.core_freq_max, c.peak_bandwidth);
        let half = m.progress(
            &p.rates,
            Hertz(c.core_freq_max.value() / 2.0),
            c.peak_bandwidth,
        );
        let ratio = full.units_per_sec / half.units_per_sec;
        assert!((ratio - 2.0).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn memory_phase_ignores_moderate_core_throttling() {
        let c = ctx();
        let p = mem_spec().materialize(&c).unwrap();
        let m = RooflineModel { cores: c.cores };
        let full = m.progress(&p.rates, c.core_freq_max, c.peak_bandwidth);
        // Throttle by 30 % — still above 1/headroom = 2/3 of capability.
        let throttled = m.progress(
            &p.rates,
            Hertz(c.core_freq_max.value() * 0.7),
            c.peak_bandwidth,
        );
        let ratio = throttled.units_per_sec / full.units_per_sec;
        assert!(
            ratio > 0.999,
            "memory phase slowed by core throttle: {ratio}"
        );
    }

    #[test]
    fn oi_is_observable() {
        let c = ctx();
        let p = cpu_spec().materialize(&c).unwrap();
        assert!((RooflineModel::intensity(&p.rates).value() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn invalid_specs_rejected() {
        let c = ctx();
        let mut s = mem_spec();
        s.oi = 0.0;
        assert!(s.materialize(&c).is_err());
        let mut s = mem_spec();
        s.seconds_at_default = -1.0;
        assert!(s.materialize(&c).is_err());
        let mut s = mem_spec();
        s.core_util = 1.5;
        assert!(s.materialize(&c).is_err());
        let mut s = mem_spec();
        s.boundness = Boundness::MemoryBound { headroom: 0.9 };
        assert!(s.materialize(&c).is_err());
        let mut s = cpu_spec();
        s.boundness = Boundness::ComputeBound { mem_frac: 1.0 };
        assert!(s.materialize(&c).is_err());
    }

    #[test]
    fn workload_nominal_duration_sums_phases() {
        let c = ctx();
        let w = Workload::from_specs("test", &[mem_spec(), cpu_spec()], &c).unwrap();
        assert!((w.nominal_duration(&c).value() - 20.0).abs() < 1e-6);
    }

    #[test]
    fn repeat_unrolls() {
        let body = [mem_spec(), cpu_spec()];
        let unrolled = repeat(&body, 3);
        assert_eq!(unrolled.len(), 6);
        assert_eq!(unrolled[4].name, "mem");
    }

    #[test]
    fn empty_workload_rejected() {
        let c = ctx();
        assert!(Workload::from_specs("empty", &[], &c).is_err());
    }

    #[test]
    fn scaled_multiplies_work_but_not_rates() {
        let c = ctx();
        let w = Workload::from_specs("test", &[mem_spec(), cpu_spec()], &c).unwrap();
        let half = w.scaled(0.5).unwrap();
        assert!((half.total_flops() - 0.5 * w.total_flops()).abs() < 1e-6 * w.total_flops());
        assert!((half.total_bytes() - 0.5 * w.total_bytes()).abs() < 1e-6 * w.total_bytes());
        for (a, b) in w.phases.iter().zip(half.phases.iter()) {
            assert_eq!(a.rates, b.rates);
            assert_eq!(a.core_util, b.core_util);
        }
        // A half-weight table nominally lasts half as long.
        let full = w.nominal_duration(&c).value();
        assert!((half.nominal_duration(&c).value() - 0.5 * full).abs() < 1e-6 * full);
    }

    #[test]
    fn scaled_rejects_degenerate_factors() {
        let c = ctx();
        let w = Workload::from_specs("test", &[mem_spec()], &c).unwrap();
        assert!(w.scaled(0.0).is_err());
        assert!(w.scaled(-1.0).is_err());
        assert!(w.scaled(f64::NAN).is_err());
        assert!(w.scaled(f64::INFINITY).is_err());
    }
}
