//! Memoized workload materialization.
//!
//! A sweep expands into hundreds of jobs that mostly share a handful of
//! (application, machine) combinations, and materializing a phase table
//! walks every phase spec through the roofline algebra. The cache hands
//! out one immutable [`Arc<Workload>`] per distinct combination instead of
//! regenerating the table per job; [`crate::apps::by_name`] stays the
//! uncached path for callers that want an owned copy.
//!
//! The key folds [`MaterializeCtx`] in by f64 bit patterns: two contexts
//! materialize identically iff their fields are bitwise equal, and bits
//! (unlike `f64` itself) are hashable. Application names are normalized
//! to upper case, matching `by_name`'s case-insensitive lookup, so
//! `"cg"` and `"CG"` share one entry.

use crate::apps;
use crate::spec::{MaterializeCtx, Workload};
use dufp_types::Result;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Key {
    name: String,
    cores: u16,
    core_freq_bits: u64,
    bandwidth_bits: u64,
    flops_bits: u64,
}

impl Key {
    fn new(name: &str, ctx: &MaterializeCtx) -> Self {
        Key {
            name: name.to_ascii_uppercase(),
            cores: ctx.cores,
            core_freq_bits: ctx.core_freq_max.value().to_bits(),
            bandwidth_bits: ctx.peak_bandwidth.value().to_bits(),
            flops_bits: ctx.peak_flops.value().to_bits(),
        }
    }
}

fn cache() -> &'static Mutex<HashMap<Key, Arc<Workload>>> {
    static CACHE: OnceLock<Mutex<HashMap<Key, Arc<Workload>>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Looks up a modeled application like [`apps::by_name`], but returns a
/// process-wide shared `Arc` to its materialized phase table. Identical
/// (name, context) requests — from any thread — share one immutable table.
///
/// Lookup failures (unknown names, invalid specs) are not cached, so a
/// transient error does not poison the entry.
pub fn shared_by_name(name: &str, ctx: &MaterializeCtx) -> Result<Arc<Workload>> {
    let key = Key::new(name, ctx);
    if let Some(hit) = cache().lock().expect("workload cache poisoned").get(&key) {
        return Ok(Arc::clone(hit));
    }
    // Materialize outside the lock: table construction is the expensive
    // part and must not serialize a sweep pool. A racing thread may build
    // the same table; first insert wins and both callers end up sharing it.
    let built = Arc::new(apps::by_name(name, ctx)?);
    let mut map = cache().lock().expect("workload cache poisoned");
    Ok(Arc::clone(map.entry(key).or_insert(built)))
}

/// Number of distinct (application, context) tables currently cached.
pub fn cached_tables() -> usize {
    cache().lock().expect("workload cache poisoned").len()
}

/// Drops every cached table (outstanding `Arc`s stay valid). Test hook.
pub fn clear() {
    cache().lock().expect("workload cache poisoned").clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use dufp_types::ArchSpec;

    fn ctx() -> MaterializeCtx {
        MaterializeCtx::from_arch(&ArchSpec::yeti())
    }

    /// The cache is process-wide; these tests serialize on one lock so a
    /// concurrently running `clear` cannot invalidate a ptr_eq assertion.
    fn guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn identical_requests_share_one_table() {
        let _g = guard();
        let c = ctx();
        let a = shared_by_name("CG", &c).unwrap();
        let b = shared_by_name("CG", &c).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "same (name, ctx) must share the Arc");
        assert_eq!(*a, apps::by_name("CG", &c).unwrap());
    }

    #[test]
    fn lookup_is_case_insensitive_like_by_name() {
        let _g = guard();
        let c = ctx();
        let a = shared_by_name("ep", &c).unwrap();
        let b = shared_by_name("EP", &c).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn different_contexts_get_different_tables() {
        let _g = guard();
        let c = ctx();
        let mut half = c;
        half.cores /= 2;
        let a = shared_by_name("MG", &c).unwrap();
        let b = shared_by_name("MG", &half).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert_ne!(a.phases[0].rates, b.phases[0].rates);
    }

    #[test]
    fn unknown_apps_error_and_are_not_cached() {
        let _g = guard();
        let c = ctx();
        let before = cached_tables();
        assert!(shared_by_name("NOT_AN_APP", &c).is_err());
        assert_eq!(cached_tables(), before);
    }

    #[test]
    fn concurrent_lookups_converge_on_one_entry() {
        let _g = guard();
        let c = ctx();
        clear();
        let tables: Vec<Arc<Workload>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| s.spawn(|| shared_by_name("LU", &c).unwrap()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let first = &tables[0];
        assert!(tables.iter().all(|t| Arc::ptr_eq(t, first)));
        assert_eq!(
            cached_tables(),
            1,
            "racing builders must collapse to one cached table"
        );
    }
}
