//! Application workload models.
//!
//! DUFP never inspects application code — it only sees the counter
//! time-series (FLOPS/s, bandwidth, power). A workload is therefore modeled
//! as a *sequence of phases*, each characterized by the roofline demands of
//! one program region ([`dufp_model::PhaseRates`]) plus the core activity it
//! keeps the package at. The phase structure (lengths, alternation,
//! sub-interval bursts) is what exercises every branch of the controllers:
//! phase-change resets, the highly-memory fast path, the highly-compute
//! guard, aliasing of sub-interval phases (LAMMPS), and undetected phase
//! changes under deep caps (UA).
//!
//! * [`spec`] — declarative phase specs and their materialization into
//!   roofline terms for a concrete machine,
//! * [`apps`] — calibrated models of the paper's ten applications,
//! * [`cache`] — process-wide memoization of materialized phase tables,
//!   so a parallel sweep's jobs share one immutable `Arc`'d table per
//!   (application, machine) instead of regenerating it per job,
//! * [`synthetic`] — a seeded random workload generator for property tests
//!   and stress benches,
//! * [`mod@file`] — JSON (de)serialization of phase specs, so downstream users
//!   can describe their own applications without writing Rust,
//! * [`capture`] — the reverse direction: segment a recorded counter trace
//!   into phase specs (characterize a real application by running it once).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apps;
pub mod cache;
pub mod capture;
pub mod file;
pub mod spec;
pub mod synthetic;

pub use cache::shared_by_name;
pub use capture::{segment, CounterSample, SegmentConfig};
pub use file::{load_workload, WorkloadFile};
pub use spec::{Boundness, MaterializeCtx, Phase, PhaseSpec, Workload};
