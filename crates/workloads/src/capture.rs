//! Building a workload model from a recorded counter trace.
//!
//! The forward direction of this crate describes applications by hand; the
//! *capture* direction is how a real deployment characterizes an existing
//! application: run it once under the measurement layer, record the
//! (FLOPS/s, bandwidth) time series, segment it into phases, and emit
//! [`crate::spec::PhaseSpec`]s that reproduce the same counter signature.
//!
//! Segmentation walks the series and cuts a new phase whenever the
//! operational intensity moves by more than a factor
//! ([`SegmentConfig::oi_break_factor`]) or FLOPS/s depart from the running
//! segment mean by more than [`SegmentConfig::flops_break_factor`] — the
//! same signals DUFP's own phase detector keys on, so a captured model
//! exercises the controller the way the original did. Segments shorter
//! than [`SegmentConfig::min_samples`] are merged into their neighbours
//! (sampling jitter, not phases).

use crate::spec::{Boundness, MaterializeCtx, PhaseSpec};
use dufp_model::{PowerModel, SocketActivity};
use dufp_types::{BytesPerSec, Error, FlopsPerSec, Hertz, Result, Seconds, Watts};
use serde::{Deserialize, Serialize};

/// One recorded measurement interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CounterSample {
    /// Interval length.
    pub interval: Seconds,
    /// FLOPS/s over the interval.
    pub flops: FlopsPerSec,
    /// Memory bandwidth over the interval.
    pub bandwidth: BytesPerSec,
    /// Average package power over the interval (used to recover core
    /// activity, which FLOPS alone cannot — stalled cores burn power
    /// without retiring FLOPs).
    pub power: Watts,
}

/// Segmentation tuning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SegmentConfig {
    /// Cut when `oi` moves by more than this factor vs the segment mean.
    pub oi_break_factor: f64,
    /// Cut when FLOPS/s move by more than this factor vs the segment mean.
    pub flops_break_factor: f64,
    /// Merge segments shorter than this many samples into a neighbour.
    pub min_samples: usize,
    /// Headroom assigned to captured memory-bound phases. A single
    /// default-configuration trace cannot observe how close the cores run
    /// to the memory demand (that needs a second probe run at reduced
    /// frequency), so captured models use this constant; 1.12 matches the
    /// thin margins typical of bandwidth-bound HPC codes.
    pub memory_headroom: f64,
}

impl Default for SegmentConfig {
    fn default() -> Self {
        SegmentConfig {
            oi_break_factor: 2.5,
            flops_break_factor: 1.8,
            min_samples: 2,
            memory_headroom: 1.12,
        }
    }
}

/// Segments a counter trace into phase specs for the machine described by
/// `ctx`, estimating core activity from FLOPS share only (use
/// [`segment_with_power`] when a calibrated power model is available —
/// it recovers activity much more faithfully for memory-bound phases).
pub fn segment(
    samples: &[CounterSample],
    ctx: &MaterializeCtx,
    cfg: &SegmentConfig,
) -> Result<Vec<PhaseSpec>> {
    segment_impl(samples, ctx, cfg, None)
}

/// Segments a counter trace, recovering per-phase core activity by
/// inverting `power_model` at the recorded operating point (max core and
/// uncore frequency — the default configuration the trace was taken in).
pub fn segment_with_power(
    samples: &[CounterSample],
    ctx: &MaterializeCtx,
    cfg: &SegmentConfig,
    power_model: &PowerModel,
    uncore_max: Hertz,
) -> Result<Vec<PhaseSpec>> {
    segment_impl(samples, ctx, cfg, Some((power_model, uncore_max)))
}

fn segment_impl(
    samples: &[CounterSample],
    ctx: &MaterializeCtx,
    cfg: &SegmentConfig,
    power: Option<(&PowerModel, Hertz)>,
) -> Result<Vec<PhaseSpec>> {
    if samples.is_empty() {
        return Err(Error::Precondition("no samples to segment".into()));
    }
    if cfg.oi_break_factor <= 1.0 || cfg.flops_break_factor <= 1.0 {
        return Err(Error::invalid("break factor", "must be > 1"));
    }

    // 1. Cut into raw segments.
    let mut segments: Vec<Vec<CounterSample>> = vec![vec![samples[0]]];
    for s in &samples[1..] {
        let seg = segments.last_mut().expect("non-empty");
        let (mean_flops, mean_bw) = means(seg);
        let mean_oi = oi(mean_flops, mean_bw);
        let s_oi = oi(s.flops.value(), s.bandwidth.value());
        let oi_jump = ratio(s_oi, mean_oi) > cfg.oi_break_factor;
        let flops_jump = ratio(s.flops.value(), mean_flops) > cfg.flops_break_factor;
        if oi_jump || flops_jump {
            segments.push(vec![*s]);
        } else {
            seg.push(*s);
        }
    }

    // 2. Merge runt segments into their (preceding) neighbour.
    let mut merged: Vec<Vec<CounterSample>> = Vec::with_capacity(segments.len());
    for seg in segments {
        let runt = seg.len() < cfg.min_samples;
        match merged.last_mut() {
            Some(prev) if runt => prev.extend(seg),
            _ => merged.push(seg),
        }
    }

    // 3. Emit one spec per segment.
    let peak_bw = ctx.peak_bandwidth.value();
    let specs = merged
        .iter()
        .enumerate()
        .map(|(i, seg)| {
            let secs: f64 = seg.iter().map(|s| s.interval.value()).sum();
            let (mean_flops, mean_bw) = means(seg);
            let seg_oi = oi(mean_flops, mean_bw).max(1e-6);
            let bw_share = (mean_bw / peak_bw).clamp(0.0, 0.999);
            let boundness = if bw_share > 0.85 {
                Boundness::MemoryBound {
                    headroom: cfg.memory_headroom,
                }
            } else {
                Boundness::ComputeBound {
                    mem_frac: bw_share.max(1e-4),
                }
            };
            let core_util = match power {
                Some((model, uncore_max)) => {
                    // Package power is affine in core utilization at a fixed
                    // operating point; invert it.
                    let mean_power: f64 =
                        seg.iter().map(|s| s.power.value()).sum::<f64>() / seg.len() as f64;
                    let at = |u: f64| {
                        model
                            .package_total(
                                ctx.core_freq_max,
                                uncore_max,
                                &SocketActivity {
                                    core_util: u,
                                    mem_util: bw_share,
                                    active_cores: ctx.cores,
                                },
                            )
                            .value()
                    };
                    let (p0, p1) = (at(0.0), at(1.0));
                    ((mean_power - p0) / (p1 - p0).max(1e-9)).clamp(0.05, 1.0)
                }
                None => {
                    // FLOPS-share fallback: crude, but better than nothing
                    // when no power trace exists.
                    let flops_share = (mean_flops / ctx.peak_flops.value()).clamp(0.0, 1.0);
                    (0.3 + 0.7 * flops_share).min(1.0)
                }
            };
            PhaseSpec {
                name: format!("captured{i}"),
                seconds_at_default: secs.max(1e-3),
                oi: seg_oi,
                boundness,
                core_util,
                overlap_penalty: 0.05,
            }
        })
        .collect();
    Ok(specs)
}

fn means(seg: &[CounterSample]) -> (f64, f64) {
    let n = seg.len() as f64;
    (
        seg.iter().map(|s| s.flops.value()).sum::<f64>() / n,
        seg.iter().map(|s| s.bandwidth.value()).sum::<f64>() / n,
    )
}

fn oi(flops: f64, bw: f64) -> f64 {
    if bw > 0.0 {
        flops / bw
    } else {
        f64::INFINITY
    }
}

/// Symmetric ratio `max(a/b, b/a)`; infinite inputs compare as a jump.
fn ratio(a: f64, b: f64) -> f64 {
    if !a.is_finite() || !b.is_finite() {
        return if a == b { 1.0 } else { f64::INFINITY };
    }
    let (a, b) = (a.max(1e-12), b.max(1e-12));
    (a / b).max(b / a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dufp_types::ArchSpec;

    fn ctx() -> MaterializeCtx {
        MaterializeCtx::from_arch(&ArchSpec::yeti())
    }

    fn sample(flops_g: f64, bw_gib: f64) -> CounterSample {
        CounterSample {
            interval: Seconds(0.2),
            flops: FlopsPerSec::from_gflops(flops_g),
            bandwidth: BytesPerSec::from_gib(bw_gib),
            power: Watts(100.0),
        }
    }

    #[test]
    fn power_inversion_recovers_activity() {
        // Build a sample whose power corresponds to a known activity and
        // check the inversion recovers it.
        let c = ctx();
        let model = PowerModel::xeon_gold_6130();
        let truth = SocketActivity {
            core_util: 0.72,
            mem_util: 0.999,
            active_cores: c.cores,
        };
        let p = model.package_total(c.core_freq_max, Hertz::from_ghz(2.4), &truth);
        let trace = vec![
            CounterSample {
                interval: Seconds(0.2),
                flops: FlopsPerSec::from_gflops(11.0),
                bandwidth: BytesPerSec(c.peak_bandwidth.value() * 0.999),
                power: p,
            };
            8
        ];
        let specs = segment_with_power(
            &trace,
            &c,
            &SegmentConfig::default(),
            &model,
            Hertz::from_ghz(2.4),
        )
        .unwrap();
        assert_eq!(specs.len(), 1);
        assert!(
            (specs[0].core_util - 0.72).abs() < 0.03,
            "recovered util {}",
            specs[0].core_util
        );
    }

    #[test]
    fn two_plateaus_become_two_phases() {
        let mut trace = vec![sample(30.0, 100.0); 10]; // memory-ish
        trace.extend(vec![sample(400.0, 40.0); 10]); // compute-ish
        let specs = segment(&trace, &ctx(), &SegmentConfig::default()).unwrap();
        assert_eq!(specs.len(), 2, "{specs:#?}");
        assert!(specs[0].oi < 1.0);
        assert!(specs[1].oi > 1.0);
        assert!((specs[0].seconds_at_default - 2.0).abs() < 1e-9);
        assert!(matches!(specs[0].boundness, Boundness::MemoryBound { .. }));
        assert!(matches!(specs[1].boundness, Boundness::ComputeBound { .. }));
    }

    #[test]
    fn jitter_does_not_split_segments() {
        let mut trace = Vec::new();
        for i in 0..20 {
            let wiggle = 1.0 + 0.05 * ((i % 3) as f64 - 1.0);
            trace.push(sample(30.0 * wiggle, 100.0 * wiggle));
        }
        let specs = segment(&trace, &ctx(), &SegmentConfig::default()).unwrap();
        assert_eq!(specs.len(), 1, "{specs:#?}");
    }

    #[test]
    fn runt_segments_merge_into_neighbours() {
        let mut trace = vec![sample(30.0, 100.0); 10];
        trace.push(sample(400.0, 40.0)); // one-sample spike
        trace.extend(vec![sample(30.0, 100.0); 10]);
        let specs = segment(&trace, &ctx(), &SegmentConfig::default()).unwrap();
        assert!(
            specs.len() <= 2,
            "spike must not become a phase: {specs:#?}"
        );
        let total: f64 = specs.iter().map(|s| s.seconds_at_default).sum();
        assert!((total - 21.0 * 0.2).abs() < 1e-9, "no time lost");
    }

    #[test]
    fn captured_specs_materialize() {
        let mut trace = vec![sample(25.0, 95.0); 15];
        trace.extend(vec![sample(500.0, 30.0); 15]);
        let specs = segment(&trace, &ctx(), &SegmentConfig::default()).unwrap();
        let w = crate::spec::Workload::from_specs("captured", &specs, &ctx()).unwrap();
        let d = w.nominal_duration(&ctx()).value();
        assert!((d - 6.0).abs() < 0.5, "captured duration {d}");
    }

    #[test]
    fn bad_inputs_rejected() {
        assert!(segment(&[], &ctx(), &SegmentConfig::default()).is_err());
        let bad = SegmentConfig {
            oi_break_factor: 0.9,
            ..SegmentConfig::default()
        };
        assert!(segment(&[sample(1.0, 1.0)], &ctx(), &bad).is_err());
    }

    #[test]
    fn zero_bandwidth_compute_phase_survives() {
        let trace = vec![
            CounterSample {
                interval: Seconds(0.2),
                flops: FlopsPerSec::from_gflops(200.0),
                bandwidth: BytesPerSec(0.0),
                power: Watts(110.0),
            };
            8
        ];
        let specs = segment(&trace, &ctx(), &SegmentConfig::default()).unwrap();
        assert_eq!(specs.len(), 1);
        assert!(matches!(specs[0].boundness, Boundness::ComputeBound { .. }));
    }
}
