//! Loading and saving workload descriptions as JSON.
//!
//! Downstream users characterize their own applications by writing a phase
//! spec file instead of Rust code:
//!
//! ```json
//! {
//!   "name": "my-solver",
//!   "phases": [
//!     { "name": "assemble", "seconds_at_default": 2.0, "oi": 0.05,
//!       "boundness": { "MemoryBound": { "headroom": 1.5 } },
//!       "core_util": 0.4, "overlap_penalty": 0.0 },
//!     { "name": "solve", "seconds_at_default": 5.0, "oi": 8.0,
//!       "boundness": { "ComputeBound": { "mem_frac": 0.3 } },
//!       "core_util": 0.9, "overlap_penalty": 0.1 }
//!   ],
//!   "repeat": 10
//! }
//! ```
//!
//! `repeat` unrolls the phase list; the file carries *specs* (behavioural
//! description), materialized for a concrete machine at load time.

use crate::spec::{repeat, MaterializeCtx, PhaseSpec, Workload};
use dufp_types::{Error, Result};
use serde::{Deserialize, Serialize};
use std::path::Path;

/// The on-disk description: specs plus an optional repeat count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadFile {
    /// Workload name.
    pub name: String,
    /// Phase specifications, executed in order (before unrolling).
    pub phases: Vec<PhaseSpec>,
    /// Unroll the phase list this many times (default 1).
    #[serde(default = "default_repeat")]
    pub repeat: usize,
}

fn default_repeat() -> usize {
    1
}

impl WorkloadFile {
    /// Parses a JSON string.
    pub fn from_json(json: &str) -> Result<Self> {
        let file: WorkloadFile = serde_json::from_str(json)
            .map_err(|e| Error::invalid("workload file", e.to_string()))?;
        if file.phases.is_empty() {
            return Err(Error::Precondition("workload file has no phases".into()));
        }
        if file.repeat == 0 {
            return Err(Error::invalid("repeat", "must be at least 1"));
        }
        Ok(file)
    }

    /// Reads and parses a file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self> {
        let text = std::fs::read_to_string(path.as_ref())?;
        Self::from_json(&text)
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("workload files always serialize")
    }

    /// Writes the description to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        std::fs::write(path.as_ref(), self.to_json())?;
        Ok(())
    }

    /// Materializes into an executable workload for `ctx`.
    pub fn materialize(&self, ctx: &MaterializeCtx) -> Result<Workload> {
        let unrolled = repeat(&self.phases, self.repeat);
        Workload::from_specs(self.name.clone(), &unrolled, ctx)
    }
}

/// Convenience: load a file and materialize it in one step.
pub fn load_workload(path: impl AsRef<Path>, ctx: &MaterializeCtx) -> Result<Workload> {
    WorkloadFile::load(path)?.materialize(ctx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Boundness;
    use dufp_types::ArchSpec;

    fn ctx() -> MaterializeCtx {
        MaterializeCtx::from_arch(&ArchSpec::yeti())
    }

    fn sample() -> WorkloadFile {
        WorkloadFile {
            name: "sample".into(),
            phases: vec![
                PhaseSpec {
                    name: "mem".into(),
                    seconds_at_default: 1.0,
                    oi: 0.1,
                    boundness: Boundness::MemoryBound { headroom: 1.5 },
                    core_util: 0.5,
                    overlap_penalty: 0.0,
                },
                PhaseSpec {
                    name: "cpu".into(),
                    seconds_at_default: 2.0,
                    oi: 10.0,
                    boundness: Boundness::ComputeBound { mem_frac: 0.4 },
                    core_util: 0.9,
                    overlap_penalty: 0.1,
                },
            ],
            repeat: 3,
        }
    }

    #[test]
    fn json_round_trips() {
        let f = sample();
        let back = WorkloadFile::from_json(&f.to_json()).unwrap();
        assert_eq!(f, back);
    }

    #[test]
    fn repeat_defaults_to_one() {
        let json = r#"{
            "name": "noloop",
            "phases": [{
                "name": "p", "seconds_at_default": 1.0, "oi": 0.1,
                "boundness": { "MemoryBound": { "headroom": 1.5 } },
                "core_util": 0.5, "overlap_penalty": 0.0
            }]
        }"#;
        let f = WorkloadFile::from_json(json).unwrap();
        assert_eq!(f.repeat, 1);
        assert_eq!(f.materialize(&ctx()).unwrap().phases.len(), 1);
    }

    #[test]
    fn materialization_unrolls_repeats() {
        let w = sample().materialize(&ctx()).unwrap();
        assert_eq!(w.phases.len(), 6);
        assert!((w.nominal_duration(&ctx()).value() - 9.0).abs() < 1e-6);
    }

    #[test]
    fn file_round_trip_via_disk() {
        let dir = std::env::temp_dir().join(format!("dufp-wl-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.json");
        sample().save(&path).unwrap();
        let w = load_workload(&path, &ctx()).unwrap();
        assert_eq!(w.name, "sample");
        assert_eq!(w.phases.len(), 6);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bad_inputs_are_clean_errors() {
        assert!(WorkloadFile::from_json("not json").is_err());
        assert!(WorkloadFile::from_json(r#"{"name":"x","phases":[]}"#).is_err());
        let mut f = sample();
        f.repeat = 0;
        assert!(WorkloadFile::from_json(&f.to_json()).is_err());
        // Semantically invalid specs surface at materialization.
        let mut f = sample();
        f.phases[0].core_util = 2.0;
        let parsed = WorkloadFile::from_json(&f.to_json()).unwrap();
        assert!(parsed.materialize(&ctx()).is_err());
        assert!(WorkloadFile::load("/nonexistent/workload.json").is_err());
    }
}
