//! Calibrated models of the paper's ten applications.
//!
//! Phase structures follow the qualitative descriptions in the paper and the
//! public behaviour of the codes:
//!
//! * **CG** — a highly-memory-intensive prologue (`oi < 0.02`, ≈5 % of
//!   runtime, §II-A) followed by memory-bound conjugate-gradient iterations.
//! * **EP** — one long compute phase with almost no memory traffic; the
//!   uncore is pure overhead (DUF's best case, −24.27 % in Fig. 3b).
//! * **FT** — alternating transpose/FFT memory phases and compute phases.
//! * **MG** — memory-bound with *thin* compute headroom: any bandwidth or
//!   frequency loss shows up in runtime (why MG loses energy at 10–20 %).
//! * **LU** — mixed pipelined solver, moderately bandwidth-coupled; both
//!   DUF and DUFP pay a small uncore-induced overhead (§V-A).
//! * **BT**, **SP** — alternating compute sweeps and memory-bound RHS
//!   updates on a few-second period; frequent resets keep DUF from saving
//!   much, while DUFP's cap can still shave power (BT@20 %: 5.14 % vs
//!   0.64 %).
//! * **UA** — one short compute iteration followed by a several-second
//!   memory stretch; under a deep cap the compute iteration's FLOPS spike is
//!   flattened and phase detection misses it (the §V-A UA overshoot).
//! * **HPL** — highly compute-intensive (`oi > 100`) DGEMM panels with
//!   brief communication gaps; rides PL1 even at default.
//! * **LAMMPS** — force-computation phases interleaved with sub-interval
//!   (50 ms) neighbor-rebuild bursts: high power, few FLOPs, invisible at a
//!   200 ms sampling period (the §V-A LAMMPS overshoot).

use crate::spec::{repeat, Boundness, MaterializeCtx, PhaseSpec, Workload};
use dufp_types::Result;

fn mem(name: &str, secs: f64, oi: f64, headroom: f64, util: f64, overlap: f64) -> PhaseSpec {
    PhaseSpec {
        name: name.into(),
        seconds_at_default: secs,
        oi,
        boundness: Boundness::MemoryBound { headroom },
        core_util: util,
        overlap_penalty: overlap,
    }
}

fn cpu(name: &str, secs: f64, oi: f64, mem_frac: f64, util: f64, overlap: f64) -> PhaseSpec {
    PhaseSpec {
        name: name.into(),
        seconds_at_default: secs,
        oi,
        boundness: Boundness::ComputeBound { mem_frac },
        core_util: util,
        overlap_penalty: overlap,
    }
}

/// NPB CG, class D: highly-memory prologue then memory-bound iterations.
pub fn cg(ctx: &MaterializeCtx) -> Result<Workload> {
    let mut specs = vec![mem("makea_init", 2.0, 0.008, 2.0, 0.75, 0.0)];
    specs.extend(repeat(&[mem("conj_grad", 1.9, 0.10, 1.10, 0.72, 0.05)], 20));
    Workload::from_specs("CG", &specs, ctx)
}

/// NPB EP, class D: one long, essentially memory-free compute phase.
pub fn ep(ctx: &MaterializeCtx) -> Result<Workload> {
    Workload::from_specs(
        "EP",
        &[cpu("random_pairs", 30.0, 150.0, 0.01, 0.95, 0.0)],
        ctx,
    )
}

/// NPB FT, class D: alternating transpose (memory) and FFT (mixed) phases.
pub fn ft(ctx: &MaterializeCtx) -> Result<Workload> {
    let body = [
        mem("transpose", 2.6, 0.25, 1.4, 0.55, 0.05),
        cpu("fft_layers", 1.6, 1.6, 0.55, 0.80, 0.10),
    ];
    Workload::from_specs("FT", &repeat(&body, 9), ctx)
}

/// NPB MG, class D: memory-bound V-cycles with thin compute headroom.
pub fn mg(ctx: &MaterializeCtx) -> Result<Workload> {
    Workload::from_specs(
        "MG",
        &repeat(&[mem("v_cycle", 1.5, 0.12, 1.07, 0.55, 0.25)], 20),
        ctx,
    )
}

/// NPB LU, class D: pipelined SSOR sweeps, moderately bandwidth-coupled.
pub fn lu(ctx: &MaterializeCtx) -> Result<Workload> {
    Workload::from_specs(
        "LU",
        &repeat(&[cpu("ssor_sweep", 2.25, 1.8, 0.78, 0.85, 0.20)], 20),
        ctx,
    )
}

/// NPB BT, class D: compute sweeps alternating with memory-bound updates.
pub fn bt(ctx: &MaterializeCtx) -> Result<Workload> {
    let body = [
        cpu("xyz_solve", 2.2, 4.0, 0.50, 0.85, 0.10),
        mem("rhs_update", 0.8, 0.35, 1.25, 0.60, 0.05),
    ];
    Workload::from_specs("BT", &repeat(&body, 16), ctx)
}

/// NPB SP, class C: like BT but shorter phases and closer to memory.
pub fn sp(ctx: &MaterializeCtx) -> Result<Workload> {
    let body = [
        cpu("adi_sweep", 1.4, 2.5, 0.60, 0.80, 0.10),
        mem("rhs", 1.1, 0.30, 1.30, 0.55, 0.05),
    ];
    Workload::from_specs("SP", &repeat(&body, 14), ctx)
}

/// NPB UA, class D: one short compute iteration followed by a long memory
/// stretch; the compute spike is shorter than a couple of sampling periods.
pub fn ua(ctx: &MaterializeCtx) -> Result<Workload> {
    let body = [
        cpu("adapt_compute", 0.35, 6.0, 0.45, 0.90, 0.05),
        mem("residual_smooth", 2.1, 0.35, 1.20, 0.55, 0.05),
    ];
    Workload::from_specs("UA", &repeat(&body, 18), ctx)
}

/// HPL 2.3 (MKL): `oi > 100` DGEMM panels with brief mixed gaps.
pub fn hpl(ctx: &MaterializeCtx) -> Result<Workload> {
    let body = [
        cpu("dgemm_panel", 2.6, 140.0, 0.04, 1.00, 0.0),
        mem("panel_bcast", 0.4, 0.8, 1.5, 0.60, 0.10),
    ];
    Workload::from_specs("HPL", &repeat(&body, 20), ctx)
}

/// LAMMPS `in.lj`: force phases plus 50 ms high-power, low-FLOP
/// neighbor-rebuild bursts that a 200 ms sampler aliases away.
pub fn lammps(ctx: &MaterializeCtx) -> Result<Workload> {
    let body = [
        cpu("pair_force", 0.45, 15.0, 0.25, 0.75, 0.05),
        cpu("neighbor_rebuild", 0.05, 20.0, 0.22, 1.00, 0.0),
    ];
    Workload::from_specs("LAMMPS", &repeat(&body, 80), ctx)
}

/// STREAM-like triad kernel: pure bandwidth, the workload the
/// control-theory capping study the paper cites ([8], Cerf et al.) models
/// exactly. Useful as the extreme memory-bound reference point.
pub fn stream(ctx: &MaterializeCtx) -> Result<Workload> {
    Workload::from_specs("STREAM", &[mem("triad", 30.0, 0.06, 1.8, 0.45, 0.0)], ctx)
}

/// Blocked DGEMM kernel: pure compute, the extreme CPU-bound reference
/// point (an idealized HPL inner loop without panel communication).
pub fn dgemm(ctx: &MaterializeCtx) -> Result<Workload> {
    Workload::from_specs(
        "DGEMM",
        &[cpu("dgemm_kernel", 30.0, 200.0, 0.03, 1.0, 0.0)],
        ctx,
    )
}

/// Pointer-chase kernel: latency-bound — almost no FLOPs, little
/// bandwidth, fully serialized (worst case for every heuristic that keys
/// on FLOPS/s or bandwidth). The roofline vocabulary approximates latency
/// chains as a serial demand that consumes a small bandwidth share and
/// tracks clock speed weakly.
pub fn pointer_chase(ctx: &MaterializeCtx) -> Result<Workload> {
    Workload::from_specs(
        "CHASE",
        &[PhaseSpec {
            name: "chase".into(),
            seconds_at_default: 25.0,
            oi: 0.001,
            boundness: Boundness::ComputeBound { mem_frac: 0.08 },
            core_util: 0.25,
            overlap_penalty: 1.0,
        }],
        ctx,
    )
}

/// All ten applications in the paper's figure order.
pub fn all(ctx: &MaterializeCtx) -> Result<Vec<Workload>> {
    Ok(vec![
        bt(ctx)?,
        cg(ctx)?,
        ep(ctx)?,
        ft(ctx)?,
        lu(ctx)?,
        mg(ctx)?,
        sp(ctx)?,
        ua(ctx)?,
        hpl(ctx)?,
        lammps(ctx)?,
    ])
}

/// Looks an application up by its figure name (case-insensitive).
pub fn by_name(name: &str, ctx: &MaterializeCtx) -> Result<Workload> {
    match name.to_ascii_uppercase().as_str() {
        "BT" => bt(ctx),
        "CG" => cg(ctx),
        "EP" => ep(ctx),
        "FT" => ft(ctx),
        "LU" => lu(ctx),
        "MG" => mg(ctx),
        "SP" => sp(ctx),
        "UA" => ua(ctx),
        "HPL" => hpl(ctx),
        "LAMMPS" => lammps(ctx),
        "STREAM" => stream(ctx),
        "DGEMM" => dgemm(ctx),
        "CHASE" => pointer_chase(ctx),
        other => Err(dufp_types::Error::NoSuchComponent(format!(
            "application {other}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dufp_model::perf::PhaseKind;
    use dufp_model::RooflineModel;
    use dufp_types::ArchSpec;

    fn ctx() -> MaterializeCtx {
        MaterializeCtx::from_arch(&ArchSpec::yeti())
    }

    #[test]
    fn all_apps_build_and_have_paper_range_durations() {
        let c = ctx();
        for w in all(&c).unwrap() {
            let d = w.nominal_duration(&c).value();
            assert!(
                (20.0..=400.0).contains(&d),
                "{} lasts {d}s, outside the paper's [20, 400] range",
                w.name
            );
        }
    }

    #[test]
    fn cg_prologue_is_highly_memory_intensive() {
        let c = ctx();
        let w = cg(&c).unwrap();
        let oi = RooflineModel::intensity(&w.phases[0].rates);
        assert_eq!(PhaseKind::classify(oi), PhaseKind::HighlyMemoryIntensive);
        // Prologue ≈ 5 % of the run (paper §II-A).
        let frac = 2.0 / w.nominal_duration(&c).value();
        assert!((0.03..0.12).contains(&frac), "prologue fraction {frac}");
    }

    #[test]
    fn ep_and_hpl_are_highly_compute_intensive() {
        let c = ctx();
        for (w, main_idx) in [(ep(&c).unwrap(), 0), (hpl(&c).unwrap(), 0)] {
            let oi = RooflineModel::intensity(&w.phases[main_idx].rates);
            assert_eq!(
                PhaseKind::classify(oi),
                PhaseKind::HighlyComputeIntensive,
                "{}",
                w.name
            );
        }
    }

    #[test]
    fn memory_apps_classify_memory() {
        let c = ctx();
        for w in [cg(&c).unwrap(), mg(&c).unwrap()] {
            let main = w.phases.last().unwrap();
            let oi = RooflineModel::intensity(&main.rates);
            assert!(PhaseKind::classify(oi).is_memory(), "{}", w.name);
        }
    }

    #[test]
    fn lammps_rebuild_is_shorter_than_sampling_interval() {
        let c = ctx();
        let w = lammps(&c).unwrap();
        let m = RooflineModel { cores: c.cores };
        let rebuild = w
            .phases
            .iter()
            .find(|p| p.name == "neighbor_rebuild")
            .unwrap();
        let pr = m.progress(&rebuild.rates, c.core_freq_max, c.peak_bandwidth);
        let dur = rebuild.work_units / pr.units_per_sec;
        assert!(dur < 0.2, "rebuild lasts {dur}s, must alias under 200 ms");
    }

    #[test]
    fn ua_compute_iteration_is_short_memory_stretch_long() {
        let c = ctx();
        let w = ua(&c).unwrap();
        let m = RooflineModel { cores: c.cores };
        let dur = |p: &crate::spec::Phase| {
            let pr = m.progress(&p.rates, c.core_freq_max, c.peak_bandwidth);
            p.work_units / pr.units_per_sec
        };
        let compute = w.phases.iter().find(|p| p.name == "adapt_compute").unwrap();
        let memory = w
            .phases
            .iter()
            .find(|p| p.name == "residual_smooth")
            .unwrap();
        assert!(
            dur(compute) < 2.0 * 0.2 + 1e-9,
            "compute iter {}s",
            dur(compute)
        );
        assert!(dur(memory) > 5.0 * 0.2, "memory stretch {}s", dur(memory));
    }

    #[test]
    fn by_name_round_trips_and_rejects_unknown() {
        let c = ctx();
        for name in [
            "BT", "cg", "Ep", "FT", "LU", "MG", "SP", "UA", "HPL", "lammps", "stream", "DGEMM",
            "chase",
        ] {
            assert!(by_name(name, &c).is_ok(), "{name}");
        }
        assert!(by_name("NOT_AN_APP", &c).is_err());
    }

    #[test]
    fn reference_kernels_sit_at_the_roofline_extremes() {
        let c = ctx();
        let m = RooflineModel { cores: c.cores };
        // STREAM saturates bandwidth.
        let s = stream(&c).unwrap();
        let pr = m.progress(&s.phases[0].rates, c.core_freq_max, c.peak_bandwidth);
        assert!(pr.bandwidth.value() / c.peak_bandwidth.value() > 0.999);
        // DGEMM is highly compute-intensive with near-peak utilization.
        let d = dgemm(&c).unwrap();
        let oi = RooflineModel::intensity(&d.phases[0].rates);
        assert_eq!(PhaseKind::classify(oi), PhaseKind::HighlyComputeIntensive);
        // CHASE barely moves flops or bytes.
        let p = pointer_chase(&c).unwrap();
        let pr = m.progress(&p.phases[0].rates, c.core_freq_max, c.peak_bandwidth);
        assert!(pr.bandwidth.value() / c.peak_bandwidth.value() < 0.6);
        assert!(pr.flops.as_gflops() < 1.0);
    }

    #[test]
    fn app_order_matches_figures() {
        let c = ctx();
        let names: Vec<String> = all(&c).unwrap().into_iter().map(|w| w.name).collect();
        assert_eq!(
            names,
            ["BT", "CG", "EP", "FT", "LU", "MG", "SP", "UA", "HPL", "LAMMPS"]
        );
    }
}
