//! Seeded synthetic workload generation.
//!
//! Property tests and stress benches need arbitrary-but-valid workloads:
//! random phase counts, intensities spanning all four paper classes, and
//! durations in a configurable band. Generation is fully deterministic in
//! the seed.

use crate::spec::{Boundness, MaterializeCtx, PhaseSpec, Workload};
use dufp_types::Result;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Parameters for the generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeneratorConfig {
    /// Minimum number of phases.
    pub min_phases: usize,
    /// Maximum number of phases (inclusive).
    pub max_phases: usize,
    /// Phase duration band at the default operating point, seconds.
    pub phase_seconds: (f64, f64),
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            min_phases: 2,
            max_phases: 24,
            phase_seconds: (0.3, 4.0),
        }
    }
}

/// Deterministic random workload generator.
#[derive(Debug)]
pub struct WorkloadGenerator {
    rng: ChaCha8Rng,
    config: GeneratorConfig,
}

impl WorkloadGenerator {
    /// Creates a generator from a seed.
    pub fn new(seed: u64, config: GeneratorConfig) -> Self {
        WorkloadGenerator {
            rng: ChaCha8Rng::seed_from_u64(seed),
            config,
        }
    }

    /// Generates the next workload.
    pub fn generate(&mut self, ctx: &MaterializeCtx) -> Result<Workload> {
        let n = self
            .rng
            .gen_range(self.config.min_phases..=self.config.max_phases);
        let specs: Vec<PhaseSpec> = (0..n).map(|i| self.random_phase(i)).collect();
        Workload::from_specs(format!("synthetic-{n}"), &specs, ctx)
    }

    fn random_phase(&mut self, index: usize) -> PhaseSpec {
        let (lo, hi) = self.config.phase_seconds;
        let secs = self.rng.gen_range(lo..hi);
        // Sample an intensity class first so all four paper classes appear.
        let class = self.rng.gen_range(0..4u8);
        let (oi, boundness, util) = match class {
            0 => (
                self.rng.gen_range(0.002..0.019),
                Boundness::MemoryBound {
                    headroom: self.rng.gen_range(1.3..2.5),
                },
                self.rng.gen_range(0.2..0.5),
            ),
            1 => (
                self.rng.gen_range(0.02..0.9),
                Boundness::MemoryBound {
                    headroom: self.rng.gen_range(1.05..1.8),
                },
                self.rng.gen_range(0.4..0.7),
            ),
            2 => (
                self.rng.gen_range(1.0..80.0),
                Boundness::ComputeBound {
                    mem_frac: self.rng.gen_range(0.2..0.8),
                },
                self.rng.gen_range(0.6..0.95),
            ),
            _ => (
                self.rng.gen_range(101.0..500.0),
                Boundness::ComputeBound {
                    mem_frac: self.rng.gen_range(0.005..0.08),
                },
                self.rng.gen_range(0.8..1.0),
            ),
        };
        PhaseSpec {
            name: format!("phase{index}"),
            seconds_at_default: secs,
            oi,
            boundness,
            core_util: util,
            overlap_penalty: self.rng.gen_range(0.0..0.3),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dufp_types::ArchSpec;

    fn ctx() -> MaterializeCtx {
        MaterializeCtx::from_arch(&ArchSpec::yeti())
    }

    #[test]
    fn generation_is_deterministic_in_seed() {
        let c = ctx();
        let mut a = WorkloadGenerator::new(7, GeneratorConfig::default());
        let mut b = WorkloadGenerator::new(7, GeneratorConfig::default());
        let wa = a.generate(&c).unwrap();
        let wb = b.generate(&c).unwrap();
        assert_eq!(wa, wb);
    }

    #[test]
    fn different_seeds_differ() {
        let c = ctx();
        let mut a = WorkloadGenerator::new(1, GeneratorConfig::default());
        let mut b = WorkloadGenerator::new(2, GeneratorConfig::default());
        assert_ne!(a.generate(&c).unwrap(), b.generate(&c).unwrap());
    }

    #[test]
    fn generated_workloads_are_valid_and_bounded() {
        let c = ctx();
        let cfg = GeneratorConfig::default();
        let mut g = WorkloadGenerator::new(42, cfg);
        for _ in 0..50 {
            let w = g.generate(&c).unwrap();
            assert!(w.phases.len() >= cfg.min_phases);
            assert!(w.phases.len() <= cfg.max_phases);
            for p in &w.phases {
                assert!(p.work_units > 0.0);
                assert!(p.rates.flops_per_unit > 0.0);
                assert!((0.0..=1.0).contains(&p.core_util));
            }
        }
    }

    #[test]
    fn all_intensity_classes_eventually_appear() {
        use dufp_model::perf::PhaseKind;
        use dufp_model::RooflineModel;
        let c = ctx();
        let mut g = WorkloadGenerator::new(3, GeneratorConfig::default());
        let mut seen = std::collections::HashSet::new();
        for _ in 0..40 {
            for p in g.generate(&c).unwrap().phases {
                seen.insert(PhaseKind::classify(RooflineModel::intensity(&p.rates)));
            }
        }
        assert_eq!(seen.len(), 4, "saw classes {seen:?}");
    }
}
