//! Record-and-model pipeline: run an application under the measurement
//! layer, capture its counter trace, and emit a workload description that
//! reproduces the same signature.
//!
//! This is how a real deployment would characterize its own codes — run
//! once in the default configuration, keep the JSON, and use it for
//! offline what-if studies (tolerance sweeps, budget planning) without
//! occupying the machine again.

use dufp_counters::Sampler;
use dufp_sim::{Machine, SimConfig};
use dufp_types::{Duration, Result, Seconds, SocketId};
use dufp_workloads::capture::{segment_with_power, CounterSample, SegmentConfig};
use dufp_workloads::{apps, MaterializeCtx, Workload, WorkloadFile};

/// Runs `app` (a model name or a `.json` spec path) once on `sim` in the
/// default configuration and records the 200 ms counter trace of socket 0.
///
/// Aborts with [`dufp_types::Error::Timeout`] — carrying the number of
/// samples captured so far — if the simulated run exceeds ten times the
/// workload's nominal duration (plus a 30 s grace), which indicates a
/// wedged workload or a mis-calibrated machine description.
pub fn record_trace(sim: &SimConfig, app: &str) -> Result<Vec<CounterSample>> {
    record_trace_with_deadline(sim, app, None)
}

/// [`record_trace`] with an explicit deadline override (used by the
/// timeout regression test; `None` applies the 10x-nominal rule).
fn record_trace_with_deadline(
    sim: &SimConfig,
    app: &str,
    deadline: Option<Duration>,
) -> Result<Vec<CounterSample>> {
    let ctx = MaterializeCtx::from_arch(&sim.arch);
    let workload: Workload = if app.ends_with(".json") {
        dufp_workloads::load_workload(app, &ctx)?
    } else {
        apps::by_name(app, &ctx)?
    };
    let machine = Machine::new(sim.clone());
    machine.load_all(&workload);

    let mut sampler = Sampler::new();
    sampler.sample(&machine, SocketId(0))?;
    let interval = Duration::from_millis(200);
    let ticks = (interval.as_micros() / sim.tick.as_micros()).max(1);
    let mut out = Vec::new();
    let max = deadline.unwrap_or_else(|| {
        Duration::from_seconds(Seconds(
            workload.nominal_duration(&ctx).value() * 10.0 + 30.0,
        ))
    });
    while !machine.done() {
        for _ in 0..ticks {
            machine.tick();
            if machine.done() {
                break;
            }
        }
        if machine.now().duration_since(dufp_types::Instant::ZERO) >= max {
            return Err(dufp_types::Error::Timeout {
                what: "trace recording",
                partial_len: out.len(),
            });
        }
        if let Some(m) = sampler.sample(&machine, SocketId(0))? {
            out.push(CounterSample {
                interval: m.interval,
                flops: m.flops,
                bandwidth: m.bandwidth,
                power: m.pkg_power,
            });
        }
    }
    Ok(out)
}

/// Records `app` and segments the trace into a saveable workload file.
pub fn record_workload(sim: &SimConfig, app: &str, cfg: &SegmentConfig) -> Result<WorkloadFile> {
    let trace = record_trace(sim, app)?;
    let ctx = MaterializeCtx::from_arch(&sim.arch);
    let phases = segment_with_power(&trace, &ctx, cfg, &sim.power, sim.arch.uncore_freq_max)?;
    Ok(WorkloadFile {
        name: format!("{app}-captured"),
        phases,
        repeat: 1,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_once, ControllerKind, ExperimentSpec};
    use dufp_types::Ratio;

    #[test]
    fn captured_cg_round_trips_through_the_simulator() {
        // Record CG, rebuild it from its own counter trace, and check the
        // rebuilt model matches the original where it matters: duration,
        // a highly-memory region, and similar DUFP behaviour.
        let sim = SimConfig::deterministic(3);
        let ctx = MaterializeCtx::from_arch(&sim.arch);
        let file = record_workload(&sim, "CG", &SegmentConfig::default()).unwrap();

        let original = apps::by_name("CG", &ctx).unwrap();
        let rebuilt = file.materialize(&ctx).unwrap();
        let d0 = original.nominal_duration(&ctx).value();
        let d1 = rebuilt.nominal_duration(&ctx).value();
        assert!(
            (d1 - d0).abs() / d0 < 0.10,
            "captured duration {d1:.1}s vs original {d0:.1}s"
        );
        // The highly-memory prologue must survive the round trip.
        assert!(
            file.phases.iter().any(|p| p.oi < 0.02),
            "prologue lost: {:#?}",
            file.phases.iter().map(|p| p.oi).collect::<Vec<_>>()
        );

        // And DUFP on the rebuilt model behaves like DUFP on the original.
        let dir = std::env::temp_dir().join(format!("dufp-capture-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cg-captured.json");
        file.save(&path).unwrap();

        let spec = |app: String| ExperimentSpec {
            sim: SimConfig::deterministic(3),
            app,
            controller: ControllerKind::Dufp {
                slowdown: Ratio::from_percent(10.0),
            },
            trace: None,
            interval_ms: None,
            telemetry: false,
            fault_plan: None,
            engine: Default::default(),
        };
        let orig = run_once(&spec("CG".into()), 3).unwrap();
        let capt = run_once(&spec(path.to_str().unwrap().into()), 3).unwrap();
        // Memory-phase compute headroom is not observable from one trace
        // (see SegmentConfig::memory_headroom), so the captured model's
        // cap response differs somewhat; a 15 % band covers the heuristic.
        let power_gap = (orig.avg_pkg_power.value() - capt.avg_pkg_power.value()).abs()
            / orig.avg_pkg_power.value();
        assert!(
            power_gap < 0.15,
            "DUFP power on captured model diverges: {:.1} vs {:.1} W",
            orig.avg_pkg_power.value(),
            capt.avg_pkg_power.value()
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn overrunning_a_recording_returns_a_typed_timeout_with_partial_progress() {
        // A 1 s deadline on a multi-second workload: the recorder must
        // abort with Error::Timeout and report how many 200 ms samples it
        // captured before giving up, so callers can salvage the prefix.
        let sim = SimConfig::deterministic(7);
        let err = record_trace_with_deadline(&sim, "CG", Some(Duration::from_secs(1))).unwrap_err();
        match err {
            dufp_types::Error::Timeout { what, partial_len } => {
                assert_eq!(what, "trace recording");
                assert!(
                    (1..=5).contains(&partial_len),
                    "expected a short partial trace, got {partial_len}"
                );
            }
            other => panic!("expected Error::Timeout, got {other:?}"),
        }
    }

    #[test]
    fn recording_ep_yields_one_compute_phase() {
        let sim = SimConfig::deterministic(5);
        let file = record_workload(&sim, "EP", &SegmentConfig::default()).unwrap();
        assert_eq!(file.phases.len(), 1, "{:#?}", file.phases);
        assert!(file.phases[0].oi > 100.0);
    }
}
